//! Test time and tester cost per die.
//!
//! "The cost of testing (both probe and final) will grow with a decrease
//! of minimum feature and an increase in the die size" (Sec. III.A.e).
//! The standard first-order model: the number of test vectors needed for
//! a given stuck-at coverage grows roughly with the square root of the
//! gate count (empirically observed across scan designs), each vector
//! costs one tester cycle, and tester time is billed by the hour.

use maly_units::{Dollars, Probability, TransistorCount, UnitError};

/// Tester-floor economics: vector rate and hourly cost.
///
/// # Examples
///
/// ```
/// use maly_units::{Dollars, Probability, TransistorCount};
/// use maly_test_economics::test_time::TesterEconomics;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tester = TesterEconomics::new(1.0e6, Dollars::new(360.0)?)?;
/// let time = tester.test_seconds(
///     TransistorCount::from_millions(3.1)?,
///     Probability::new(0.95)?,
/// );
/// // Seconds, not hours — but far from free at $0.10/second.
/// assert!(time > 0.1 && time < 60.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TesterEconomics {
    vectors_per_second: f64,
    hourly_rate: Dollars,
}

/// Empirical vectors-per-coverage scaling: `vectors ≈ v₀ · √gates ·
/// stretch(T)` where `stretch` diverges as coverage approaches 1
/// (the last faults are exponentially harder to excite).
const VECTORS_PER_SQRT_GATE: f64 = 2000.0;
/// Transistors per logic gate (4-transistor NAND equivalent).
const TRANSISTORS_PER_GATE: f64 = 4.0;

impl TesterEconomics {
    /// Creates the model from the tester's vector application rate
    /// (vectors/second) and its fully loaded hourly rate.
    ///
    /// # Errors
    ///
    /// Returns an error unless the vector rate is positive and finite.
    pub fn new(vectors_per_second: f64, hourly_rate: Dollars) -> Result<Self, UnitError> {
        if !vectors_per_second.is_finite() || vectors_per_second <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "vector rate",
                value: vectors_per_second,
            });
        }
        Ok(Self {
            vectors_per_second,
            hourly_rate,
        })
    }

    /// A representative early-1990s digital tester: 1 M effective
    /// vectors/s (pattern reloads and parametric measures included),
    /// \$360/hour (≈ \$0.10/second).
    #[must_use]
    pub fn typical_1994() -> Self {
        Self {
            vectors_per_second: 1.0e6,
            hourly_rate: Dollars::new(360.0).expect("positive"),
        }
    }

    /// Hourly rate.
    #[must_use]
    pub fn hourly_rate(&self) -> Dollars {
        self.hourly_rate
    }

    /// Vectors needed to reach `coverage` on a design of `transistors`.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` equals 1 exactly — the stuck-at model needs
    /// exponentially many vectors for the last fault; ask for 0.9999…
    #[must_use]
    pub fn vectors_for(&self, transistors: TransistorCount, coverage: Probability) -> f64 {
        assert!(
            coverage.value() < 1.0,
            "exact 100% coverage needs unbounded vectors; request < 1.0"
        );
        let gates = transistors.value() / TRANSISTORS_PER_GATE;
        // stretch(T) = −ln(1−T): 1 at T≈0.63, ~3 at T=0.95, ~6.9 at 0.999.
        let stretch = -(1.0 - coverage.value()).ln();
        VECTORS_PER_SQRT_GATE * gates.sqrt() * stretch.max(0.1)
    }

    /// Tester seconds per die for a target coverage.
    #[must_use]
    pub fn test_seconds(&self, transistors: TransistorCount, coverage: Probability) -> f64 {
        self.vectors_for(transistors, coverage) / self.vectors_per_second
    }

    /// Tester cost per die for a target coverage.
    #[must_use]
    pub fn cost_per_die(&self, transistors: TransistorCount, coverage: Probability) -> Dollars {
        self.hourly_rate * (self.test_seconds(transistors, coverage) / 3600.0)
    }

    /// Probe cost for a whole wafer of `dies` dies (every die is probed,
    /// good or bad).
    #[must_use]
    pub fn wafer_probe_cost(
        &self,
        dies: maly_units::DieCount,
        transistors: TransistorCount,
        coverage: Probability,
    ) -> Dollars {
        self.cost_per_die(transistors, coverage) * dies.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tester() -> TesterEconomics {
        TesterEconomics::typical_1994()
    }

    fn n(millions: f64) -> TransistorCount {
        TransistorCount::from_millions(millions).unwrap()
    }

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn vectors_grow_with_design_size() {
        let t = tester();
        let small = t.vectors_for(n(0.5), p(0.95));
        let large = t.vectors_for(n(8.0), p(0.95));
        assert!((large / small - 4.0).abs() < 1e-9); // √(16×) = 4×
    }

    #[test]
    fn coverage_stretch_diverges() {
        let t = tester();
        let base = t.vectors_for(n(1.0), p(0.63));
        let tight = t.vectors_for(n(1.0), p(0.999));
        assert!(tight > 5.0 * base);
    }

    #[test]
    #[should_panic(expected = "100% coverage")]
    fn exact_full_coverage_rejected() {
        let _ = tester().vectors_for(n(1.0), Probability::ONE);
    }

    #[test]
    fn cost_per_die_is_rate_times_time() {
        let t = tester();
        let secs = t.test_seconds(n(3.1), p(0.95));
        let cost = t.cost_per_die(n(3.1), p(0.95)).value();
        assert!((cost - 360.0 * secs / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn wafer_probe_cost_can_rival_wafer_cost() {
        // Sec. III.A.e's "extreme case": many large dies at high coverage
        // make probing a three-digit dollar item — same order as C_w.
        let t = tester();
        let cost = t
            .wafer_probe_cost(maly_units::DieCount::new(150), n(5.0), p(0.999))
            .value();
        assert!(cost > 50.0, "probe cost {cost}");
    }

    #[test]
    fn validation() {
        assert!(TesterEconomics::new(0.0, Dollars::new(100.0).unwrap()).is_err());
        assert!(TesterEconomics::new(f64::NAN, Dollars::new(100.0).unwrap()).is_err());
    }
}
