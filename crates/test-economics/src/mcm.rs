//! Known-good-die economics for multi-chip modules (refs \[30, 31\]).
//!
//! An MCM assembles `n` bare dies on a substrate. A single bad die kills
//! (or forces rework of) the whole module, so the *defect level* of the
//! incoming dies compounds: module first-pass yield is `(1 − DL)ⁿ`.
//! "Are There Any Alternatives to Known Good Die?" \[31\] frames the
//! choice this module prices:
//!
//! * **Probe-only dies** — cheap dies, high `DL`, expensive module
//!   fallout and rework;
//! * **Known good dies (KGD)** — burn-in and full test per die raises
//!   die cost but ships nearly clean dies;
//! * **Smart substrate** \[30\] — an *active* (more expensive) substrate
//!   that can self-test the assembled dies, catching bad dies at first
//!   module test and making rework targeted and cheap.
//!
//! The paper's point is that the expensive substrate can *minimize* the
//! overall system cost — exactly the kind of cross-boundary optimization
//! traditional per-component accounting misses.

use maly_units::{Dollars, Probability, UnitError};

/// One die supply option for module assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSupply {
    /// Cost per die as procured.
    pub die_cost: Dollars,
    /// Defect level of procured dies (fraction bad among delivered).
    pub defect_level: Probability,
}

impl DieSupply {
    /// Probe-only dies: cheapest, with the wafer-probe escape rate.
    #[must_use]
    pub fn probe_only(die_cost: Dollars, defect_level: Probability) -> Self {
        Self {
            die_cost,
            defect_level,
        }
    }

    /// Known good dies: `extra_test_cost` per die buys a residual defect
    /// level of `residual_dl`.
    #[must_use]
    pub fn known_good(base: DieSupply, extra_test_cost: Dollars, residual_dl: Probability) -> Self {
        Self {
            die_cost: base.die_cost + extra_test_cost,
            defect_level: residual_dl,
        }
    }
}

/// Module-level parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleParameters {
    /// Dies per module.
    pub dies_per_module: u32,
    /// Passive substrate + assembly cost per module.
    pub substrate_cost: Dollars,
    /// Cost of one rework cycle (locate, remove, replace one die).
    pub rework_cost: Dollars,
    /// Assembly-induced die mortality (handling/bonding damage).
    pub assembly_fallout: Probability,
    /// Fraction of first-pass-failing modules whose fault cannot be
    /// localized and that must be scrapped whole (substrate and all
    /// dies). This is the nonlinearity that makes large probe-only
    /// modules untenable: first-pass failures compound exponentially
    /// with die count. A smart substrate drives this to ~0.
    pub scrap_fraction: Probability,
}

/// Pricing result for one supply option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleCost {
    /// Probability a freshly assembled module has all dies good.
    pub first_pass_yield: Probability,
    /// Expected rework cycles per module.
    pub expected_reworks: f64,
    /// Expected total cost per *good* module.
    pub cost_per_good_module: Dollars,
}

/// Prices a module built from the given die supply.
///
/// Model: all `n` dies are mounted; each is independently bad with
/// probability `DL + assembly fallout` (escapes plus handling damage).
/// A module failing first-pass test is scrapped whole with probability
/// `scrap_fraction` (fault not localizable); otherwise each bad die is
/// replaced at one rework cycle (replacement dies drawn from the same
/// supply; recursion truncated at the expected-value level).
///
/// # Errors
///
/// Returns an error when `dies_per_module` is zero or every die is bad.
pub fn price_module(
    supply: &DieSupply,
    module: &ModuleParameters,
) -> Result<ModuleCost, UnitError> {
    let n = module.dies_per_module;
    if n == 0 {
        return Err(UnitError::NotPositive {
            quantity: "dies per module",
            value: 0.0,
        });
    }
    let p_bad = (supply.defect_level.value() + module.assembly_fallout.value()).min(1.0);
    if p_bad >= 1.0 {
        return Err(UnitError::OutOfRange {
            quantity: "per-die bad probability",
            value: p_bad,
            min: 0.0,
            max: 1.0,
        });
    }
    let p_good = 1.0 - p_bad;
    let first_pass = Probability::new(p_good.powi(n as i32)).expect("power of probability");

    // Expected bad dies at first test: n·p_bad. Each rework replaces one
    // die which is itself bad with p_bad, so total expected replacements
    // form a geometric series: n·p_bad / (1 − p_bad).
    let expected_reworks = f64::from(n) * p_bad / p_good;

    let die_bill = supply.die_cost * (f64::from(n) + expected_reworks);
    let rework_bill = module.rework_cost * expected_reworks;
    let build_cost = module.substrate_cost + die_bill + rework_bill;

    // First-pass failures are scrapped whole with the given probability;
    // the expected number of builds per shipped module is the geometric
    // 1 / (1 − P(fail)·scrap).
    let p_scrapped = first_pass.complement().value() * module.scrap_fraction.value();
    let builds_per_good = 1.0 / (1.0 - p_scrapped);
    let total = build_cost * builds_per_good;

    Ok(ModuleCost {
        first_pass_yield: first_pass,
        expected_reworks,
        cost_per_good_module: total,
    })
}

/// The three-way study of \[31\]: probe-only vs KGD vs smart substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KgdStudy {
    /// Probe-only option.
    pub probe_only: ModuleCost,
    /// Known-good-die option.
    pub kgd: ModuleCost,
    /// Smart-substrate option.
    pub smart_substrate: ModuleCost,
}

impl KgdStudy {
    /// Runs the study.
    ///
    /// The smart substrate costs `substrate_premium` more than the
    /// passive one, but its built-in self-test localizes every bad die:
    /// nothing is ever scrapped for lack of diagnosis
    /// (`scrap_fraction = 0`) and reworks cost `smart_rework_discount`
    /// of the passive rework.
    ///
    /// # Errors
    ///
    /// Propagates pricing failures.
    pub fn run(
        probe_supply: DieSupply,
        kgd_supply: DieSupply,
        module: ModuleParameters,
        substrate_premium: Dollars,
        smart_rework_discount: f64,
    ) -> Result<Self, UnitError> {
        let probe_only = price_module(&probe_supply, &module)?;
        let kgd = price_module(&kgd_supply, &module)?;
        let smart_module = ModuleParameters {
            substrate_cost: module.substrate_cost + substrate_premium,
            rework_cost: module.rework_cost * smart_rework_discount,
            scrap_fraction: Probability::ZERO,
            ..module
        };
        let smart_substrate = price_module(&probe_supply, &smart_module)?;
        Ok(Self {
            probe_only,
            kgd,
            smart_substrate,
        })
    }

    /// The cheapest option's name.
    #[must_use]
    pub fn winner(&self) -> &'static str {
        let p = self.probe_only.cost_per_good_module.value();
        let k = self.kgd.cost_per_good_module.value();
        let s = self.smart_substrate.cost_per_good_module.value();
        if s <= p && s <= k {
            "smart substrate"
        } else if k <= p {
            "known good die"
        } else {
            "probe only"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dollars(v: f64) -> Dollars {
        Dollars::new(v).unwrap()
    }

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn module(n: u32) -> ModuleParameters {
        ModuleParameters {
            dies_per_module: n,
            substrate_cost: dollars(120.0),
            rework_cost: dollars(80.0),
            assembly_fallout: p(0.005),
            // Half the failing modules defy diagnosis on a passive
            // substrate and are scrapped whole.
            scrap_fraction: p(0.5),
        }
    }

    fn probe_supply() -> DieSupply {
        // 5% escapes from wafer probe at 90% coverage on a 60%-yield die.
        DieSupply::probe_only(dollars(25.0), p(0.05))
    }

    fn kgd_supply() -> DieSupply {
        // $13 of burn-in and final test per die buys 0.1% residual DL.
        DieSupply::known_good(probe_supply(), dollars(13.0), p(0.001))
    }

    #[test]
    fn module_yield_compounds_per_die() {
        let cost4 = price_module(&probe_supply(), &module(4)).unwrap();
        let cost10 = price_module(&probe_supply(), &module(10)).unwrap();
        assert!(cost10.first_pass_yield < cost4.first_pass_yield);
        let expected = (1.0f64 - 0.055).powi(4);
        assert!((cost4.first_pass_yield.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn kgd_wins_for_large_modules() {
        // With 10 dies per module, probe-only fallout dominates; KGD's
        // per-die premium pays for itself.
        let probe = price_module(&probe_supply(), &module(10)).unwrap();
        let kgd = price_module(&kgd_supply(), &module(10)).unwrap();
        assert!(kgd.first_pass_yield.value() > 0.9);
        assert!(probe.first_pass_yield.value() < 0.6);
        // Rework/escape bill: probe pays reworks, KGD pays die premium.
        assert!(probe.expected_reworks > 5.0 * kgd.expected_reworks);
        assert!(kgd.cost_per_good_module < probe.cost_per_good_module);
    }

    #[test]
    fn probe_only_wins_for_tiny_modules() {
        // Two cheap dies: fallout is rare enough that $18/die of KGD
        // testing cannot pay for itself.
        let probe = price_module(&probe_supply(), &module(2)).unwrap();
        let kgd = price_module(&kgd_supply(), &module(2)).unwrap();
        assert!(probe.cost_per_good_module < kgd.cost_per_good_module);
    }

    #[test]
    fn smart_substrate_beats_kgd_when_rework_localization_is_cheap() {
        // The paper's claim: an active substrate (here +$40) that makes
        // rework nearly free can beat paying $18×n for KGD.
        let study =
            KgdStudy::run(probe_supply(), kgd_supply(), module(10), dollars(40.0), 0.1).unwrap();
        assert_eq!(study.winner(), "smart substrate");
        assert!(study.smart_substrate.cost_per_good_module < study.kgd.cost_per_good_module);
        assert!(study.smart_substrate.cost_per_good_module < study.probe_only.cost_per_good_module);
    }

    #[test]
    fn crossover_exists_in_module_size() {
        // Somewhere between 2 and 16 dies, KGD overtakes probe-only.
        let mut crossed = false;
        let mut last_probe_wins = true;
        for n in 2..=16 {
            let probe = price_module(&probe_supply(), &module(n)).unwrap();
            let kgd = price_module(&kgd_supply(), &module(n)).unwrap();
            let probe_wins = probe.cost_per_good_module <= kgd.cost_per_good_module;
            if last_probe_wins && !probe_wins {
                crossed = true;
            }
            last_probe_wins = probe_wins;
        }
        assert!(crossed, "expected a probe-only → KGD crossover");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(price_module(&probe_supply(), &module(0)).is_err());
        let hopeless = DieSupply::probe_only(dollars(1.0), Probability::ONE);
        assert!(price_module(&hopeless, &module(4)).is_err());
    }

    #[test]
    fn rework_expectation_is_geometric() {
        let supply = probe_supply();
        let cost = price_module(&supply, &module(10)).unwrap();
        let p_bad: f64 = 0.055;
        let expected = 10.0 * p_bad / (1.0 - p_bad);
        assert!((cost.expected_reworks - expected).abs() < 1e-9);
    }
}
