//! The DFT/BIST adoption decision (Sec. VI).
//!
//! "DFT and BIST techniques exist to minimize cost and complexity of test
//! generation. But designers are wary to allocate the resources (such as
//! silicon area, and/or performance) required to employ these techniques.
//! The problem is lack of adequate procedure which quantifies the
//! benefit." This module is that procedure, at the eq. (1) level of
//! abstraction:
//!
//! * adding DFT inflates the die by an area fraction → fewer dies per
//!   wafer and lower yield → higher silicon cost per good die;
//! * in exchange it raises achievable fault coverage and cuts tester
//!   time → lower test cost and fewer field escapes.
//!
//! [`compare`] prices both designs end to end and reports which wins.

use maly_units::{Dollars, Probability, SquareCentimeters, TransistorCount, UnitError};
use maly_wafer_geom::{maly, DieDimensions, Wafer};
use maly_yield_model::YieldModel;

use crate::escapes;
use crate::test_time::TesterEconomics;

/// One side of the comparison: a die design with its test strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestStrategy {
    /// Fraction of extra die area spent on DFT/BIST structures
    /// (0 for the baseline design).
    pub area_overhead: f64,
    /// Fault coverage the strategy achieves.
    pub coverage: Probability,
    /// Tester-time multiplier relative to the functional-test baseline
    /// (scan/BIST compress test time: < 1).
    pub tester_time_factor: f64,
}

impl TestStrategy {
    /// A functional-test-only baseline at the given coverage.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range coverage.
    pub fn baseline(coverage: f64) -> Result<Self, UnitError> {
        Ok(Self {
            area_overhead: 0.0,
            coverage: Probability::new(coverage)?,
            tester_time_factor: 1.0,
        })
    }

    /// A scan/BIST strategy: `area_overhead` extra silicon buys
    /// `coverage` at `tester_time_factor` of the baseline tester time.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid fractions.
    pub fn with_dft(
        area_overhead: f64,
        coverage: f64,
        tester_time_factor: f64,
    ) -> Result<Self, UnitError> {
        if !area_overhead.is_finite() || !(0.0..1.0).contains(&area_overhead) {
            return Err(UnitError::OutOfRange {
                quantity: "DFT area overhead",
                value: area_overhead,
                min: 0.0,
                max: 1.0,
            });
        }
        if !tester_time_factor.is_finite() || tester_time_factor <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "tester time factor",
                value: tester_time_factor,
            });
        }
        Ok(Self {
            area_overhead,
            coverage: Probability::new(coverage)?,
            tester_time_factor,
        })
    }
}

/// Everything needed to price a die end to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DftStudy<'a, Y> {
    /// Wafer manufactured on.
    pub wafer: &'a Wafer,
    /// Wafer cost.
    pub wafer_cost: Dollars,
    /// Yield model (applied to the DFT-inflated area).
    pub yield_model: &'a Y,
    /// Base (no-DFT) die area.
    pub base_area: SquareCentimeters,
    /// Design size, for test-time scaling.
    pub transistors: TransistorCount,
    /// Tester economics.
    pub tester: &'a TesterEconomics,
    /// Fully loaded cost of one field escape.
    pub escape_cost: Dollars,
}

/// Cost report for one strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyCost {
    /// Effective die area including DFT overhead.
    pub die_area: SquareCentimeters,
    /// Die yield at that area.
    pub die_yield: Probability,
    /// Silicon cost per *good* die.
    pub silicon_cost: Dollars,
    /// Tester cost per good die (all dies probed; cost loaded onto good
    /// ones).
    pub test_cost: Dollars,
    /// Expected escape cost per shipped die.
    pub escape_cost: Dollars,
}

impl StrategyCost {
    /// Total cost per shipped good die.
    #[must_use]
    pub fn total(&self) -> Dollars {
        self.silicon_cost + self.test_cost + self.escape_cost
    }
}

/// Outcome of a DFT comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DftComparison {
    /// Cost of the baseline strategy.
    pub baseline: StrategyCost,
    /// Cost of the DFT strategy.
    pub with_dft: StrategyCost,
}

impl DftComparison {
    /// True when DFT is the cheaper total.
    #[must_use]
    pub fn dft_wins(&self) -> bool {
        self.with_dft.total() < self.baseline.total()
    }

    /// Net saving per shipped die from adopting DFT (negative = loss).
    #[must_use]
    pub fn net_saving(&self) -> f64 {
        self.baseline.total().value() - self.with_dft.total().value()
    }
}

/// Prices one strategy.
///
/// # Errors
///
/// Returns an error when the (inflated) die no longer fits the wafer.
pub fn price_strategy<Y: YieldModel>(
    study: &DftStudy<'_, Y>,
    strategy: &TestStrategy,
) -> Result<StrategyCost, UnitError> {
    let area = SquareCentimeters::new(study.base_area.value() * (1.0 + strategy.area_overhead))?;
    let die = DieDimensions::square_with_area(area);
    let n_ch = maly::dies_per_wafer(study.wafer, die);
    if n_ch.is_zero() {
        return Err(UnitError::OutOfRange {
            quantity: "die area",
            value: area.value(),
            min: 0.0,
            max: study.wafer.area().value(),
        });
    }
    let y = study.yield_model.die_yield(area);
    let good = n_ch.as_f64() * y.value();
    let silicon_cost = study.wafer_cost / good;
    // Every die on the wafer is probed; the bill lands on the good ones.
    let per_die_test = study
        .tester
        .cost_per_die(study.transistors, strategy.coverage)
        * strategy.tester_time_factor;
    let test_cost = per_die_test * (n_ch.as_f64() / good);
    let escape_cost = escapes::escape_cost_per_shipped_die(y, strategy.coverage, study.escape_cost);
    Ok(StrategyCost {
        die_area: area,
        die_yield: y,
        silicon_cost,
        test_cost,
        escape_cost,
    })
}

/// Prices both strategies and reports the comparison.
///
/// # Errors
///
/// Propagates pricing failures from either side.
pub fn compare<Y: YieldModel>(
    study: &DftStudy<'_, Y>,
    baseline: &TestStrategy,
    with_dft: &TestStrategy,
) -> Result<DftComparison, UnitError> {
    Ok(DftComparison {
        baseline: price_strategy(study, baseline)?,
        with_dft: price_strategy(study, with_dft)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::DefectDensity;
    use maly_yield_model::PoissonYield;

    fn study<'a>(
        wafer: &'a Wafer,
        yield_model: &'a PoissonYield,
        tester: &'a TesterEconomics,
    ) -> DftStudy<'a, PoissonYield> {
        DftStudy {
            wafer,
            wafer_cost: Dollars::new(1300.0).unwrap(),
            yield_model,
            base_area: SquareCentimeters::new(1.5).unwrap(),
            transistors: TransistorCount::from_millions(3.0).unwrap(),
            tester,
            escape_cost: Dollars::new(500.0).unwrap(),
        }
    }

    fn fixtures() -> (Wafer, PoissonYield, TesterEconomics) {
        (
            Wafer::six_inch(),
            PoissonYield::new(DefectDensity::new(0.5).unwrap()),
            TesterEconomics::typical_1994(),
        )
    }

    #[test]
    fn dft_overhead_raises_silicon_cost() {
        let (w, y, t) = fixtures();
        let s = study(&w, &y, &t);
        let base = price_strategy(&s, &TestStrategy::baseline(0.9).unwrap()).unwrap();
        let dft = price_strategy(&s, &TestStrategy::with_dft(0.10, 0.9, 1.0).unwrap()).unwrap();
        assert!(dft.silicon_cost > base.silicon_cost);
        assert!(dft.die_yield < base.die_yield);
    }

    #[test]
    fn coverage_cuts_escape_cost() {
        let (w, y, t) = fixtures();
        let s = study(&w, &y, &t);
        let loose = price_strategy(&s, &TestStrategy::baseline(0.85).unwrap()).unwrap();
        let tight = price_strategy(&s, &TestStrategy::baseline(0.999).unwrap()).unwrap();
        assert!(tight.escape_cost.value() < 0.1 * loose.escape_cost.value());
        assert!(tight.test_cost > loose.test_cost);
    }

    #[test]
    fn dft_wins_when_escapes_are_expensive() {
        // Modest overhead buying high coverage and 4× tester compression:
        // the classic BIST win against costly field returns.
        let (w, y, t) = fixtures();
        let mut s = study(&w, &y, &t);
        s.escape_cost = Dollars::new(2000.0).unwrap();
        let cmp = compare(
            &s,
            &TestStrategy::baseline(0.85).unwrap(),
            &TestStrategy::with_dft(0.05, 0.995, 0.25).unwrap(),
        )
        .unwrap();
        assert!(cmp.dft_wins(), "net saving {}", cmp.net_saving());
    }

    #[test]
    fn dft_loses_when_silicon_is_the_only_cost() {
        // Free escapes and cheap testing: the area overhead is pure loss.
        let (w, y, t) = fixtures();
        let mut s = study(&w, &y, &t);
        s.escape_cost = Dollars::zero();
        let cmp = compare(
            &s,
            &TestStrategy::baseline(0.95).unwrap(),
            &TestStrategy::with_dft(0.15, 0.99, 1.0).unwrap(),
        )
        .unwrap();
        assert!(!cmp.dft_wins());
        assert!(cmp.net_saving() < 0.0);
    }

    #[test]
    fn totals_add_components() {
        let (w, y, t) = fixtures();
        let s = study(&w, &y, &t);
        let cost = price_strategy(&s, &TestStrategy::baseline(0.9).unwrap()).unwrap();
        let sum = cost.silicon_cost.value() + cost.test_cost.value() + cost.escape_cost.value();
        assert!((cost.total().value() - sum).abs() < 1e-12);
    }

    #[test]
    fn oversized_die_is_an_error() {
        let (w, y, t) = fixtures();
        let mut s = study(&w, &y, &t);
        s.base_area = SquareCentimeters::new(200.0).unwrap();
        assert!(price_strategy(&s, &TestStrategy::baseline(0.9).unwrap()).is_err());
    }

    #[test]
    fn strategy_validation() {
        assert!(TestStrategy::with_dft(1.5, 0.9, 1.0).is_err());
        assert!(TestStrategy::with_dft(0.1, 1.5, 1.0).is_err());
        assert!(TestStrategy::with_dft(0.1, 0.9, 0.0).is_err());
        assert!(TestStrategy::baseline(-0.1).is_err());
    }
}
