//! Optimal fault coverage: how much testing is worth paying for?
//!
//! Sec. VI's missing "adequate procedure": test cost grows with coverage
//! (the `−ln(1−T)` vector stretch) while escape cost falls
//! (`DL = 1 − Y^{1−T}`). Their sum has a unique interior minimum — the
//! economically optimal coverage. Below it you ship junk; above it you
//! rent testers to chase faults cheaper left alone.

use maly_units::{Dollars, Probability, TransistorCount, UnitError};

use crate::escapes;
use crate::test_time::TesterEconomics;

/// Inputs of a coverage optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStudy<'a> {
    /// Tester economics.
    pub tester: &'a TesterEconomics,
    /// Design size (drives vector counts).
    pub transistors: TransistorCount,
    /// True process yield of the die being tested.
    pub process_yield: Probability,
    /// Fully loaded cost of one field escape.
    pub escape_cost: Dollars,
}

/// The optimum found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalCoverage {
    /// The cost-minimizing fault coverage.
    pub coverage: Probability,
    /// Tester cost per die at that coverage.
    pub test_cost: Dollars,
    /// Expected escape cost per shipped die at that coverage.
    pub escape_cost: Dollars,
}

impl OptimalCoverage {
    /// Total per-die quality cost at the optimum.
    #[must_use]
    pub fn total(&self) -> Dollars {
        self.test_cost + self.escape_cost
    }
}

/// Total (test + escape) cost at a given coverage.
#[must_use]
pub fn quality_cost(study: &CoverageStudy<'_>, coverage: Probability) -> Dollars {
    let test = study.tester.cost_per_die(study.transistors, coverage);
    let escapes =
        escapes::escape_cost_per_shipped_die(study.process_yield, coverage, study.escape_cost);
    test + escapes
}

/// Finds the coverage minimizing [`quality_cost`] by golden-section
/// search on `[0, 0.9999]` (the cost is unimodal: test cost is convex
/// increasing, escape cost convex decreasing).
///
/// # Errors
///
/// Returns an error when the process yield is degenerate (0 or 1 —
/// nothing to optimize).
pub fn optimal_coverage(study: &CoverageStudy<'_>) -> Result<OptimalCoverage, UnitError> {
    let y = study.process_yield.value();
    if y <= 0.0 || y >= 1.0 {
        return Err(UnitError::OutOfRange {
            quantity: "process yield",
            value: y,
            min: 0.0,
            max: 1.0,
        });
    }
    let f =
        |t: f64| quality_cost(study, Probability::new(t).expect("search stays in [0,1)")).value();
    // Golden section on [0, 0.9999].
    let (mut a, mut b) = (0.0f64, 0.9999f64);
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    while b - a > 1e-7 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let coverage = Probability::new((a + b) / 2.0).expect("bounded search");
    Ok(OptimalCoverage {
        coverage,
        test_cost: study.tester.cost_per_die(study.transistors, coverage),
        escape_cost: escapes::escape_cost_per_shipped_die(
            study.process_yield,
            coverage,
            study.escape_cost,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(tester: &TesterEconomics, escape_cost: f64) -> CoverageStudy<'_> {
        CoverageStudy {
            tester,
            transistors: TransistorCount::from_millions(3.0).unwrap(),
            process_yield: Probability::new(0.6).unwrap(),
            escape_cost: Dollars::new(escape_cost).unwrap(),
        }
    }

    #[test]
    fn optimum_is_interior_and_stationary() {
        let tester = TesterEconomics::typical_1994();
        let s = study(&tester, 500.0);
        let opt = optimal_coverage(&s).unwrap();
        let t = opt.coverage.value();
        assert!(t > 0.5 && t < 0.9999, "optimum {t} not interior");
        // Perturbing either way costs more. The optimum sits close to 1,
        // so perturb multiplicatively in the escape fraction (1 − T).
        let total = opt.total().value();
        for factor in [0.5, 2.0] {
            let perturbed_t = (1.0 - (1.0 - t) * factor).clamp(0.0, 0.9999);
            let perturbed = quality_cost(&s, Probability::new(perturbed_t).unwrap()).value();
            assert!(
                perturbed >= total - 1e-9,
                "T={perturbed_t}: {perturbed} < {total}"
            );
        }
    }

    #[test]
    fn costlier_escapes_demand_more_coverage() {
        let tester = TesterEconomics::typical_1994();
        let cheap = optimal_coverage(&study(&tester, 50.0)).unwrap();
        let dear = optimal_coverage(&study(&tester, 5000.0)).unwrap();
        assert!(dear.coverage > cheap.coverage);
        assert!(dear.escape_cost.value() < 5000.0 * 0.05);
    }

    #[test]
    fn cheaper_testers_demand_more_coverage() {
        let slow = TesterEconomics::new(1.0e6, Dollars::new(360.0).unwrap()).unwrap();
        let fast = TesterEconomics::new(1.0e7, Dollars::new(360.0).unwrap()).unwrap();
        let with_slow = optimal_coverage(&study(&slow, 500.0)).unwrap();
        let with_fast = optimal_coverage(&study(&fast, 500.0)).unwrap();
        assert!(with_fast.coverage > with_slow.coverage);
        assert!(with_fast.total().value() < with_slow.total().value());
    }

    #[test]
    fn degenerate_yields_rejected() {
        let tester = TesterEconomics::typical_1994();
        let mut s = study(&tester, 500.0);
        s.process_yield = Probability::ONE;
        assert!(optimal_coverage(&s).is_err());
        s.process_yield = Probability::ZERO;
        assert!(optimal_coverage(&s).is_err());
    }

    #[test]
    fn totals_decompose() {
        let tester = TesterEconomics::typical_1994();
        let opt = optimal_coverage(&study(&tester, 500.0)).unwrap();
        assert!(
            (opt.total().value() - opt.test_cost.value() - opt.escape_cost.value()).abs() < 1e-12
        );
    }
}
