//! Fig 3 — the die-size trend `A_ch(λ)`.
//!
//! Scenario #2 assumes "a number of transistors growing such that
//! technology trends shown in Fig. 3 are followed"; eq. (9) encodes the
//! trend as `A_ch(λ) = 16.5 · exp(−5.3·λ)` cm², extracted from the Fig 3
//! data. This module carries that model and can re-extract it from die
//! size data.

use maly_units::{Microns, SquareCentimeters, UnitError};

use crate::fit;

/// The exponential die-size trend `A_ch(λ) = a · e^{b·λ}` (cm², λ in µm).
///
/// # Examples
///
/// ```
/// use maly_units::Microns;
/// use maly_tech_trend::diesize::DieSizeTrend;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trend = DieSizeTrend::paper_fit();
/// // The paper's extracted values: 16.5 and −5.3.
/// assert_eq!(trend.amplitude_cm2(), 16.5);
/// assert_eq!(trend.rate_per_um(), -5.3);
/// // At 0.5 µm a leading die is ~1.16 cm².
/// let a = trend.area_at(Microns::new(0.5)?);
/// assert!((a.value() - 1.16).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSizeTrend {
    amplitude_cm2: f64,
    rate_per_um: f64,
}

impl DieSizeTrend {
    /// Creates a trend `A_ch(λ) = amplitude · e^{rate·λ}`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `amplitude > 0` and `rate < 0` (die sizes
    /// must grow as λ shrinks — that is the Fig 3 observation).
    pub fn new(amplitude_cm2: f64, rate_per_um: f64) -> Result<Self, UnitError> {
        if !amplitude_cm2.is_finite() || amplitude_cm2 <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "die size trend amplitude",
                value: amplitude_cm2,
            });
        }
        if !rate_per_um.is_finite() || rate_per_um >= 0.0 {
            return Err(UnitError::OutOfRange {
                quantity: "die size trend rate",
                value: rate_per_um,
                min: f64::NEG_INFINITY,
                max: 0.0,
            });
        }
        Ok(Self {
            amplitude_cm2,
            rate_per_um,
        })
    }

    /// The paper's extracted fit: `16.5 · exp(−5.3·λ)`.
    #[must_use]
    pub fn paper_fit() -> Self {
        Self {
            amplitude_cm2: 16.5,
            rate_per_um: -5.3,
        }
    }

    /// Re-extracts the trend from `(λ, area)` data, e.g.
    /// [`crate::datasets::DIE_SIZE_BY_GENERATION`].
    ///
    /// # Errors
    ///
    /// Propagates fit failures (too few points, non-positive areas).
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, UnitError> {
        let exp_fit = fit::fit_exponential(points)?;
        Self::new(exp_fit.amplitude(), exp_fit.rate())
    }

    /// Amplitude `a` (cm² extrapolated to λ = 0).
    #[must_use]
    pub fn amplitude_cm2(&self) -> f64 {
        self.amplitude_cm2
    }

    /// Rate `b` (per µm, negative).
    #[must_use]
    pub fn rate_per_um(&self) -> f64 {
        self.rate_per_um
    }

    /// Die area at feature size λ.
    #[must_use]
    pub fn area_at(&self, lambda: Microns) -> SquareCentimeters {
        SquareCentimeters::new(self.amplitude_cm2 * (self.rate_per_um * lambda.value()).exp())
            .expect("positive amplitude and finite exponent")
    }

    /// The feature size at which the trend predicts a given die area
    /// (inverse of [`Self::area_at`]); `None` if it would be non-positive.
    #[must_use]
    pub fn lambda_for_area(&self, area: SquareCentimeters) -> Option<Microns> {
        let lambda = (area.value() / self.amplitude_cm2).ln() / self.rate_per_um;
        Microns::new(lambda).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    #[test]
    fn paper_fit_values_at_key_nodes() {
        let t = DieSizeTrend::paper_fit();
        // Spot values used when validating Fig 7 by hand.
        assert!((t.area_at(um(0.8)).value() - 0.238).abs() < 5e-3);
        assert!((t.area_at(um(0.25)).value() - 4.387).abs() < 5e-3);
    }

    #[test]
    fn area_grows_as_lambda_shrinks() {
        let t = DieSizeTrend::paper_fit();
        let mut last = 0.0;
        for l in [1.0, 0.8, 0.65, 0.5, 0.35, 0.25] {
            let a = t.area_at(um(l)).value();
            assert!(a > last);
            last = a;
        }
    }

    #[test]
    fn fit_recovers_paper_coefficients_from_dataset() {
        let t = DieSizeTrend::fit(datasets::DIE_SIZE_BY_GENERATION).unwrap();
        assert!(
            (t.amplitude_cm2() - 16.5).abs() < 1.0,
            "amplitude {}",
            t.amplitude_cm2()
        );
        assert!(
            (t.rate_per_um() - (-5.3)).abs() < 0.15,
            "rate {}",
            t.rate_per_um()
        );
    }

    #[test]
    fn lambda_for_area_inverts_area_at() {
        let t = DieSizeTrend::paper_fit();
        let area = t.area_at(um(0.5));
        let back = t.lambda_for_area(area).unwrap();
        assert!((back.value() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lambda_for_area_rejects_out_of_range() {
        let t = DieSizeTrend::paper_fit();
        // Larger than the λ→0 asymptote: no positive λ reaches it... and
        // areas above the amplitude imply negative λ.
        assert!(t
            .lambda_for_area(SquareCentimeters::new(20.0).unwrap())
            .is_none());
    }

    #[test]
    fn constructor_validates_signs() {
        assert!(DieSizeTrend::new(-1.0, -5.3).is_err());
        assert!(DieSizeTrend::new(16.5, 0.1).is_err());
        assert!(DieSizeTrend::new(16.5, 0.0).is_err());
    }
}
