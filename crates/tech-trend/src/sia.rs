//! Composed generation profiles — an SIA-roadmap-style table.
//!
//! Reference \[17\] ("SIA Technology Road Map — Workshop Conclusions")
//! is the paper's template for thinking about generations as bundles:
//! a node arrives in a year, with a die size, a step count and a
//! cleanliness requirement. This module composes those bundles from the
//! crate's fitted trends, so a single call answers "what does the
//! 0.25 µm generation look like?" — including for nodes *beyond* the
//! datasets (extrapolation is exactly what roadmaps are for).

use maly_units::{Microns, SquareCentimeters, UnitError};

use crate::diesize::DieSizeTrend;
use crate::fit;
use crate::{datasets, generations};

/// Everything the roadmap says about one technology generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationProfile {
    /// Feature size (µm).
    pub lambda: Microns,
    /// Predicted year of volume introduction.
    pub year: f64,
    /// Leading-die area on the Fig 3 trend.
    pub die_area: SquareCentimeters,
    /// Manufacturing step count on the Fig 4 trend.
    pub process_steps: f64,
    /// Defect density required for 70% yield on the trend die (Poisson).
    pub required_defect_density: f64,
}

/// The fitted trend bundle used to compose profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Roadmap {
    cadence_rate: f64,
    cadence_amplitude: f64,
    die_trend: DieSizeTrend,
    steps_amplitude: f64,
    steps_exponent: f64,
}

impl Roadmap {
    /// Fits the roadmap from the built-in datasets.
    ///
    /// # Errors
    ///
    /// Propagates fit failures (cannot happen for the built-ins; kept
    /// fallible so callers can substitute their own data).
    pub fn from_datasets() -> Result<Self, UnitError> {
        let cadence = fit::fit_exponential(datasets::FEATURE_SIZE_BY_YEAR)?;
        let die_trend = DieSizeTrend::fit(datasets::DIE_SIZE_BY_GENERATION)?;
        let steps = fit::fit_power_law(datasets::PROCESS_STEPS_BY_GENERATION)?;
        Ok(Self {
            cadence_rate: cadence.rate(),
            cadence_amplitude: cadence.amplitude(),
            die_trend,
            steps_amplitude: steps.amplitude(),
            steps_exponent: steps.exponent(),
        })
    }

    /// The year the cadence predicts for a feature size (inverting
    /// `λ = A·e^{r·year}`).
    #[must_use]
    pub fn year_of(&self, lambda: Microns) -> f64 {
        (lambda.value() / self.cadence_amplitude).ln() / self.cadence_rate
    }

    /// Composes the full profile of one node.
    #[must_use]
    pub fn profile(&self, lambda: Microns) -> GenerationProfile {
        let die_area = self.die_trend.area_at(lambda);
        GenerationProfile {
            lambda,
            year: self.year_of(lambda),
            die_area,
            process_steps: self.steps_amplitude * lambda.value().powf(self.steps_exponent),
            required_defect_density: -(0.7f64.ln()) / die_area.value(),
        }
    }

    /// Profiles for the whole canonical node ladder.
    #[must_use]
    pub fn ladder(&self) -> Vec<GenerationProfile> {
        generations::NODE_LADDER_UM
            .iter()
            .map(|&l| self.profile(Microns::new(l).expect("ladder nodes are positive")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roadmap() -> Roadmap {
        Roadmap::from_datasets().unwrap()
    }

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    #[test]
    fn years_are_chronological_down_the_ladder() {
        let ladder = roadmap().ladder();
        for w in ladder.windows(2) {
            assert!(w[1].year > w[0].year, "ladder years must increase");
        }
        // The 0.8 µm node lands in the late 80s / around 1990.
        let node_08 = ladder
            .iter()
            .find(|p| (p.lambda.value() - 0.8).abs() < 1e-9)
            .unwrap();
        assert!(
            (1987.0..1993.0).contains(&node_08.year),
            "0.8 µm in {}",
            node_08.year
        );
    }

    #[test]
    fn dies_grow_steps_grow_cleanliness_tightens() {
        let ladder = roadmap().ladder();
        for w in ladder.windows(2) {
            assert!(w[1].die_area.value() > w[0].die_area.value());
            assert!(w[1].process_steps > w[0].process_steps);
            assert!(w[1].required_defect_density < w[0].required_defect_density);
        }
    }

    #[test]
    fn extrapolates_beyond_the_datasets() {
        // 0.13 µm is beyond every dataset; the roadmap still composes a
        // coherent bundle (that is its job).
        let p = roadmap().profile(um(0.13));
        assert!(p.year > 1997.0 && p.year < 2010.0, "year {}", p.year);
        assert!(p.die_area.value() > 5.0, "die {}", p.die_area.value());
        assert!(p.required_defect_density < 0.05);
        assert!(p.process_steps > 500.0);
    }

    #[test]
    fn year_of_inverts_the_cadence() {
        let r = roadmap();
        let year = r.year_of(um(0.5));
        // Predicting λ back from that year recovers 0.5.
        let lambda = r.cadence_amplitude * (r.cadence_rate * year).exp();
        assert!((lambda - 0.5).abs() < 1e-9);
    }

    #[test]
    fn required_density_matches_poisson_inversion() {
        let p = roadmap().profile(um(0.5));
        let y = (-p.required_defect_density * p.die_area.value()).exp();
        assert!((y - 0.7).abs() < 1e-12);
    }
}
