//! Least-squares trend fitting on linear and log scales.

use maly_units::UnitError;

/// An ordinary least-squares line `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted intercept.
    pub intercept: f64,
    /// Fitted slope.
    pub slope: f64,
    /// Coefficient of determination on the fitted scale.
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = intercept + slope·x` by ordinary least squares.
///
/// # Errors
///
/// Returns an error if fewer than two points are given or all `x` values
/// coincide (the slope would be undefined).
pub fn fit_linear(points: &[(f64, f64)]) -> Result<LinearFit, UnitError> {
    let n = points.len();
    if n < 2 {
        return Err(UnitError::OutOfRange {
            quantity: "fit points",
            value: n as f64,
            min: 2.0,
            max: f64::INFINITY,
        });
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    if sxx <= 0.0 {
        return Err(UnitError::NotPositive {
            quantity: "x variance",
            value: sxx,
        });
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let syy: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
        .sum();
    let r_squared = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
    Ok(LinearFit {
        intercept,
        slope,
        r_squared,
    })
}

/// An exponential trend `y = amplitude · e^{rate·x}`, fitted on log scale.
///
/// # Examples
///
/// ```
/// use maly_tech_trend::fit::fit_exponential;
///
/// // Perfect doubling every unit of x.
/// let points: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, 2f64.powi(i))).collect();
/// let fit = fit_exponential(&points).unwrap();
/// assert!((fit.rate() - std::f64::consts::LN_2).abs() < 1e-9);
/// assert!((fit.predict(6.0) - 64.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    amplitude: f64,
    rate: f64,
    r_squared: f64,
}

impl ExponentialFit {
    /// Amplitude (`y` at `x = 0`).
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Exponential rate (positive = growth, negative = decay).
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// R² of the underlying log-scale linear fit.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Predicted `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.amplitude * (self.rate * x).exp()
    }

    /// Growth factor over an interval `Δx` (e.g. per year).
    #[must_use]
    pub fn factor_per(&self, dx: f64) -> f64 {
        (self.rate * dx).exp()
    }
}

/// Fits `y = A·e^{B·x}` by linear least squares on `ln y`.
///
/// # Errors
///
/// Returns an error if any `y ≤ 0` (not representable on log scale) or
/// the underlying linear fit fails.
pub fn fit_exponential(points: &[(f64, f64)]) -> Result<ExponentialFit, UnitError> {
    let logged = log_y(points)?;
    let lin = fit_linear(&logged)?;
    Ok(ExponentialFit {
        amplitude: lin.intercept.exp(),
        rate: lin.slope,
        r_squared: lin.r_squared,
    })
}

/// A power-law trend `y = amplitude · x^exponent`, fitted on ln–ln scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    amplitude: f64,
    exponent: f64,
    r_squared: f64,
}

impl PowerLawFit {
    /// Amplitude (`y` at `x = 1`).
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// The power-law exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// R² of the underlying ln–ln linear fit.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Predicted `y` at `x` (requires `x > 0`).
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.amplitude * x.powf(self.exponent)
    }
}

/// Fits `y = A·x^B` by linear least squares on `(ln x, ln y)`.
///
/// # Errors
///
/// Returns an error if any coordinate is non-positive or the underlying
/// linear fit fails.
pub fn fit_power_law(points: &[(f64, f64)]) -> Result<PowerLawFit, UnitError> {
    for (x, y) in points {
        if *x <= 0.0 || !x.is_finite() {
            return Err(UnitError::NotPositive {
                quantity: "power-law x value",
                value: *x,
            });
        }
        if *y <= 0.0 || !y.is_finite() {
            return Err(UnitError::NotPositive {
                quantity: "power-law y value",
                value: *y,
            });
        }
    }
    let logged: Vec<(f64, f64)> = points.iter().map(|(x, y)| (x.ln(), y.ln())).collect();
    let lin = fit_linear(&logged)?;
    Ok(PowerLawFit {
        amplitude: lin.intercept.exp(),
        exponent: lin.slope,
        r_squared: lin.r_squared,
    })
}

/// The paper's wafer-cost escalation law fitted to data:
/// `C_w(λ) = C₀ · X^{k(1−λ)}` with `k = 5 /µm` (DESIGN.md §1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEscalationFit {
    /// Extracted per-generation escalation factor `X`.
    pub x_factor: f64,
    /// Extracted reference cost `C₀` (at λ = 1 µm).
    pub c0: f64,
    /// R² of the log-scale fit.
    pub r_squared: f64,
}

/// Extracts `X` and `C₀` from `(λ, wafer cost)` pairs.
///
/// Linearizes `ln C = ln C₀ + 5(1−λ)·ln X` and regresses `ln C` on
/// `5(1−λ)`. Applied to the Fig 2 wafer-cost series this lands in the
/// paper's quoted 1.2–1.4 band.
///
/// # Errors
///
/// Returns an error if costs are non-positive or the fit is degenerate.
pub fn extract_cost_escalation(points: &[(f64, f64)]) -> Result<CostEscalationFit, UnitError> {
    for (lambda, cost) in points {
        if *cost <= 0.0 || !cost.is_finite() {
            return Err(UnitError::NotPositive {
                quantity: "wafer cost",
                value: *cost,
            });
        }
        if *lambda <= 0.0 || !lambda.is_finite() {
            return Err(UnitError::NotPositive {
                quantity: "feature size",
                value: *lambda,
            });
        }
    }
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .map(|(lambda, cost)| (5.0 * (1.0 - lambda), cost.ln()))
        .collect();
    let lin = fit_linear(&transformed)?;
    Ok(CostEscalationFit {
        x_factor: lin.slope.exp(),
        c0: lin.intercept.exp(),
        r_squared: lin.r_squared,
    })
}

fn log_y(points: &[(f64, f64)]) -> Result<Vec<(f64, f64)>, UnitError> {
    points
        .iter()
        .map(|(x, y)| {
            if *y > 0.0 && y.is_finite() {
                Ok((*x, y.ln()))
            } else {
                Err(UnitError::NotPositive {
                    quantity: "log-scale y value",
                    value: *y,
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r_squared_degrades_with_noise() {
        let clean: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, i as f64)).collect();
        let noisy: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, x + if i % 2 == 0 { 3.0 } else { -3.0 })
            })
            .collect();
        let r_clean = fit_linear(&clean).unwrap().r_squared;
        let r_noisy = fit_linear(&noisy).unwrap().r_squared;
        assert!(r_clean > r_noisy);
    }

    #[test]
    fn linear_fit_needs_two_distinct_points() {
        assert!(fit_linear(&[(1.0, 2.0)]).is_err());
        assert!(fit_linear(&[(1.0, 2.0), (1.0, 3.0)]).is_err());
    }

    #[test]
    fn exponential_fit_recovers_decay() {
        // Feature-size-like decay: 10 µm halving every 5 years.
        let pts: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let t = 5.0 * i as f64;
                (t, 10.0 * 0.5f64.powf(t / 5.0))
            })
            .collect();
        let fit = fit_exponential(&pts).unwrap();
        assert!((fit.factor_per(5.0) - 0.5).abs() < 1e-9);
        assert!((fit.amplitude() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_fit_rejects_non_positive_y() {
        assert!(fit_exponential(&[(0.0, 1.0), (1.0, 0.0)]).is_err());
        assert!(fit_exponential(&[(0.0, 1.0), (1.0, -2.0)]).is_err());
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        // The Fig 5 tail: f ∝ R^{−4.07}.
        let pts: Vec<(f64, f64)> = (1..10)
            .map(|i| {
                let r = i as f64 * 0.5;
                (r, 3.0 * r.powf(-4.07))
            })
            .collect();
        let fit = fit_power_law(&pts).unwrap();
        assert!((fit.exponent() - (-4.07)).abs() < 1e-9);
        assert!((fit.amplitude() - 3.0).abs() < 1e-9);
        assert!((fit.predict(2.0) - 3.0 * 2.0f64.powf(-4.07)).abs() < 1e-9);
    }

    #[test]
    fn power_law_fit_rejects_non_positive_coordinates() {
        assert!(fit_power_law(&[(0.0, 1.0), (1.0, 2.0)]).is_err());
        assert!(fit_power_law(&[(1.0, 1.0), (2.0, -1.0)]).is_err());
    }

    #[test]
    fn cost_escalation_roundtrips_synthetic_data() {
        // Generate exact C = 600·1.3^{5(1−λ)} and recover X = 1.3.
        let pts: Vec<(f64, f64)> = [2.0, 1.5, 1.0, 0.8, 0.5, 0.35, 0.25]
            .iter()
            .map(|&l| (l, 600.0 * 1.3f64.powf(5.0 * (1.0 - l))))
            .collect();
        let fit = extract_cost_escalation(&pts).unwrap();
        assert!((fit.x_factor - 1.3).abs() < 1e-9);
        assert!((fit.c0 - 600.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn cost_escalation_validates_inputs() {
        assert!(extract_cost_escalation(&[(1.0, 0.0), (0.5, 100.0)]).is_err());
        assert!(extract_cost_escalation(&[(-1.0, 100.0), (0.5, 100.0)]).is_err());
    }
}
