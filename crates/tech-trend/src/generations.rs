//! The technology-generation ladder.
//!
//! "X is a rate of the cost increase measured per single technology
//! generation" — which requires saying what a generation *is*. This
//! module fixes the canonical node ladder of the early-1990s industry and
//! provides the generation arithmetic the cost model needs.

use maly_units::{Microns, UnitError};

/// The canonical node ladder (µm), descending, as used across Figs 1–4
/// and Tables 2–3.
pub const NODE_LADDER_UM: &[f64] = &[2.0, 1.5, 1.2, 1.0, 0.8, 0.65, 0.5, 0.35, 0.25, 0.18];

/// A named technology generation (one rung of the node ladder).
///
/// # Examples
///
/// ```
/// use maly_tech_trend::generations::TechnologyGeneration;
///
/// let g = TechnologyGeneration::closest_to(0.78);
/// assert_eq!(g.feature_size().value(), 0.8);
/// assert_eq!(g.successor().unwrap().feature_size().value(), 0.65);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TechnologyGeneration {
    index: usize,
}

impl TechnologyGeneration {
    /// The ladder rung whose feature size is closest to `lambda_um`.
    #[must_use]
    pub fn closest_to(lambda_um: f64) -> Self {
        let index = NODE_LADDER_UM
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (*a - lambda_um).abs().total_cmp(&(*b - lambda_um).abs()))
            .map_or(0, |(i, _)| i);
        Self { index }
    }

    /// The generation at a given ladder index.
    ///
    /// # Errors
    ///
    /// Returns an error if `index` is beyond the ladder.
    pub fn at_index(index: usize) -> Result<Self, UnitError> {
        if index < NODE_LADDER_UM.len() {
            Ok(Self { index })
        } else {
            Err(UnitError::OutOfRange {
                quantity: "generation index",
                value: index as f64,
                min: 0.0,
                max: (NODE_LADDER_UM.len() - 1) as f64,
            })
        }
    }

    /// Ladder index (0 = 2.0 µm).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Feature size of this generation.
    #[must_use]
    pub fn feature_size(&self) -> Microns {
        Microns::new(NODE_LADDER_UM[self.index]).expect("ladder values are positive")
    }

    /// The next (smaller) generation, if the ladder continues.
    #[must_use]
    pub fn successor(&self) -> Option<Self> {
        if self.index + 1 < NODE_LADDER_UM.len() {
            Some(Self {
                index: self.index + 1,
            })
        } else {
            None
        }
    }

    /// The previous (larger) generation, if any.
    #[must_use]
    pub fn predecessor(&self) -> Option<Self> {
        self.index.checked_sub(1).map(|index| Self { index })
    }

    /// Linear shrink factor to the next generation
    /// (`λ_next / λ_this`, < 1), if the ladder continues.
    #[must_use]
    pub fn shrink_factor(&self) -> Option<f64> {
        self.successor()
            .map(|next| next.feature_size().value() / self.feature_size().value())
    }

    /// Iterates the full ladder from this generation downward.
    pub fn walk_down(&self) -> impl Iterator<Item = TechnologyGeneration> + '_ {
        (self.index..NODE_LADDER_UM.len()).map(|index| TechnologyGeneration { index })
    }
}

impl std::fmt::Display for TechnologyGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} µm generation", NODE_LADDER_UM[self.index])
    }
}

/// Fractional number of generations between two feature sizes, measured
/// on the paper's `5·Δλ` exponent scale (`5(1−λ)` of eq. 3, see
/// DESIGN.md §1): one exponent unit ≈ one generation step of 0.2 µm near
/// the 1 µm node.
#[must_use]
pub fn generations_between(from: Microns, to: Microns) -> f64 {
    5.0 * (from.value() - to.value())
}

/// Fractional generations measured on the *geometric* scale, where one
/// generation is a fixed linear shrink of `0.7×` (the industry's
/// area-halving convention).
#[must_use]
pub fn geometric_generations_between(from: Microns, to: Microns) -> f64 {
    (from.value() / to.value()).ln() / (1.0 / 0.7f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    #[test]
    fn ladder_is_strictly_descending() {
        assert!(NODE_LADDER_UM.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn closest_to_snaps_to_nearest_rung() {
        assert_eq!(
            TechnologyGeneration::closest_to(0.85)
                .feature_size()
                .value(),
            0.8
        );
        // Exact midpoints resolve to the earlier (larger) rung.
        assert_eq!(
            TechnologyGeneration::closest_to(0.9).feature_size().value(),
            1.0
        );
        assert_eq!(
            TechnologyGeneration::closest_to(0.6).feature_size().value(),
            0.65
        );
        assert_eq!(
            TechnologyGeneration::closest_to(9.0).feature_size().value(),
            2.0
        );
        assert_eq!(
            TechnologyGeneration::closest_to(0.01)
                .feature_size()
                .value(),
            0.18
        );
    }

    #[test]
    fn successor_predecessor_roundtrip() {
        let g = TechnologyGeneration::closest_to(0.8);
        assert_eq!(g.successor().unwrap().predecessor().unwrap(), g);
        assert!(TechnologyGeneration::at_index(0)
            .unwrap()
            .predecessor()
            .is_none());
        let last = TechnologyGeneration::at_index(NODE_LADDER_UM.len() - 1).unwrap();
        assert!(last.successor().is_none());
    }

    #[test]
    fn at_index_validates() {
        assert!(TechnologyGeneration::at_index(99).is_err());
        assert!(TechnologyGeneration::at_index(0).is_ok());
    }

    #[test]
    fn shrink_factors_are_in_plausible_band() {
        let mut g = TechnologyGeneration::at_index(0).unwrap();
        while let Some(f) = g.shrink_factor() {
            assert!((0.6..0.9).contains(&f), "shrink factor {f} out of band");
            g = g.successor().unwrap();
        }
    }

    #[test]
    fn walk_down_covers_remaining_ladder() {
        let g = TechnologyGeneration::closest_to(0.5);
        let walked: Vec<f64> = g.walk_down().map(|x| x.feature_size().value()).collect();
        assert_eq!(walked, vec![0.5, 0.35, 0.25, 0.18]);
    }

    #[test]
    fn paper_scale_generations_match_exponent() {
        // 1.0 → 0.25 µm = 3.75 exponent units, the Fig 6/7 sweep span.
        assert!((generations_between(um(1.0), um(0.25)) - 3.75).abs() < 1e-12);
    }

    #[test]
    fn geometric_generations_near_four_for_quarter_micron() {
        // 1.0 → 0.25 µm at 0.7×/generation ≈ 3.9 generations — close to
        // the paper-scale count, which is why both conventions coexist.
        let g = geometric_generations_between(um(1.0), um(0.25));
        assert!((g - 3.887).abs() < 0.01);
    }

    #[test]
    fn display_names_the_node() {
        assert_eq!(
            TechnologyGeneration::closest_to(0.35).to_string(),
            "0.35 µm generation"
        );
    }
}
