//! Technology trend datasets and trend fitting (Figs 1–4 of the paper).
//!
//! Section II of the paper sets its stage with four empirical trends:
//!
//! * **Fig 1** — minimum feature size shrinking exponentially with time,
//! * **Fig 2** — fab-line and wafer cost growing exponentially with time,
//! * **Fig 3** — die size growing as features shrink
//!   (`A_ch(λ) = 16.5·e^{−5.3λ}` cm², the fit eq. (9) consumes),
//! * **Fig 4** — process step counts growing and required defect
//!   densities collapsing across generations.
//!
//! This crate carries representative historical series for each trend
//! ([`datasets`]), least-squares trend fitting on log scales ([`fit`]),
//! the canonical technology-generation ladder ([`generations`]), and the
//! die-size trend model ([`diesize`]). The fit machinery also extracts the
//! paper's `X` (wafer-cost escalation per generation) from cost-vs-node
//! data, reproducing the "1.2–1.4 from Fig 2" observation.
//!
//! # Examples
//!
//! ```
//! use maly_tech_trend::{datasets, fit};
//!
//! // Fig 1: feature size shrinks exponentially — fit the decay rate.
//! let trend = fit::fit_exponential(datasets::FEATURE_SIZE_BY_YEAR).unwrap();
//! assert!(trend.rate() < 0.0); // shrinking
//! assert!(trend.r_squared() > 0.98); // cleanly exponential
//! // Halving time of roughly 5–6 years.
//! let halving = -(2.0f64.ln()) / trend.rate();
//! assert!(halving > 4.0 && halving < 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod diesize;
pub mod fit;
pub mod generations;
pub mod sia;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_fab_cost_grows_exponentially() {
        let trend = fit::fit_exponential(datasets::FAB_COST_BY_YEAR).unwrap();
        assert!(trend.rate() > 0.0);
        assert!(trend.r_squared() > 0.97);
        // Doubling time around 3–5 years (the "billion-dollar fab" engine).
        let doubling = 2.0f64.ln() / trend.rate();
        assert!(doubling > 2.0 && doubling < 6.0, "doubling {doubling}");
    }

    #[test]
    fn fig2_extracted_x_is_in_paper_band() {
        // "Value of X extracted from the data presented in Fig. 2 is
        // between 1.2 − 1.4."
        let x = fit::extract_cost_escalation(datasets::WAFER_COST_BY_GENERATION).unwrap();
        assert!(
            x.x_factor > 1.2 && x.x_factor < 1.4,
            "extracted X = {}",
            x.x_factor
        );
    }
}
