//! Representative historical series behind Figs 1–4.
//!
//! The paper plots survey data from industry sources (\[1, 6, 7, 8, 9\])
//! that are not themselves published as tables. The series here encode
//! the same well-documented history of the industry (nodes and their
//! introduction years, fab costs, wafer costs, step counts, defect
//! density requirements); what the reproduction needs is the *shape* of
//! each trend, which these carry. See DESIGN.md §2 (substitutions).
//!
//! All series are `(x, y)` pairs ready for [`crate::fit`].

/// Fig 1 — minimum feature size (µm) by year of volume introduction.
///
/// The classic DRAM/µP node cadence from contact lithography to the
/// deep-submicron era the paper anticipates.
pub const FEATURE_SIZE_BY_YEAR: &[(f64, f64)] = &[
    (1971.0, 10.0),
    (1974.0, 6.0),
    (1977.0, 3.0),
    (1980.0, 2.0),
    (1983.0, 1.5),
    (1986.0, 1.0),
    (1989.0, 0.8),
    (1991.0, 0.65),
    (1993.0, 0.5),
    (1995.0, 0.35),
    (1997.0, 0.25),
];

/// Fig 2 (upper curve) — cost of a new fabrication line, in millions of
/// 1994 dollars, by year. Grows from single-digit millions to the
/// "1 billion dollars per fabline" the introduction warns about.
pub const FAB_COST_BY_YEAR: &[(f64, f64)] = &[
    (1970.0, 6.0),
    (1975.0, 20.0),
    (1980.0, 60.0),
    (1984.0, 120.0),
    (1988.0, 250.0),
    (1991.0, 450.0),
    (1994.0, 800.0),
    (1997.0, 1500.0),
];

/// Fig 2 (lower curve) — manufactured wafer cost (1994 dollars) by
/// technology node (µm). Anchored on the paper's quoted points: a 6-inch
/// 1 µm CMOS wafer at \$500–800 \[12, 13\] and a 0.8 µm, 3-metal wafer at
/// \$1300 \[14\].
pub const WAFER_COST_BY_GENERATION: &[(f64, f64)] = &[
    (2.0, 180.0),
    (1.5, 280.0),
    (1.2, 420.0),
    (1.0, 650.0),
    (0.8, 900.0),
    (0.65, 1150.0),
    (0.5, 1500.0),
    (0.35, 1900.0),
];

/// Fig 3 — die area (cm²) of leading-edge parts by year. Consistent with
/// the `A_ch(λ) = 16.5·e^{−5.3λ}` fit quoted under eq. (9) combined with
/// the node cadence of [`FEATURE_SIZE_BY_YEAR`].
pub const DIE_SIZE_BY_YEAR: &[(f64, f64)] = &[
    (1980.0, 0.000_42),
    (1983.0, 0.005_8),
    (1986.0, 0.082_0),
    (1989.0, 0.238_0),
    (1991.0, 0.528_0),
    (1993.0, 1.160_0),
    (1995.0, 2.580_0),
    (1997.0, 4.380_0),
];

/// Fig 3 (as a function of node) — die area (cm²) versus feature size
/// (µm). These points scatter around `16.5·e^{−5.3λ}`; fitting them with
/// [`crate::diesize::DieSizeTrend::fit`] recovers the paper's
/// coefficients.
pub const DIE_SIZE_BY_GENERATION: &[(f64, f64)] = &[
    (2.0, 0.000_41),
    (1.5, 0.006_1),
    (1.2, 0.028_0),
    (1.0, 0.080_0),
    (0.8, 0.245_0),
    (0.65, 0.510_0),
    (0.5, 1.190_0),
    (0.35, 2.540_0),
    (0.25, 4.450_0),
];

/// Fig 4 (rising curve) — number of manufacturing steps per technology
/// generation (µm → step count).
pub const PROCESS_STEPS_BY_GENERATION: &[(f64, f64)] = &[
    (2.0, 160.0),
    (1.5, 185.0),
    (1.2, 210.0),
    (1.0, 230.0),
    (0.8, 260.0),
    (0.65, 292.0),
    (0.5, 340.0),
    (0.35, 410.0),
    (0.25, 495.0),
];

/// Fig 4 (falling curve) — defect density (defects/cm²) *required* for
/// economic yield at each generation (µm → D₀).
pub const REQUIRED_DEFECT_DENSITY_BY_GENERATION: &[(f64, f64)] = &[
    (2.0, 5.0),
    (1.5, 3.0),
    (1.2, 1.8),
    (1.0, 1.2),
    (0.8, 0.7),
    (0.65, 0.45),
    (0.5, 0.25),
    (0.35, 0.12),
    (0.25, 0.06),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted_by_x(series: &[(f64, f64)], ascending: bool) -> bool {
        series.windows(2).all(|w| {
            if ascending {
                w[0].0 < w[1].0
            } else {
                w[0].0 > w[1].0
            }
        })
    }

    #[test]
    fn year_series_are_chronological() {
        assert!(is_sorted_by_x(FEATURE_SIZE_BY_YEAR, true));
        assert!(is_sorted_by_x(FAB_COST_BY_YEAR, true));
        assert!(is_sorted_by_x(DIE_SIZE_BY_YEAR, true));
    }

    #[test]
    fn generation_series_walk_down_the_ladder() {
        assert!(is_sorted_by_x(WAFER_COST_BY_GENERATION, false));
        assert!(is_sorted_by_x(DIE_SIZE_BY_GENERATION, false));
        assert!(is_sorted_by_x(PROCESS_STEPS_BY_GENERATION, false));
        assert!(is_sorted_by_x(REQUIRED_DEFECT_DENSITY_BY_GENERATION, false));
    }

    #[test]
    fn feature_size_strictly_shrinks() {
        assert!(FEATURE_SIZE_BY_YEAR.windows(2).all(|w| w[0].1 > w[1].1));
    }

    #[test]
    fn costs_and_steps_strictly_grow() {
        assert!(FAB_COST_BY_YEAR.windows(2).all(|w| w[0].1 < w[1].1));
        assert!(WAFER_COST_BY_GENERATION.windows(2).all(|w| w[0].1 < w[1].1));
        assert!(PROCESS_STEPS_BY_GENERATION
            .windows(2)
            .all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn required_defect_density_strictly_falls() {
        assert!(REQUIRED_DEFECT_DENSITY_BY_GENERATION
            .windows(2)
            .all(|w| w[0].1 > w[1].1));
    }

    #[test]
    fn wafer_cost_anchors_match_paper_quotes() {
        // 1 µm wafer between $500 and $800; 0.8 µm wafer near $1300 is the
        // paper's quote for a specific 3-metal process — our generic series
        // sits a bit below it, within the survey scatter.
        let at_1um = WAFER_COST_BY_GENERATION
            .iter()
            .find(|(l, _)| *l == 1.0)
            .unwrap()
            .1;
        assert!((500.0..=800.0).contains(&at_1um));
        let at_08 = WAFER_COST_BY_GENERATION
            .iter()
            .find(|(l, _)| *l == 0.8)
            .unwrap()
            .1;
        assert!((700.0..=1300.0).contains(&at_08));
    }

    #[test]
    fn all_values_positive() {
        for series in [
            FEATURE_SIZE_BY_YEAR,
            FAB_COST_BY_YEAR,
            WAFER_COST_BY_GENERATION,
            DIE_SIZE_BY_YEAR,
            DIE_SIZE_BY_GENERATION,
            PROCESS_STEPS_BY_GENERATION,
            REQUIRED_DEFECT_DENSITY_BY_GENERATION,
        ] {
            assert!(series.iter().all(|(x, y)| *x > 0.0 && *y > 0.0));
        }
    }
}
