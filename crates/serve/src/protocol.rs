//! The line-delimited JSON wire protocol.
//!
//! One request per line. A line holding a JSON *object* is a single
//! request:
//!
//! ```text
//! {"id": 7, "query": {"type": "table3_row", "id": 1}}
//! ```
//!
//! A line holding a JSON *array* of such objects is a batch: the server
//! evaluates its queries together on the `maly-par` executor and
//! answers with one JSON array line, element `i` answering request `i`.
//!
//! Every response carries the request's `id` back verbatim (or `null`
//! when the request was unparseable):
//!
//! ```text
//! {"id": 7, "ok": {"kind": "table3", ...}}
//! {"id": 7, "error": {"kind": "invalid-field", "message": "..."}}
//! ```
//!
//! Serialization is deterministic — the same request against the same
//! context produces the same bytes at every worker/executor width —
//! which is what lets the loopback tests compare served output against
//! direct in-process evaluation bit for bit.

use maly_model::json::{self, Json};
use maly_model::{Error, EvalContext, Query, QueryResponse};
use maly_par::Executor;

/// Request lines answered (single lines and batch lines each count
/// once). Work counter: invariant under worker and executor width for
/// a fixed client workload.
pub static REQUEST_LINES: maly_obs::Counter = maly_obs::Counter::work("serve.request_lines");
/// Individual queries evaluated out of batch (array) lines.
pub static BATCHED_QUERIES: maly_obs::Counter = maly_obs::Counter::work("serve.batched_queries");

/// The response object for one evaluated request.
#[must_use]
pub fn response_json(id: &Json, result: &Result<QueryResponse, Error>) -> Json {
    match result {
        Ok(response) => Json::obj(vec![("id", id.clone()), ("ok", response.to_json())]),
        Err(e) => error_json(id, e),
    }
}

/// The response object for a failed request.
#[must_use]
pub fn error_json(id: &Json, error: &Error) -> Json {
    Json::obj(vec![
        ("id", id.clone()),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::Str(error.kind().to_string())),
                ("message", Json::Str(error.to_string())),
            ]),
        ),
    ])
}

/// The serialized response line (no trailing newline) for one request.
#[must_use]
pub fn response_line(id: &Json, result: &Result<QueryResponse, Error>) -> String {
    response_json(id, result).write()
}

/// The serialized response line for a transport-level failure.
#[must_use]
pub fn error_line(error: &Error) -> String {
    error_json(&Json::Null, error).write()
}

/// Splits a request object into its echoed `id` and parsed query.
fn parse_request(v: &Json) -> (Json, Result<Query, Error>) {
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let query = match v.get("query") {
        Some(q) => Query::from_json(q),
        None => Err(Error::MissingField { field: "query" }),
    };
    (id, query)
}

/// Answers one request line: parse, evaluate (batching array lines
/// across the executor), serialize. Always returns exactly one line of
/// output (no trailing newline) — transport errors aside, a client can
/// match responses to requests by line position alone.
///
/// Array lines go through [`Query::evaluate_batch`], so byte-identical
/// queries in one line are answered once and fanned back out, and
/// overlapping surface tiles fuse their shared grid work
/// (`maly_model::plan`); the served bytes are identical either way.
#[must_use]
pub fn handle_line(exec: &Executor, ctx: &EvalContext, line: &str) -> String {
    let _span = maly_obs::span("serve.request");
    REQUEST_LINES.incr();
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(message) => return error_line(&Error::Parse { message }),
    };
    match parsed {
        Json::Arr(items) => {
            let requests: Vec<(Json, Result<Query, Error>)> =
                items.iter().map(parse_request).collect();
            let queries: Vec<Query> = requests
                .iter()
                .filter_map(|(_, q)| q.as_ref().ok().cloned())
                .collect();
            BATCHED_QUERIES.add(queries.len() as u64);
            let mut results = Query::evaluate_batch(exec, ctx, &queries).into_iter();
            let responses: Vec<Json> = requests
                .into_iter()
                .map(|(id, q)| match q {
                    Ok(_) => {
                        let result = results
                            .next()
                            .unwrap_or(Err(Error::Io("batch result missing".to_string())));
                        response_json(&id, &result)
                    }
                    Err(e) => error_json(&id, &e),
                })
                .collect();
            Json::Arr(responses).write()
        }
        obj => {
            let (id, query) = parse_request(&obj);
            match query {
                Ok(q) => response_line(&id, &q.evaluate_with(exec, ctx)),
                Err(e) => error_json(&id, &e).write(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_round_trips() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        let out = handle_line(
            &exec,
            &ctx,
            "{\"id\": 7, \"query\": {\"type\": \"table3_row\", \"id\": 1}}",
        );
        let v = json::parse(&out).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(7.0));
        assert!(v.get("ok").is_some(), "{out}");
        assert!(v.get("error").is_none());
    }

    #[test]
    fn batch_line_answers_in_order_with_per_element_errors() {
        let exec = Executor::with_threads(4);
        let ctx = EvalContext::new();
        let out = handle_line(
            &exec,
            &ctx,
            concat!(
                "[{\"id\": 1, \"query\": {\"type\": \"table3_row\", \"id\": 2}},",
                " {\"id\": 2, \"query\": {\"type\": \"nonsense\"}},",
                " {\"id\": 3, \"query\": {\"type\": \"product_mix\"}}]",
            ),
        );
        let v = json::parse(&out).unwrap();
        let items = v.as_arr().expect("batch in, batch out");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("id").and_then(Json::as_f64), Some(1.0));
        assert!(items[0].get("ok").is_some());
        assert_eq!(
            items[1]
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unknown-query-type")
        );
        assert_eq!(items[2].get("id").and_then(Json::as_f64), Some(3.0));
        assert!(items[2].get("ok").is_some());
    }

    #[test]
    fn malformed_line_is_a_parse_error_with_null_id() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        for bad in ["not json", "{\"id\": 1", "{} trailing", ""] {
            let out = handle_line(&exec, &ctx, bad);
            let v = json::parse(&out).unwrap();
            assert!(matches!(v.get("id"), Some(Json::Null)), "{bad:?} -> {out}");
            assert_eq!(
                v.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("parse"),
                "{bad:?} -> {out}"
            );
        }
    }

    #[test]
    fn missing_query_field_is_typed() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        let out = handle_line(&exec, &ctx, "{\"id\": 4}");
        let v = json::parse(&out).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("missing-field")
        );
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn responses_are_bit_identical_across_executor_widths() {
        let line = concat!(
            "[{\"id\": 1, \"query\": {\"type\": \"scenario2_sweep\", \"x\": 2.4}},",
            " {\"id\": 2, \"query\": {\"type\": \"table3\"}}]",
        );
        let serial = handle_line(&Executor::serial(), &EvalContext::new(), line);
        let wide = handle_line(&Executor::with_threads(8), &EvalContext::new(), line);
        assert_eq!(serial, wide);
    }
}
