//! The line-delimited JSON wire protocol.
//!
//! One request per line. A line holding a JSON *object* is a single
//! request:
//!
//! ```text
//! {"v": 1, "id": 7, "query": {"type": "table3_row", "id": 1}}
//! ```
//!
//! A line holding a JSON *array* of such objects is a batch: the server
//! evaluates its queries together on the `maly-par` executor and
//! answers with one JSON array line, element `i` answering request `i`.
//!
//! The envelope is versioned: `v` names the protocol version, and an
//! absent `v` means version 1, so every pre-envelope client (and every
//! committed golden) keeps its exact bytes. A version this server does
//! not speak is rejected with the stable `unsupported-version` error
//! kind; a `query.type` it does not know with `unsupported-query` (tag
//! echoed) — so old servers degrade gracefully under new clients.
//!
//! Every response carries the request's `id` back verbatim (or `null`
//! when the request was unparseable):
//!
//! ```text
//! {"id": 7, "ok": {"kind": "table3", ...}}
//! {"id": 7, "error": {"kind": "invalid-field", "message": "..."}}
//! ```
//!
//! Serialization is deterministic — the same request against the same
//! context produces the same bytes at every worker/executor width —
//! which is what lets the loopback tests compare served output against
//! direct in-process evaluation bit for bit.

use maly_model::json::{self, Json};
use maly_model::{Error, EvalContext, Query, QueryResponse};
use maly_par::Executor;

/// Request lines answered (single lines and batch lines each count
/// once). Work counter: invariant under worker and executor width for
/// a fixed client workload.
pub static REQUEST_LINES: maly_obs::Counter = maly_obs::Counter::work("serve.request_lines");
/// Individual queries evaluated out of batch (array) lines.
pub static BATCHED_QUERIES: maly_obs::Counter = maly_obs::Counter::work("serve.batched_queries");

/// End-to-end request latency (parse through serialized response),
/// attached to the `serve.request` span.
pub static REQUEST_NS: maly_obs::Histogram =
    maly_obs::Histogram::high_resolution("serve.request_ns");
/// Request-line JSON parse latency (`serve.parse` span).
pub static PARSE_NS: maly_obs::Histogram = maly_obs::Histogram::high_resolution("serve.parse_ns");
/// Evaluation latency for the line's queries (`serve.evaluate` span).
pub static EVALUATE_NS: maly_obs::Histogram =
    maly_obs::Histogram::high_resolution("serve.evaluate_ns");
/// Response serialization latency (`serve.write` span).
pub static WRITE_NS: maly_obs::Histogram = maly_obs::Histogram::high_resolution("serve.write_ns");

/// The response object for one evaluated request.
#[must_use]
pub fn response_json(id: &Json, result: &Result<QueryResponse, Error>) -> Json {
    match result {
        Ok(response) => Json::obj(vec![("id", id.clone()), ("ok", response.to_json())]),
        Err(e) => error_json(id, e),
    }
}

/// The response object for a failed request.
#[must_use]
pub fn error_json(id: &Json, error: &Error) -> Json {
    Json::obj(vec![
        ("id", id.clone()),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::Str(error.kind().to_string())),
                ("message", Json::Str(error.to_string())),
            ]),
        ),
    ])
}

/// The serialized response line (no trailing newline) for one request.
#[must_use]
pub fn response_line(id: &Json, result: &Result<QueryResponse, Error>) -> String {
    response_json(id, result).write()
}

/// The serialized response line for a transport-level failure.
#[must_use]
pub fn error_line(error: &Error) -> String {
    error_json(&Json::Null, error).write()
}

/// The serialized response line for a transport-level failure where
/// some request `id` could still be attributed (e.g. recovered from an
/// oversized line's prefix via [`recover_id`]).
#[must_use]
pub fn error_line_with_id(id: &Json, error: &Error) -> String {
    error_json(id, error).write()
}

/// Best-effort recovery of the request `id` from a possibly-truncated
/// line prefix.
///
/// An oversized request line is rejected before it fully arrives, so it
/// cannot be parsed as JSON — but clients conventionally put the `id`
/// first, so its bytes are almost always inside the retained prefix.
/// This scans for the first `"id"` key and reads the JSON scalar after
/// the colon (number, string, boolean, or `null`). Anything
/// unrecognized or itself truncated degrades to `null`, exactly what
/// the rejection would have carried anyway.
#[must_use]
pub fn recover_id(prefix: &str) -> Json {
    let bytes = prefix.as_bytes();
    let Some(key) = prefix.find("\"id\"") else {
        return Json::Null;
    };
    let mut i = key + 4;
    while bytes.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    if bytes.get(i) != Some(&b':') {
        return Json::Null;
    }
    i += 1;
    while bytes.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    let rest = &prefix[i.min(prefix.len())..];
    match rest.as_bytes().first() {
        Some(b'"') => {
            // A string id: take up to the closing unescaped quote; a
            // truncated string never closes and degrades to null.
            let inner = &rest[1..];
            let mut out = String::new();
            let mut chars = inner.chars();
            while let Some(c) = chars.next() {
                match c {
                    '"' => return Json::Str(out),
                    '\\' => match chars.next() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some(other) => {
                            out.push('\\');
                            out.push(other);
                        }
                        None => return Json::Null,
                    },
                    c => out.push(c),
                }
            }
            Json::Null
        }
        Some(b'n') if rest.starts_with("null") => Json::Null,
        Some(b't') if rest.starts_with("true") => Json::Bool(true),
        Some(b'f') if rest.starts_with("false") => Json::Bool(false),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let end = rest
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(rest.len());
            rest[..end].parse::<f64>().map_or(Json::Null, Json::Num)
        }
        _ => Json::Null,
    }
}

/// The one protocol version this server speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Validates the optional envelope version field: absent means
/// [`PROTOCOL_VERSION`], any other value is a typed rejection.
fn check_version(v: &Json) -> Result<(), Error> {
    match v.get("v") {
        None => Ok(()),
        Some(Json::Num(n)) => {
            // audit:allow(float-cmp): exact integrality test — versions
            // are small integers, not measurements.
            if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(n) {
                let version = *n as u64;
                if version == PROTOCOL_VERSION {
                    Ok(())
                } else {
                    Err(Error::UnsupportedVersion { version })
                }
            } else {
                Err(Error::InvalidField {
                    field: "v",
                    message: format!("expected a non-negative integer version, got {n}"),
                })
            }
        }
        Some(_) => Err(Error::InvalidField {
            field: "v",
            message: "expected a number".to_string(),
        }),
    }
}

/// Splits a request object into its echoed `id` and parsed query,
/// enforcing the envelope version first (each element of a batch line
/// carries its own envelope).
fn parse_request(v: &Json) -> (Json, Result<Query, Error>) {
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let query = match check_version(v) {
        Err(e) => Err(e),
        Ok(()) => match v.get("query") {
            Some(q) => Query::from_json(q),
            None => Err(Error::MissingField { field: "query" }),
        },
    };
    (id, query)
}

/// Answers one request line: parse, evaluate (batching array lines
/// across the executor), serialize. Always returns exactly one line of
/// output (no trailing newline) — transport errors aside, a client can
/// match responses to requests by line position alone.
///
/// Array lines go through [`Query::evaluate_batch`], so byte-identical
/// queries in one line are answered once and fanned back out, and
/// overlapping surface tiles fuse their shared grid work
/// (`maly_model::plan`); the served bytes are identical either way.
#[must_use]
pub fn handle_line(exec: &Executor, ctx: &EvalContext, line: &str) -> String {
    let _span = maly_obs::span("serve.request").with_histogram(&REQUEST_NS);
    REQUEST_LINES.incr();
    let parsed = {
        let _parse = maly_obs::span("serve.parse").with_histogram(&PARSE_NS);
        json::parse(line)
    };
    let parsed = match parsed {
        Ok(v) => v,
        Err(message) => return error_line(&Error::Parse { message }),
    };
    match parsed {
        Json::Arr(items) => {
            let requests: Vec<(Json, Result<Query, Error>)> =
                items.iter().map(parse_request).collect();
            let queries: Vec<Query> = requests
                .iter()
                .filter_map(|(_, q)| q.as_ref().ok().cloned())
                .collect();
            BATCHED_QUERIES.add(queries.len() as u64);
            let mut results = {
                let _eval = maly_obs::span("serve.evaluate").with_histogram(&EVALUATE_NS);
                Query::evaluate_batch(exec, ctx, &queries)
            }
            .into_iter();
            let _write = maly_obs::span("serve.write").with_histogram(&WRITE_NS);
            let responses: Vec<Json> = requests
                .into_iter()
                .map(|(id, q)| match q {
                    Ok(_) => {
                        let result = results
                            .next()
                            .unwrap_or(Err(Error::Io("batch result missing".to_string())));
                        response_json(&id, &result)
                    }
                    Err(e) => error_json(&id, &e),
                })
                .collect();
            Json::Arr(responses).write()
        }
        obj => {
            let (id, query) = parse_request(&obj);
            match query {
                Ok(q) => {
                    let result = {
                        let _eval = maly_obs::span("serve.evaluate").with_histogram(&EVALUATE_NS);
                        q.evaluate_with(exec, ctx)
                    };
                    let _write = maly_obs::span("serve.write").with_histogram(&WRITE_NS);
                    response_line(&id, &result)
                }
                Err(e) => error_json(&id, &e).write(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_round_trips() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        let out = handle_line(
            &exec,
            &ctx,
            "{\"id\": 7, \"query\": {\"type\": \"table3_row\", \"id\": 1}}",
        );
        let v = json::parse(&out).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(7.0));
        assert!(v.get("ok").is_some(), "{out}");
        assert!(v.get("error").is_none());
    }

    #[test]
    fn batch_line_answers_in_order_with_per_element_errors() {
        let exec = Executor::with_threads(4);
        let ctx = EvalContext::new();
        let out = handle_line(
            &exec,
            &ctx,
            concat!(
                "[{\"id\": 1, \"query\": {\"type\": \"table3_row\", \"id\": 2}},",
                " {\"id\": 2, \"query\": {\"type\": \"nonsense\"}},",
                " {\"id\": 3, \"query\": {\"type\": \"product_mix\"}}]",
            ),
        );
        let v = json::parse(&out).unwrap();
        let items = v.as_arr().expect("batch in, batch out");
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("id").and_then(Json::as_f64), Some(1.0));
        assert!(items[0].get("ok").is_some());
        assert_eq!(
            items[1]
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unsupported-query")
        );
        assert!(
            items[1]
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .is_some_and(|m| m.contains("nonsense")),
            "the offending tag must be echoed"
        );
        assert_eq!(items[2].get("id").and_then(Json::as_f64), Some(3.0));
        assert!(items[2].get("ok").is_some());
    }

    #[test]
    fn malformed_line_is_a_parse_error_with_null_id() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        for bad in ["not json", "{\"id\": 1", "{} trailing", ""] {
            let out = handle_line(&exec, &ctx, bad);
            let v = json::parse(&out).unwrap();
            assert!(matches!(v.get("id"), Some(Json::Null)), "{bad:?} -> {out}");
            assert_eq!(
                v.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("parse"),
                "{bad:?} -> {out}"
            );
        }
    }

    #[test]
    fn missing_query_field_is_typed() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        let out = handle_line(&exec, &ctx, "{\"id\": 4}");
        let v = json::parse(&out).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("missing-field")
        );
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn id_recovery_reads_scalars_from_truncated_prefixes() {
        assert_eq!(recover_id("{\"id\": 7, \"query\": {\"type"), Json::Num(7.0));
        assert_eq!(recover_id("{\"id\":-2.5e3,\"query"), Json::Num(-2500.0));
        assert_eq!(
            recover_id("{\"id\": \"req-9\", \"query"),
            Json::Str("req-9".to_string())
        );
        assert_eq!(
            recover_id("{\"id\": \"a\\\"b\", \"query"),
            Json::Str("a\"b".to_string())
        );
        assert_eq!(recover_id("{\"id\": true,"), Json::Bool(true));
        assert_eq!(recover_id("{\"id\": null,"), Json::Null);
        // Unrecoverable prefixes degrade to null: no id key at all, a
        // string id cut mid-way, or a non-scalar value.
        assert_eq!(recover_id("{\"query\": {\"type\": \"table3\""), Json::Null);
        assert_eq!(recover_id("{\"id\": \"trunca"), Json::Null);
        assert_eq!(recover_id("{\"id\": [1,"), Json::Null);
        assert_eq!(recover_id(""), Json::Null);
    }

    #[test]
    fn explicit_version_1_is_byte_identical_to_versionless() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        let versionless = handle_line(
            &exec,
            &ctx,
            "{\"id\": 7, \"query\": {\"type\": \"table3_row\", \"id\": 1}}",
        );
        let versioned = handle_line(
            &exec,
            &ctx,
            "{\"v\": 1, \"id\": 7, \"query\": {\"type\": \"table3_row\", \"id\": 1}}",
        );
        assert_eq!(versionless, versioned);
    }

    #[test]
    fn unknown_versions_are_rejected_with_a_stable_kind() {
        let exec = Executor::serial();
        let ctx = EvalContext::new();
        let out = handle_line(
            &exec,
            &ctx,
            "{\"v\": 2, \"id\": 9, \"query\": {\"type\": \"table3\"}}",
        );
        let v = json::parse(&out).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(9.0));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unsupported-version")
        );
        // Non-integer and non-numeric versions are malformed fields,
        // not version negotiations.
        for bad in [
            "{\"v\": 1.5, \"id\": 1, \"query\": {\"type\": \"table3\"}}",
            "{\"v\": \"1\", \"id\": 1, \"query\": {\"type\": \"table3\"}}",
            "{\"v\": -1, \"id\": 1, \"query\": {\"type\": \"table3\"}}",
        ] {
            let out = handle_line(&exec, &ctx, bad);
            let v = json::parse(&out).unwrap();
            assert_eq!(
                v.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("invalid-field"),
                "{bad}"
            );
        }
        // Batch elements carry their own envelopes: one bad version
        // fails only its element.
        let out = handle_line(
            &exec,
            &ctx,
            concat!(
                "[{\"v\": 1, \"id\": 1, \"query\": {\"type\": \"table3_row\", \"id\": 1}},",
                " {\"v\": 3, \"id\": 2, \"query\": {\"type\": \"table3_row\", \"id\": 1}}]",
            ),
        );
        let v = json::parse(&out).unwrap();
        let items = v.as_arr().expect("batch in, batch out");
        assert!(items[0].get("ok").is_some());
        assert_eq!(
            items[1]
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unsupported-version")
        );
    }

    #[test]
    fn responses_are_bit_identical_across_executor_widths() {
        let line = concat!(
            "[{\"id\": 1, \"query\": {\"type\": \"scenario2_sweep\", \"x\": 2.4}},",
            " {\"id\": 2, \"query\": {\"type\": \"table3\"}}]",
        );
        let serial = handle_line(&Executor::serial(), &EvalContext::new(), line);
        let wide = handle_line(&Executor::with_threads(8), &EvalContext::new(), line);
        assert_eq!(serial, wide);
    }
}
