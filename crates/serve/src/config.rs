//! Server tuning knobs.

/// Default bound on a single request line, in bytes. A full Table 3
/// batch request is well under 4 KiB; 1 MiB leaves two orders of
/// magnitude of headroom while keeping a misbehaving client from
/// ballooning a worker's read buffer.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Default bound on connections parked waiting for a worker.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Configuration for [`crate::server::Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Connection worker threads (the accept loop runs on the caller).
    pub workers: usize,
    /// Largest accepted request line in bytes; longer lines are
    /// answered with `payload-too-large` and the connection is closed.
    pub max_line_bytes: usize,
    /// Accepted connections parked waiting for a free worker; beyond
    /// this the server answers `overloaded` and closes immediately
    /// rather than queueing unboundedly.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

impl ServeConfig {
    /// A config bound to `addr` with defaults elsewhere.
    #[must_use]
    pub fn bind(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            ..Self::default()
        }
    }

    /// Sets the worker-thread count (`0` is treated as 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the request-line size bound.
    #[must_use]
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes.max(2);
        self
    }

    /// Sets the parked-connection bound.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_degenerate_values() {
        let c = ServeConfig::bind("127.0.0.1:0")
            .workers(0)
            .max_line_bytes(0)
            .queue_capacity(0);
        assert_eq!(c.workers, 1);
        assert!(c.max_line_bytes >= 2);
        assert_eq!(c.queue_capacity, 1);
    }
}
