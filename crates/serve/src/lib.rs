//! `maly-serve` — a batched TCP query service over the unified
//! `maly-model` evaluation API.
//!
//! The server speaks line-delimited JSON on a plain `TcpListener`:
//! one request per line, one response line per request, batches as
//! JSON-array lines evaluated together on the `maly-par` executor (see
//! [`protocol`] for the wire format). Everything is `std`-only — the
//! JSON codec is `maly_model::json`, the threads come from
//! [`maly_par::Executor::run_workers`], and there is no async runtime.
//!
//! Long-lived state is the process-wide [`maly_model::EvalContext`]:
//! calibration artifacts fit once behind a `OnceLock` plus the bounded
//! surface-tile cache, so a warm repeat query answers without
//! re-evaluating a single grid cell (asserted by the loopback tests
//! via the `model.tile_cells` Work counter, not wall clock).
//!
//! Determinism: served responses are bit-identical to direct
//! [`maly_model::Query::evaluate_with`] evaluation at every worker
//! and executor width — the loopback suite runs 1/2/8 workers against
//! the same mixed workload and compares bytes.
//!
//! ```no_run
//! use maly_par::Executor;
//! use maly_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig::bind("127.0.0.1:7878").workers(4)).unwrap();
//! server.serve(&Executor::from_env()); // blocks until handle().shutdown()
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod protocol;
pub mod server;

pub use config::ServeConfig;
pub use server::{Server, ServerHandle};
