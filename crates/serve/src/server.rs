//! The multi-threaded TCP server.
//!
//! Thread model: [`Server::serve`] blocks the caller and runs the
//! accept loop there; `workers` connection workers run on scoped
//! threads obtained through [`maly_par::Executor::run_workers`] — the
//! workspace's one sanctioned thread source. Accepted connections park
//! in a bounded queue; when it is full the server answers `overloaded`
//! and closes instead of queueing without bound (backpressure the
//! client can see and retry on).
//!
//! Shared state is the process-wide [`maly_model::EvalContext`]: the
//! `OnceLock`-fit calibration artifacts plus the warm surface-tile
//! cache, so a repeated `surface_tile` query answers without
//! re-evaluating a single grid cell no matter which worker picks it up.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] raises a flag,
//! wakes the accept loop with a throwaway self-connection, and wakes
//! idle workers; in-flight connections drain before their workers exit.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use maly_model::{Error, EvalContext};
use maly_par::Executor;

use crate::config::ServeConfig;
use crate::protocol;

/// Connections accepted (diagnostic: depends on client behavior).
pub static CONNECTIONS: maly_obs::Counter = maly_obs::Counter::diag("serve.connections");
/// Connections refused because the parked queue was full (answered
/// `overloaded` and closed — backpressure the client can observe).
pub static REFUSED: maly_obs::Counter = maly_obs::Counter::diag("serve.refused");
/// Request lines refused for exceeding the size bound.
pub static REJECTED_OVERSIZE: maly_obs::Counter =
    maly_obs::Counter::diag("serve.rejected_oversize");
/// Accepted connections parked waiting for a worker, right now.
pub static QUEUE_DEPTH: maly_obs::Gauge = maly_obs::Gauge::new("serve.queue_depth");
/// Connections currently being served by a worker.
pub static INFLIGHT: maly_obs::Gauge = maly_obs::Gauge::new("serve.inflight");

/// State shared between the accept loop, the workers, and handles.
#[derive(Debug)]
struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// A bound, not-yet-serving query server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    shared: Arc<Shared>,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop: the accept loop exits, idle workers
    /// wake and exit, and in-flight connections drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop may be blocked in `accept`; a throwaway
        // self-connection gets it to re-check the flag.
        drop(TcpStream::connect(self.addr));
        self.shared.ready.notify_all();
    }
}

impl Server {
    /// Binds the configured address.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            config,
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The actually-bound address (resolves `:0` to the picked port).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, Error> {
        Ok(self.listener.local_addr()?)
    }

    /// A remote control usable from other threads.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the socket cannot report its address.
    pub fn handle(&self) -> Result<ServerHandle, Error> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Serves until [`ServerHandle::shutdown`] is called, blocking the
    /// caller (which doubles as the accept loop).
    ///
    /// Queries evaluate on `exec` against the process-wide
    /// [`EvalContext`], so every worker shares one warm tile cache and
    /// results are bit-identical at every worker and executor width.
    pub fn serve(&self, exec: &Executor) {
        let _span = maly_obs::span("serve.run");
        let workers = Executor::with_threads(self.config.workers.max(1) + 1);
        workers.run_workers(|w| {
            if w == 0 {
                self.accept_loop();
            } else {
                self.worker_loop(exec);
            }
        });
    }

    fn accept_loop(&self) {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // Responses are small single lines; leaving Nagle on would
            // trade up to a delayed-ACK interval (~40 ms) of latency
            // for batching we never benefit from.
            drop(stream.set_nodelay(true));
            CONNECTIONS.incr();
            let rejected = {
                let Ok(mut queue) = self.shared.queue.lock() else {
                    break;
                };
                if queue.len() >= self.config.queue_capacity {
                    Some(stream)
                } else {
                    queue.push_back(stream);
                    QUEUE_DEPTH.incr();
                    None
                }
            };
            match rejected {
                None => self.shared.ready.notify_one(),
                Some(mut stream) => {
                    // Backpressure the client can see: answer
                    // `overloaded` and close instead of queueing
                    // without bound.
                    REFUSED.incr();
                    let line = protocol::error_line(&Error::Overloaded);
                    drop(write_line(&mut stream, &line));
                }
            }
        }
        // Unblock every parked worker so they can observe the flag.
        self.shared.ready.notify_all();
    }

    fn worker_loop(&self, exec: &Executor) {
        loop {
            let stream = {
                let Ok(mut queue) = self.shared.queue.lock() else {
                    return;
                };
                loop {
                    if let Some(stream) = queue.pop_front() {
                        QUEUE_DEPTH.decr();
                        break Some(stream);
                    }
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    match self.shared.ready.wait(queue) {
                        Ok(guard) => queue = guard,
                        Err(_) => break None,
                    }
                }
            };
            let Some(stream) = stream else { return };
            INFLIGHT.incr();
            handle_connection(stream, exec, self.config.max_line_bytes);
            INFLIGHT.decr();
        }
    }
}

/// Serves one connection until EOF or a fatal protocol violation.
fn handle_connection(stream: TcpStream, exec: &Executor, max_line_bytes: usize) {
    let _span = maly_obs::span("serve.connection");
    let ctx = EvalContext::process();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        // Bound the read: one byte of headroom distinguishes "exactly
        // at the limit" from "exceeds it".
        let bound = (max_line_bytes as u64).saturating_add(1);
        let n = match (&mut reader).take(bound).read_until(b'\n', &mut buf) {
            Ok(n) => n,
            Err(_) => return,
        };
        if n == 0 {
            return; // EOF: client is done.
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        } else if buf.len() as u64 >= bound {
            REJECTED_OVERSIZE.incr();
            // Best-effort id echo: the full line never arrives, but the
            // `id` key conventionally leads the request object, so its
            // bytes usually sit inside the retained prefix.
            let id = protocol::recover_id(&String::from_utf8_lossy(&buf));
            let line = protocol::error_line_with_id(
                &id,
                &Error::PayloadTooLarge {
                    limit: max_line_bytes,
                },
            );
            drop(write_line(&mut writer, &line));
            return; // The rest of the oversized line is unrecoverable.
        }
        let text = String::from_utf8_lossy(&buf);
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = protocol::handle_line(exec, ctx, trimmed);
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
