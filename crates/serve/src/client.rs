//! A minimal blocking client for the wire protocol.
//!
//! Used by the CLI's `query` subcommand and the loopback integration
//! tests. One connection, line-in/line-out: responses come back in
//! request order, so [`query_lines`] pairs them by position.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use maly_model::json::{self, Json};
use maly_model::{Error, Query, QueryResponse};

/// Connects to `addr`, retrying while the server finishes binding.
/// Retries are capped (~2 s total) so a dead server fails fast.
///
/// # Errors
///
/// Returns [`Error::Io`] when every attempt is refused.
pub fn connect(addr: &str) -> Result<TcpStream, Error> {
    let mut last = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                // Request lines are small; Nagle would stall pipelined
                // writers for a delayed-ACK interval per line.
                drop(stream.set_nodelay(true));
                return Ok(stream);
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    Err(last.map_or(Error::Io("unreachable".to_string()), Error::from))
}

/// Sends each request line and collects one response line per request,
/// in order.
///
/// # Errors
///
/// Returns [`Error::Io`] on connect/write failures or when the server
/// closes the connection before answering every line (which it does
/// after rejecting an oversized payload).
pub fn query_lines(addr: &str, lines: &[String]) -> Result<Vec<String>, Error> {
    let stream = connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(Error::Io("server closed the connection".to_string()));
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}

/// Sends one typed query and decodes the typed outcome: the evaluation
/// result on `ok`, the server's reported error otherwise.
///
/// # Errors
///
/// Returns transport errors, the server's reported error, or
/// [`Error::Parse`] when the response line is not valid protocol JSON.
pub fn query_one(addr: &str, query: &Query) -> Result<Json, Error> {
    let request = Json::obj(vec![("id", Json::Num(0.0)), ("query", query.to_json())]);
    let responses = query_lines(addr, &[request.write()])?;
    let line = responses
        .first()
        .ok_or_else(|| Error::Io("no response".to_string()))?;
    decode_response(line)
}

/// Splits a response line into its `ok` payload or typed error.
///
/// # Errors
///
/// Returns the server's error verbatim (as [`Error::Io`] wrapping the
/// reported kind and message for kinds that only the transport layer
/// produces), or [`Error::Parse`] for malformed protocol lines.
pub fn decode_response(line: &str) -> Result<Json, Error> {
    let v = json::parse(line).map_err(|message| Error::Parse { message })?;
    if let Some(ok) = v.get("ok") {
        return Ok(ok.clone());
    }
    let Some(error) = v.get("error") else {
        return Err(Error::Parse {
            message: "response carries neither `ok` nor `error`".to_string(),
        });
    };
    let kind = error.get("kind").and_then(Json::as_str).unwrap_or("io");
    let message = error
        .get("message")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    Err(match kind {
        "overloaded" => Error::Overloaded,
        "parse" => Error::Parse { message },
        _ => Error::Io(format!("server error [{kind}]: {message}")),
    })
}

/// The response line the server would produce for `query` evaluated
/// directly in-process — what the loopback determinism tests compare
/// served bytes against.
#[must_use]
pub fn expected_line(id: &Json, result: &Result<QueryResponse, Error>) -> String {
    crate::protocol::response_line(id, result)
}
