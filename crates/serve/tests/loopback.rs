//! Loopback integration tests: a real server on 127.0.0.1, real
//! sockets, and the determinism contract checked byte for byte.
//!
//! Process-wide state (the shared EvalContext and the obs counters) is
//! serialized behind one test mutex so counter deltas are attributable.

use std::sync::{Mutex, MutexGuard, OnceLock};

use maly_model::json::{self, Json};
use maly_model::{EvalContext, Query};
use maly_par::Executor;
use maly_serve::{client, protocol, ServeConfig, Server, ServerHandle};

/// Serializes tests that observe process-global counters or the shared
/// tile cache.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn start(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind 127.0.0.1:0");
    let handle = server.handle().expect("local addr");
    let join = std::thread::spawn(move || server.serve(&Executor::with_threads(2)));
    (handle, join)
}

fn request_line(id: f64, query: &Query) -> String {
    Json::obj(vec![("id", Json::Num(id)), ("query", query.to_json())]).write()
}

/// A mixed workload exercising every query family, including one batch
/// line (a JSON array evaluated together on the executor).
fn mixed_workload() -> Vec<String> {
    let spec_line = concat!(
        "{\"id\": 10, \"query\": {\"type\": \"product\", \"name\": \"row1\", ",
        "\"transistors\": 3.1e6, \"lambda_um\": 0.8, \"density\": 150, ",
        "\"yield0\": 0.9, \"c0\": 700, \"x\": 1.4}}"
    )
    .to_string();
    vec![
        spec_line,
        request_line(11.0, &Query::Table3Row { id: 5 }),
        request_line(12.0, &Query::Table3),
        request_line(
            13.0,
            &Query::Scenario1Sweep {
                x: 1.4,
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 19,
            },
        ),
        request_line(
            14.0,
            &Query::Scenario2Sweep {
                x: 2.4,
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 19,
            },
        ),
        request_line(
            15.0,
            &Query::SurfaceTile {
                lambda_min: 0.45,
                lambda_max: 1.35,
                lambda_steps: 10,
                n_tr_min: 5.0e4,
                n_tr_max: 2.0e6,
                n_tr_steps: 8,
            },
        ),
        request_line(
            16.0,
            &Query::McYield {
                products: 3,
                volume_each: 2_000.0,
                replications: 12,
                jitter: 0.3,
                seed: 99,
            },
        ),
        request_line(
            17.0,
            &Query::Roadmap {
                from: 1990,
                to: 1996,
            },
        ),
        request_line(
            18.0,
            &Query::ProductMix {
                products: 6,
                volume_each: 1_500.0,
                mono_volume: 80_000.0,
            },
        ),
        request_line(
            19.0,
            &Query::ChipletCost {
                transistors: 2.0e6,
                lambda_um: 1.0,
                chiplets: 4,
                spares: 1,
                volume: 50_000,
            },
        ),
        request_line(
            23.0,
            &Query::ChipletPartitionSweep {
                transistors: 2.0e6,
                volume: 50_000,
                lambda_min: 0.5,
                lambda_max: 1.2,
                lambda_steps: 15,
                max_chiplets: 8,
                max_spares: 1,
            },
        ),
        // One batch line: three queries answered as one array line.
        format!(
            "[{}, {}, {}]",
            Json::obj(vec![
                ("id", Json::Num(20.0)),
                ("query", Query::Table3Row { id: 1 }.to_json()),
            ])
            .write(),
            Json::obj(vec![
                ("id", Json::Num(21.0)),
                ("query", Query::Table3Row { id: 2 }.to_json()),
            ])
            .write(),
            Json::obj(vec![
                ("id", Json::Num(22.0)),
                (
                    "query",
                    Query::OptimalLambda {
                        spec: maly_model::query::ProductSpec {
                            name: "opt".to_string(),
                            transistors: 1.0e6,
                            lambda_um: 0.8,
                            density: 150.0,
                            radius_cm: 7.5,
                            yield0: 0.9,
                            c0: 700.0,
                            x: 1.4,
                        },
                        lambda_min: 0.4,
                        lambda_max: 1.2,
                        steps: 33,
                    }
                    .to_json()
                ),
            ])
            .write(),
        ),
    ]
}

/// Direct in-process evaluation of the same workload: the reference
/// bytes every served configuration must reproduce exactly.
fn direct_reference(lines: &[String]) -> Vec<String> {
    let exec = Executor::serial();
    let ctx = EvalContext::new();
    lines
        .iter()
        .map(|line| protocol::handle_line(&exec, &ctx, line))
        .collect()
}

#[test]
fn served_responses_are_bit_identical_at_1_2_8_workers() {
    let _guard = lock();
    let lines = mixed_workload();
    let expected = direct_reference(&lines);
    for workers in [1usize, 2, 8] {
        let (handle, join) = start(ServeConfig::default().workers(workers));
        let addr = handle.addr().to_string();
        let got = client::query_lines(&addr, &lines).expect("loopback round trip");
        assert_eq!(
            got, expected,
            "served bytes must match direct evaluation at {workers} workers"
        );
        handle.shutdown();
        join.join().expect("server thread exits cleanly");
    }
}

#[test]
fn concurrent_clients_get_correct_interleaved_answers() {
    let _guard = lock();
    let lines = mixed_workload();
    let expected = direct_reference(&lines);
    let (handle, join) = start(ServeConfig::default().workers(4));
    let addr = handle.addr().to_string();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _client in 0..4 {
            let addr = addr.clone();
            let lines = &lines;
            let expected = &expected;
            joins.push(scope.spawn(move || {
                let got = client::query_lines(&addr, lines).expect("round trip");
                assert_eq!(&got, expected);
            }));
        }
        for j in joins {
            j.join().expect("client thread");
        }
    });
    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn malformed_requests_are_rejected_with_typed_errors() {
    let _guard = lock();
    let (handle, join) = start(ServeConfig::default().workers(1));
    let addr = handle.addr().to_string();
    let lines = vec![
        "this is not json".to_string(),
        "{\"id\": 1}".to_string(),
        "{\"id\": 2, \"query\": {\"type\": \"nonsense\"}}".to_string(),
        "{\"id\": 3, \"query\": {\"type\": \"table3_row\", \"id\": 99}}".to_string(),
        "{\"id\": 4, \"query\": {\"type\": \"product\", \"transistors\": \"many\"}}".to_string(),
    ];
    let got = client::query_lines(&addr, &lines).expect("round trip");
    let kinds: Vec<String> = got
        .iter()
        .map(|line| {
            json::parse(line)
                .expect("protocol JSON")
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .expect("error kind")
                .to_string()
        })
        .collect();
    assert_eq!(
        kinds,
        vec![
            "parse",
            "missing-field",
            "unsupported-query",
            "unknown-table-row",
            "invalid-field",
        ]
    );
    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn oversized_payloads_are_rejected_and_the_connection_closed() {
    let _guard = lock();
    let (handle, join) = start(ServeConfig::default().workers(1).max_line_bytes(256));
    let addr = handle.addr().to_string();
    let huge = format!(
        "{{\"id\": 1, \"query\": {{\"type\": \"table3\", \"pad\": \"{}\"}}}}",
        "x".repeat(1024)
    );
    let got = client::query_lines(&addr, std::slice::from_ref(&huge)).expect("error line arrives");
    let v = json::parse(&got[0]).expect("protocol JSON");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("payload-too-large")
    );
    // Best-effort id echo: `"id": 1` sits inside the retained prefix of
    // the oversized line, so the rejection is attributable.
    assert_eq!(
        v.get("id").and_then(Json::as_f64),
        Some(1.0),
        "the id is recovered from the truncated prefix: {got:?}"
    );
    // The server closes after an oversized line: a follow-up on the
    // same connection cannot be answered, but a fresh connection works.
    let again = client::query_lines(&addr, &[request_line(2.0, &Query::Table3Row { id: 1 })])
        .expect("fresh connection serves normally");
    assert!(again[0].contains("\"ok\""));
    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn warm_tile_cache_answers_repeat_queries_without_grid_work() {
    let _guard = lock();
    let (handle, join) = start(ServeConfig::default().workers(2));
    let addr = handle.addr().to_string();
    // A window no other test requests, so the first query is a real
    // cache miss attributable to this test.
    let tile = request_line(
        1.0,
        &Query::SurfaceTile {
            lambda_min: 0.55,
            lambda_max: 1.25,
            lambda_steps: 13,
            n_tr_min: 7.0e4,
            n_tr_max: 9.0e5,
            n_tr_steps: 11,
        },
    );
    let before = maly_model::context::TILE_CELLS.value();
    let hits0 = maly_model::context::TILE_HITS.value();
    let misses0 = maly_model::context::TILE_MISSES.value();
    let first = client::query_lines(&addr, std::slice::from_ref(&tile)).expect("cold query");
    let after_cold = maly_model::context::TILE_CELLS.value();
    assert_eq!(
        after_cold - before,
        13 * 11,
        "the cold query evaluates the full grid"
    );
    assert_eq!(
        maly_model::context::TILE_MISSES.value() - misses0,
        1,
        "the cold query is exactly one cache miss"
    );
    assert_eq!(maly_model::context::TILE_HITS.value() - hits0, 0);
    let second = client::query_lines(&addr, std::slice::from_ref(&tile)).expect("warm query");
    assert_eq!(
        maly_model::context::TILE_CELLS.value(),
        after_cold,
        "the warm repeat query adds zero grid-cell work"
    );
    assert_eq!(
        maly_model::context::TILE_HITS.value() - hits0,
        1,
        "the warm repeat query is exactly one cache hit"
    );
    assert_eq!(
        maly_model::context::TILE_MISSES.value() - misses0,
        1,
        "and no further miss"
    );
    assert_eq!(first, second, "warm and cold answers are byte-identical");
    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn duplicate_batch_queries_answer_per_id_without_reevaluation() {
    let _guard = lock();
    let (handle, join) = start(ServeConfig::default().workers(2));
    let addr = handle.addr().to_string();
    // A window no other test requests, repeated three times in one
    // array line alongside a duplicated product query.
    let tile = Query::SurfaceTile {
        lambda_min: 0.52,
        lambda_max: 0.92,
        lambda_steps: 7,
        n_tr_min: 8.0e4,
        n_tr_max: 6.0e5,
        n_tr_steps: 6,
    };
    let product = Query::Product(maly_model::query::ProductSpec {
        name: "dup".to_string(),
        transistors: 2.0e6,
        lambda_um: 0.7,
        density: 150.0,
        radius_cm: 7.5,
        yield0: 0.9,
        c0: 700.0,
        x: 1.4,
    });
    let element =
        |id: f64, q: &Query| Json::obj(vec![("id", Json::Num(id)), ("query", q.to_json())]).write();
    let line = format!(
        "[{}, {}, {}, {}, {}]",
        element(1.0, &tile),
        element(2.0, &product),
        element(3.0, &tile),
        element(4.0, &tile),
        element(5.0, &product),
    );
    let cells0 = maly_model::context::TILE_CELLS.value();
    let queries0 = maly_model::context::QUERIES.value();
    let deduped0 = maly_model::plan::DEDUPED_QUERIES.value();
    let got = client::query_lines(&addr, std::slice::from_ref(&line)).expect("batch line");
    assert_eq!(
        maly_model::context::TILE_CELLS.value() - cells0,
        7 * 6,
        "three identical tile queries evaluate one tile"
    );
    assert_eq!(
        maly_model::context::QUERIES.value() - queries0,
        5,
        "every answered query stays on the ledger, deduped or not"
    );
    if maly_model::plan::enabled() {
        assert_eq!(
            maly_model::plan::DEDUPED_QUERIES.value() - deduped0,
            3,
            "two tile repeats and one product repeat fan out"
        );
    }
    // One response line carrying all five ids, duplicates byte-equal.
    let batch = json::parse(&got[0]).expect("protocol JSON");
    let Json::Arr(elems) = &batch else {
        panic!("batch response must be an array");
    };
    let payload = |i: usize| -> String {
        let v = &elems[i];
        assert_eq!(v.get("id").and_then(Json::as_f64), Some((i + 1) as f64));
        v.get("ok").expect("ok payload").write()
    };
    assert_eq!(payload(0), payload(2), "duplicate tiles answer identically");
    assert_eq!(payload(0), payload(3));
    assert_eq!(payload(1), payload(4), "duplicate products too");
    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}

#[test]
fn request_work_counters_track_lines_and_batches() {
    let _guard = lock();
    let (handle, join) = start(ServeConfig::default().workers(1));
    let addr = handle.addr().to_string();
    let lines = vec![
        request_line(1.0, &Query::Table3Row { id: 1 }),
        format!(
            "[{}, {}]",
            Json::obj(vec![
                ("id", Json::Num(2.0)),
                ("query", Query::Table3Row { id: 2 }.to_json()),
            ])
            .write(),
            Json::obj(vec![
                ("id", Json::Num(3.0)),
                ("query", Query::Table3Row { id: 3 }.to_json()),
            ])
            .write(),
        ),
    ];
    let req_before = protocol::REQUEST_LINES.value();
    let batch_before = protocol::BATCHED_QUERIES.value();
    let queries_before = maly_model::context::QUERIES.value();
    client::query_lines(&addr, &lines).expect("round trip");
    assert_eq!(protocol::REQUEST_LINES.value() - req_before, 2);
    assert_eq!(protocol::BATCHED_QUERIES.value() - batch_before, 2);
    assert_eq!(maly_model::context::QUERIES.value() - queries_before, 3);
    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}

/// Polls `cond` for up to ~2 s; panics (naming `what`) on timeout.
fn wait_until(cond: impl Fn() -> bool, what: &str) {
    for _ in 0..400 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn queue_full_refusals_answer_overloaded_and_count() {
    use maly_serve::server::{INFLIGHT, QUEUE_DEPTH, REFUSED};
    let _guard = lock();
    let (handle, join) = start(ServeConfig::default().workers(1).queue_capacity(1));
    let addr = handle.addr().to_string();
    let refused0 = REFUSED.value();
    // Occupy the single worker: it blocks reading this idle connection.
    let a = client::connect(&addr).expect("first connection");
    wait_until(
        || INFLIGHT.value() >= 1,
        "the worker to pick up the first connection",
    );
    // Fill the one queue slot with a second idle connection.
    let b = client::connect(&addr).expect("second connection");
    wait_until(
        || QUEUE_DEPTH.value() >= 1,
        "the second connection to park in the queue",
    );
    // The third connection finds the queue full: the server answers
    // `overloaded`, closes, and counts the refusal.
    let c = client::connect(&addr).expect("third connection");
    let mut reader = std::io::BufReader::new(c);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).expect("refusal line");
    let v = json::parse(line.trim_end()).expect("protocol JSON");
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("overloaded"),
        "{line}"
    );
    assert_eq!(REFUSED.value() - refused0, 1);
    drop(reader);
    drop(a);
    drop(b);
    wait_until(
        || INFLIGHT.value() == 0 && QUEUE_DEPTH.value() == 0,
        "the held connections to drain",
    );
    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}

/// A deterministic workload for the stats goldens: every query family
/// whose Work counters are independent of cache warmth (no surface
/// tiles — `model.tile_cells` only counts cache *misses*, and the
/// process-wide tile cache outlives each per-width server).
fn stats_workload() -> Vec<String> {
    let element =
        |id: f64, q: &Query| Json::obj(vec![("id", Json::Num(id)), ("query", q.to_json())]).write();
    vec![
        request_line(1.0, &Query::Table3Row { id: 1 }),
        request_line(2.0, &Query::Table3),
        request_line(
            3.0,
            &Query::Roadmap {
                from: 1990,
                to: 1994,
            },
        ),
        request_line(
            4.0,
            &Query::McYield {
                products: 2,
                volume_each: 1_500.0,
                replications: 8,
                jitter: 0.25,
                seed: 7,
            },
        ),
        // A duplicate-heavy batch line: dedup fan-out is part of the
        // deterministic work ledger.
        format!(
            "[{}, {}, {}, {}]",
            element(5.0, &Query::Table3Row { id: 2 }),
            element(
                6.0,
                &Query::ProductMix {
                    products: 4,
                    volume_each: 1_200.0,
                    mono_volume: 60_000.0,
                }
            ),
            element(7.0, &Query::Table3Row { id: 2 }),
            element(8.0, &Query::Table3Row { id: 2 }),
        ),
        request_line(9.0, &Query::ServerStats),
    ]
}

#[test]
fn server_stats_work_counters_are_identical_at_1_2_8_workers() {
    let _guard = lock();
    // Warm every once-per-process artifact (calibration fits) before
    // the per-width runs, so the first width doesn't count one-time
    // work the later widths skip.
    Query::Table3
        .evaluate_with(&Executor::serial(), EvalContext::process())
        .expect("warmup");
    let lines = stats_workload();
    let mut sections: Vec<String> = Vec::new();
    for workers in [1usize, 2, 8] {
        maly_obs::reset_metrics();
        let (handle, join) = start(ServeConfig::default().workers(workers));
        let addr = handle.addr().to_string();
        let got = client::query_lines(&addr, &lines).expect("round trip");
        let stats = got.last().expect("stats response");
        let v = json::parse(stats).expect("protocol JSON");
        let ok = v.get("ok").expect("stats ok payload");
        assert_eq!(ok.get("kind").and_then(Json::as_str), Some("server_stats"));
        let work = ok.get("work").expect("work section").write();
        assert!(work.contains("\"model.queries\""), "{work}");
        assert!(work.contains("\"serve.request_lines\""), "{work}");
        sections.push(work);
        handle.shutdown();
        join.join().expect("server thread exits cleanly");
    }
    assert_eq!(
        sections[0], sections[1],
        "work counters must be bit-identical at 1 vs 2 workers"
    );
    assert_eq!(
        sections[0], sections[2],
        "work counters must be bit-identical at 1 vs 8 workers"
    );
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let _guard = lock();
    let (handle, join) = start(ServeConfig::default().workers(2));
    let addr = handle.addr().to_string();
    let got = client::query_lines(&addr, &[request_line(1.0, &Query::Table3Row { id: 4 })])
        .expect("round trip before shutdown");
    assert!(got[0].contains("\"ok\""));
    handle.shutdown();
    handle.shutdown(); // second call must be harmless
    join.join().expect("server thread exits cleanly");
}
