//! `maly-model` — the unified typed query API over the Maly cost model.
//!
//! This crate is the sanctioned entry point for asking the workspace
//! questions. It owns five things:
//!
//! * [`query`] — the [`Query`]/[`QueryResponse`] pair: every evaluation
//!   the paper reproduction supports (Table 3 products, Scenario #1/#2
//!   sweeps, Fig 8 surface tiles, optimal-λ searches, Monte Carlo yield
//!   studies, the calendar roadmap, product-mix economics) as one typed
//!   request/response enum with deterministic JSON round-trips.
//! * [`context`] — the process-wide [`SharedContext`] of derived
//!   artifacts (moved here from `maly-repro`) plus the [`EvalContext`]
//!   surface-tile cache that makes warm repeat queries measurably
//!   cheaper (asserted via obs Work counters, not wall clock).
//! * [`plan`] — the evaluation-plan IR behind [`Query::evaluate_batch`]:
//!   a batch compiles to deduplicated queries plus unique grid nodes,
//!   and cold surface-tile nodes across *all* requests fuse into one
//!   lane-batched kernel dispatch (`MALY_PLAN=0` restores the direct
//!   path; both are bit-identical by contract).
//! * [`error`] — the consolidated [`Error`] type with `From` impls for
//!   every subsystem failure, mapped to stable wire `kind` tags.
//! * [`json`] — a std-only, deterministic, line-oriented JSON value
//!   type shared by the query API and the serve wire protocol.
//!
//! Consumers (the CLI, the repro harness, benches, and `maly-serve`)
//! go through [`Query::evaluate_with`] rather than wiring themselves to
//! individual model crates; results are bit-identical at every executor
//! width by the `maly-par` contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod error;
pub mod json;
pub mod plan;
pub(crate) mod planner;
pub mod query;

pub use context::{shared, EvalContext, SharedContext, FIG8_LAMBDA_RANGE, FIG8_N_TR_RANGE};
pub use error::Error;
pub use json::Json;
pub use query::{Query, QueryResponse};
