//! The unified error type of the query API.
//!
//! Before this crate each layer had its own failure vocabulary —
//! [`maly_units::UnitError`] for validation, `CostError` for model
//! evaluation, ad-hoc `String`s in the CLI — and every caller stitched
//! them together differently. The query API consolidates them behind
//! one [`Error`] with `From` impls, so a query evaluates to a single
//! `Result<QueryResponse, Error>` no matter which subsystem failed, and
//! the wire protocol maps each variant to a stable `kind` tag.

use maly_cost_model::CostError;
use maly_units::UnitError;

/// Any failure the query API can produce, from parsing a request to
/// evaluating the model.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Input validation failed in the units layer.
    Unit(UnitError),
    /// Model evaluation failed (die too large, yield collapsed, …).
    Cost(CostError),
    /// The request was not valid JSON.
    Parse {
        /// Parser diagnostic.
        message: String,
    },
    /// The request's `type` tag names no known query.
    UnknownQueryType {
        /// The offending tag.
        found: String,
    },
    /// A required request field is absent.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// A request field is present but unusable.
    InvalidField {
        /// The field name.
        field: &'static str,
        /// What was wrong with it.
        message: String,
    },
    /// A Table 3 row id outside 1..=17.
    UnknownTableRow {
        /// The requested id.
        id: u8,
    },
    /// A request line exceeded the server's size bound.
    PayloadTooLarge {
        /// The configured bound in bytes.
        limit: usize,
    },
    /// The server's accept queue was full; retry later.
    Overloaded,
    /// A transport-level failure (socket read/write).
    Io(String),
}

impl Error {
    /// The stable machine-readable tag the wire protocol carries for
    /// this variant.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Unit(_) => "unit",
            Error::Cost(_) => "cost",
            Error::Parse { .. } => "parse",
            Error::UnknownQueryType { .. } => "unknown-query-type",
            Error::MissingField { .. } => "missing-field",
            Error::InvalidField { .. } => "invalid-field",
            Error::UnknownTableRow { .. } => "unknown-table-row",
            Error::PayloadTooLarge { .. } => "payload-too-large",
            Error::Overloaded => "overloaded",
            Error::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Unit(e) => write!(f, "{e}"),
            Error::Cost(e) => write!(f, "{e}"),
            Error::Parse { message } => write!(f, "invalid JSON: {message}"),
            Error::UnknownQueryType { found } => {
                write!(f, "unknown query type `{found}`")
            }
            Error::MissingField { field } => write!(f, "missing field `{field}`"),
            Error::InvalidField { field, message } => {
                write!(f, "invalid field `{field}`: {message}")
            }
            Error::UnknownTableRow { id } => {
                write!(f, "Table 3 has rows 1..=17; no row {id}")
            }
            Error::PayloadTooLarge { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            Error::Overloaded => write!(f, "server overloaded; retry later"),
            Error::Io(message) => write!(f, "transport error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<UnitError> for Error {
    fn from(e: UnitError) -> Self {
        Error::Unit(e)
    }
}

impl From<CostError> for Error {
    fn from(e: CostError) -> Self {
        // A model error that is really an input-validation error keeps
        // its unit identity, so the wire `kind` distinguishes "you sent
        // a bad number" from "the physics said no".
        match e {
            CostError::InvalidInput(unit) => Error::Unit(unit),
            other => Error::Cost(other),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let variants: Vec<Error> = vec![
            Error::Parse {
                message: "x".into(),
            },
            Error::UnknownQueryType { found: "x".into() },
            Error::MissingField { field: "f" },
            Error::InvalidField {
                field: "f",
                message: "m".into(),
            },
            Error::UnknownTableRow { id: 99 },
            Error::PayloadTooLarge { limit: 1 },
            Error::Overloaded,
            Error::Io("broken pipe".into()),
        ];
        let kinds: Vec<&str> = variants.iter().map(Error::kind).collect();
        let mut unique = kinds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn cost_invalid_input_folds_to_unit() {
        let unit = UnitError::NotFinite { quantity: "x" };
        let e: Error = CostError::InvalidInput(unit.clone()).into();
        assert_eq!(e, Error::Unit(unit));
        assert_eq!(e.kind(), "unit");
    }

    #[test]
    fn displays_are_informative() {
        let e = Error::UnknownTableRow { id: 42 };
        assert!(e.to_string().contains("42"));
        let e = Error::MissingField { field: "lambda" };
        assert!(e.to_string().contains("lambda"));
    }
}
