//! The unified error type of the query API.
//!
//! Before this crate each layer had its own failure vocabulary —
//! [`maly_units::UnitError`] for validation, `CostError` for model
//! evaluation, ad-hoc `String`s in the CLI — and every caller stitched
//! them together differently. The query API consolidates them behind
//! one [`Error`] with `From` impls, so a query evaluates to a single
//! `Result<QueryResponse, Error>` no matter which subsystem failed, and
//! the wire protocol maps each variant to a stable `kind` tag.
//!
//! The `kind` tags form a *registry* — a compatibility contract with
//! deployed clients (DESIGN.md §15.4). [`KIND_REGISTRY`] is the
//! committed list; a test pins every variant's tag against it, so
//! renaming or reusing a tag fails loudly.

use maly_cost_model::CostError;
use maly_units::UnitError;

/// Any failure the query API can produce, from parsing a request to
/// evaluating the model.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Input validation failed in the units layer.
    Unit(UnitError),
    /// Model evaluation failed (die too large, yield collapsed, …).
    Cost(CostError),
    /// The request was not valid JSON.
    Parse {
        /// Parser diagnostic.
        message: String,
    },
    /// The request's `type` tag names no query this server supports —
    /// possibly a newer client's query. The tag is echoed back so the
    /// client can tell *which* capability is missing.
    UnsupportedQuery {
        /// The offending tag.
        found: String,
    },
    /// The request envelope's `v` names a protocol version this server
    /// does not speak (it speaks version 1; an absent `v` means 1).
    UnsupportedVersion {
        /// The requested version.
        version: u64,
    },
    /// A required request field is absent.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// A request field is present but unusable.
    InvalidField {
        /// The field name.
        field: &'static str,
        /// What was wrong with it.
        message: String,
    },
    /// A Table 3 row id outside 1..=17.
    UnknownTableRow {
        /// The requested id.
        id: u8,
    },
    /// A request line exceeded the server's size bound.
    PayloadTooLarge {
        /// The configured bound in bytes.
        limit: usize,
    },
    /// The server's accept queue was full; retry later.
    Overloaded,
    /// A transport-level failure (socket read/write).
    Io(String),
}

/// The committed wire-tag registry, sorted: every [`Error::kind`] value,
/// exactly once. Changing this list is a protocol-compatibility event —
/// tags may be *added*, never renamed or reused (DESIGN.md §15.4).
pub const KIND_REGISTRY: &[&str] = &[
    "cost",
    "invalid-field",
    "io",
    "missing-field",
    "overloaded",
    "parse",
    "payload-too-large",
    "unit",
    "unknown-table-row",
    "unsupported-query",
    "unsupported-version",
];

impl Error {
    /// The stable machine-readable tag the wire protocol carries for
    /// this variant. Every tag is listed in [`KIND_REGISTRY`].
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Unit(_) => "unit",
            Error::Cost(_) => "cost",
            Error::Parse { .. } => "parse",
            Error::UnsupportedQuery { .. } => "unsupported-query",
            Error::UnsupportedVersion { .. } => "unsupported-version",
            Error::MissingField { .. } => "missing-field",
            Error::InvalidField { .. } => "invalid-field",
            Error::UnknownTableRow { .. } => "unknown-table-row",
            Error::PayloadTooLarge { .. } => "payload-too-large",
            Error::Overloaded => "overloaded",
            Error::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Unit(e) => write!(f, "{e}"),
            Error::Cost(e) => write!(f, "{e}"),
            Error::Parse { message } => write!(f, "invalid JSON: {message}"),
            Error::UnsupportedQuery { found } => {
                write!(f, "unsupported query type `{found}`")
            }
            Error::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported protocol version {version}; this server speaks 1"
                )
            }
            Error::MissingField { field } => write!(f, "missing field `{field}`"),
            Error::InvalidField { field, message } => {
                write!(f, "invalid field `{field}`: {message}")
            }
            Error::UnknownTableRow { id } => {
                write!(f, "Table 3 has rows 1..=17; no row {id}")
            }
            Error::PayloadTooLarge { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            Error::Overloaded => write!(f, "server overloaded; retry later"),
            Error::Io(message) => write!(f, "transport error: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<UnitError> for Error {
    fn from(e: UnitError) -> Self {
        Error::Unit(e)
    }
}

impl From<CostError> for Error {
    fn from(e: CostError) -> Self {
        // A model error that is really an input-validation error keeps
        // its unit identity, so the wire `kind` distinguishes "you sent
        // a bad number" from "the physics said no".
        match e {
            CostError::InvalidInput(unit) => Error::Unit(unit),
            other => Error::Cost(other),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar of every variant — extending [`Error`] without
    /// extending this list fails the registry test below.
    fn exemplars() -> Vec<Error> {
        vec![
            Error::Unit(UnitError::NotFinite { quantity: "x" }),
            Error::Cost(CostError::InvalidInput(UnitError::NotFinite {
                quantity: "x",
            })),
            Error::Parse {
                message: "x".into(),
            },
            Error::UnsupportedQuery { found: "x".into() },
            Error::UnsupportedVersion { version: 2 },
            Error::MissingField { field: "f" },
            Error::InvalidField {
                field: "f",
                message: "m".into(),
            },
            Error::UnknownTableRow { id: 99 },
            Error::PayloadTooLarge { limit: 1 },
            Error::Overloaded,
            Error::Io("broken pipe".into()),
        ]
    }

    #[test]
    fn kind_registry_is_exhaustive_unique_and_stable() {
        // Uniqueness + stability: the set of kinds emitted by the enum
        // is exactly the committed registry, which is itself sorted and
        // duplicate-free. A new variant must add its tag to the
        // registry; renaming a tag breaks deployed clients and fails
        // here.
        let mut kinds: Vec<&str> = exemplars().iter().map(Error::kind).collect();
        kinds.sort_unstable();
        let deduped: Vec<&str> = {
            let mut k = kinds.clone();
            k.dedup();
            k
        };
        assert_eq!(kinds, deduped, "duplicate wire kind");
        assert_eq!(kinds, KIND_REGISTRY, "wire-kind registry drifted");
        let mut sorted = KIND_REGISTRY.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KIND_REGISTRY, "registry must stay sorted");
    }

    #[test]
    fn cost_invalid_input_folds_to_unit() {
        let unit = UnitError::NotFinite { quantity: "x" };
        let e: Error = CostError::InvalidInput(unit.clone()).into();
        assert_eq!(e, Error::Unit(unit));
        assert_eq!(e.kind(), "unit");
    }

    #[test]
    fn displays_are_informative() {
        let e = Error::UnknownTableRow { id: 42 };
        assert!(e.to_string().contains("42"));
        let e = Error::MissingField { field: "lambda" };
        assert!(e.to_string().contains("lambda"));
        let e = Error::UnsupportedQuery {
            found: "chiplet_cost".into(),
        };
        assert!(e.to_string().contains("chiplet_cost"));
        let e = Error::UnsupportedVersion { version: 7 };
        assert!(e.to_string().contains('7'));
    }
}
