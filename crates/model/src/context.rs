//! The long-lived evaluation context shared by every query.
//!
//! Several consumers — the repro harness, the CLI, and now the serve
//! layer — need the same derived artifacts: the tech-trend fits
//! (Figs 1–4), the Table 3 row set, the calendar roadmap, and the Fig 8
//! cost surface, by far the most expensive single object the workspace
//! builds. [`shared`] derives them exactly once per process behind a
//! `OnceLock` (this context started life in `maly-repro`, which now
//! re-exports it).
//!
//! On top of the static artifacts, [`EvalContext`] owns a bounded cache
//! of *computed surface tiles* keyed by quantized query parameters:
//! a repeated `surface_tile` query for the same window answers from
//! memory without re-evaluating a single grid cell. The obs counters
//! below make that claim checkable — the warm-cache integration test
//! asserts `model.tile_cells` does not move on a repeat query.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use maly_cost_model::roadmap::CostRoadmap;
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_paper_data::table3::{self, Table3Row};
use maly_par::Executor;
use maly_tech_trend::diesize::DieSizeTrend;
use maly_tech_trend::fit::{CostEscalationFit, ExponentialFit};
use maly_tech_trend::{datasets, fit};

/// The Fig 8 grid the reports render: `(λ min, λ max, steps)`.
pub const FIG8_LAMBDA_RANGE: (f64, f64, usize) = (0.4, 1.5, 56);
/// The Fig 8 grid the reports render: `(N_tr min, N_tr max, steps)`.
pub const FIG8_N_TR_RANGE: (f64, f64, usize) = (2.0e4, 4.0e6, 48);

/// Grid cells evaluated for surface tiles (cache misses only). A
/// thread-count-invariant work counter: the warm-cache test asserts a
/// repeat query adds exactly zero here.
pub static TILE_CELLS: maly_obs::Counter = maly_obs::Counter::work("model.tile_cells");
/// Queries answered through [`crate::query::Query::evaluate_with`].
pub static QUERIES: maly_obs::Counter = maly_obs::Counter::work("model.queries");
/// Surface-tile cache hits (diagnostic: depends on request history).
pub static TILE_HITS: maly_obs::Counter = maly_obs::Counter::diag("model.tile_hits");
/// Surface-tile cache misses (diagnostic).
pub static TILE_MISSES: maly_obs::Counter = maly_obs::Counter::diag("model.tile_misses");
/// Per-query evaluation latency, attached to the `model.query` span.
pub static EVAL_NS: maly_obs::Histogram = maly_obs::Histogram::high_resolution("model.eval_ns");
/// Batch planning latency (compile + fused prefetch + scatter),
/// attached to the `model.plan` span.
pub static PLAN_NS: maly_obs::Histogram = maly_obs::Histogram::high_resolution("model.plan_ns");

/// Every artifact derived once and shared by the experiments.
#[derive(Debug)]
pub struct SharedContext {
    /// Fig 1: exponential fit of feature size vs year.
    pub feature_trend: ExponentialFit,
    /// Fig 2a: exponential fit of fab cost vs year.
    pub fab_cost_trend: ExponentialFit,
    /// Fig 2b: the wafer-cost escalation factor `X` and `C₀`.
    pub wafer_cost_escalation: CostEscalationFit,
    /// Fig 3: `A_ch(λ)` re-fit from the die-size-by-node dataset.
    pub die_size_fit: DieSizeTrend,
    /// Fig 3/4: the paper's printed `16.5·e^{−5.3λ}` coefficients.
    pub die_size_paper: DieSizeTrend,
    /// Roadmap experiment: the two-scenario calendar projection.
    pub roadmap: CostRoadmap,
    /// Table 3 + ablation: all printed rows.
    pub table3_rows: Vec<Table3Row>,
    /// Fig 8: the paper's fab calibration.
    pub fig8_params: SurfaceParameters,
    /// Fig 8: the full cost surface on the report grid.
    pub fig8_surface: CostSurface,
}

/// The process-wide context, built on first use.
///
/// # Panics
///
/// Panics if a built-in dataset fails to fit — impossible for the
/// checked-in data, and a reproduction without its calibration cannot
/// report anything anyway.
#[must_use]
pub fn shared() -> &'static SharedContext {
    static CONTEXT: OnceLock<SharedContext> = OnceLock::new();
    CONTEXT.get_or_init(|| {
        let fig8_params = SurfaceParameters::fig8();
        SharedContext {
            // Checked-in datasets are positive by construction; a
            // context without its calibration cannot answer anything
            // anyway, so these expects fire only on a broken build.
            feature_trend: fit::fit_exponential(datasets::FEATURE_SIZE_BY_YEAR)
                // audit:allow(panic): built-in dataset is positive.
                .expect("dataset is positive"),
            fab_cost_trend: fit::fit_exponential(datasets::FAB_COST_BY_YEAR)
                // audit:allow(panic): built-in dataset is positive.
                .expect("dataset is positive"),
            wafer_cost_escalation: fit::extract_cost_escalation(datasets::WAFER_COST_BY_GENERATION)
                // audit:allow(panic): built-in dataset is positive.
                .expect("dataset is positive"),
            die_size_fit: DieSizeTrend::fit(datasets::DIE_SIZE_BY_GENERATION)
                // audit:allow(panic): built-in dataset is positive.
                .expect("dataset is positive"),
            die_size_paper: DieSizeTrend::paper_fit(),
            // audit:allow(panic): built-in datasets are valid.
            roadmap: CostRoadmap::paper_default().expect("built-in datasets are valid"),
            table3_rows: table3::rows(),
            fig8_surface: CostSurface::compute(&fig8_params, FIG8_LAMBDA_RANGE, FIG8_N_TR_RANGE),
            fig8_params,
        }
    })
}

/// Cache key for a computed surface tile. Axis endpoints are quantized
/// (λ at 1 nλ, `N_tr` at a relative 2⁻³² grain) so two requests that
/// differ only in float noise share an entry, while the step counts
/// stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TileKey {
    lambda_min_nm: u64,
    lambda_max_nm: u64,
    n_tr_min_q: u64,
    n_tr_max_q: u64,
    lambda_steps: usize,
    n_tr_steps: usize,
}

impl TileKey {
    pub(crate) fn new(lambda_range: (f64, f64, usize), n_tr_range: (f64, f64, usize)) -> Self {
        // λ arrives in µm; 1e-3 µm = 1 nm grain. N_tr spans orders of
        // magnitude, so quantize its log instead of its value.
        let q_nm = |v: f64| (v * 1.0e3).round() as u64;
        let q_log = |v: f64| (v.ln() * 1.0e6).round() as u64;
        Self {
            lambda_min_nm: q_nm(lambda_range.0),
            lambda_max_nm: q_nm(lambda_range.1),
            n_tr_min_q: q_log(n_tr_range.0),
            n_tr_max_q: q_log(n_tr_range.1),
            lambda_steps: lambda_range.2,
            n_tr_steps: n_tr_range.2,
        }
    }
}

/// Most tiles a server keeps warm. The Fig 8 report tile is ~2700
/// cells ≈ 100 KiB realized; 64 entries bound the cache near 6 MiB.
const TILE_CACHE_CAPACITY: usize = 64;

/// The query API's long-lived state: the shared artifacts plus a
/// bounded surface-tile cache.
#[derive(Debug)]
pub struct EvalContext {
    tiles: RwLock<HashMap<TileKey, Arc<CostSurface>>>,
}

impl Default for EvalContext {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalContext {
    /// Creates an empty context (the shared artifacts are process-wide
    /// and need no per-context setup).
    #[must_use]
    pub fn new() -> Self {
        Self {
            tiles: RwLock::new(HashMap::new()),
        }
    }

    /// The process-wide context, built on first use.
    #[must_use]
    pub fn process() -> &'static EvalContext {
        static CONTEXT: OnceLock<EvalContext> = OnceLock::new();
        CONTEXT.get_or_init(EvalContext::new)
    }

    /// A surface tile for the given ranges: cached when warm, computed
    /// on the executor (and counted in [`struct@TILE_CELLS`]) when cold.
    ///
    /// The caller must have validated the ranges
    /// (ascending-positive, ≥ 2 steps) — `CostSurface::compute` panics
    /// on degenerate grids by contract.
    pub(crate) fn surface_tile(
        &self,
        exec: &Executor,
        params: &SurfaceParameters,
        lambda_range: (f64, f64, usize),
        n_tr_range: (f64, f64, usize),
    ) -> Arc<CostSurface> {
        let key = TileKey::new(lambda_range, n_tr_range);
        if let Ok(cache) = self.tiles.read() {
            if let Some(tile) = cache.get(&key) {
                TILE_HITS.incr();
                return Arc::clone(tile);
            }
        }
        TILE_MISSES.incr();
        TILE_CELLS.add((lambda_range.2 * n_tr_range.2) as u64);
        let tile = Arc::new(CostSurface::compute_with(
            exec,
            params,
            lambda_range,
            n_tr_range,
        ));
        self.store_tile(key, &tile);
        tile
    }

    /// Whether a tile for this key is already warm. Deliberately bumps
    /// no counters: the batch planner probes with this before deciding
    /// what to fuse, and the hit/miss ledger must reflect only actual
    /// tile requests, identically to the unplanned path.
    pub(crate) fn has_tile(&self, key: &TileKey) -> bool {
        self.tiles
            .read()
            .map(|c| c.contains_key(key))
            .unwrap_or(false)
    }

    /// Inserts a tile the batch planner materialized outside
    /// [`Self::surface_tile`]. Counts the same miss + cell ledger the
    /// unplanned cold path would — `cells` is the tile's *full* cell
    /// count even when fusion evaluated fewer, so `model.tile_cells`
    /// goldens hold with the planner on or off; the fusion saving shows
    /// up in `eq1.cells` and `plan.nodes_evaluated` instead.
    pub(crate) fn insert_cold_tile(&self, key: TileKey, cells: u64, tile: &Arc<CostSurface>) {
        TILE_MISSES.incr();
        TILE_CELLS.add(cells);
        self.store_tile(key, tile);
    }

    fn store_tile(&self, key: TileKey, tile: &Arc<CostSurface>) {
        if let Ok(mut cache) = self.tiles.write() {
            if cache.len() >= TILE_CACHE_CAPACITY {
                // Bounded, not LRU: full flush is simple, deterministic
                // in effect (the next query recomputes), and the
                // capacity is far above any real request mix.
                cache.clear();
            }
            cache.insert(key, Arc::clone(tile));
        }
    }

    /// Number of cached tiles (for tests and diagnostics).
    #[must_use]
    pub fn cached_tiles(&self) -> usize {
        self.tiles.read().map(|c| c.len()).unwrap_or(0)
    }
}

/// Serializes lib tests that read the process-global counters; cargo
/// runs tests in parallel inside one process, so unlocked readers
/// would see each other's deltas.
#[cfg(test)]
pub(crate) fn counter_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_context_is_one_instance() {
        let a: *const SharedContext = shared();
        let b: *const SharedContext = shared();
        assert_eq!(a, b, "two calls must return the same allocation");
    }

    #[test]
    fn shared_artifacts_match_fresh_derivations() {
        let ctx = shared();
        assert_eq!(
            ctx.feature_trend,
            fit::fit_exponential(datasets::FEATURE_SIZE_BY_YEAR).unwrap()
        );
        assert_eq!(ctx.table3_rows, table3::rows());
        assert_eq!(ctx.table3_rows.len(), 17, "Table 3 prints 17 rows");
        assert_eq!(
            ctx.fig8_surface,
            CostSurface::compute(&ctx.fig8_params, FIG8_LAMBDA_RANGE, FIG8_N_TR_RANGE)
        );
    }

    #[test]
    fn tile_cache_hits_on_repeat() {
        let _guard = counter_test_lock();
        let ctx = EvalContext::new();
        let exec = Executor::serial();
        let params = SurfaceParameters::fig8();
        let ranges = ((0.4, 1.2, 6), (1.0e5, 1.0e6, 5));
        let (hits0, misses0) = (TILE_HITS.value(), TILE_MISSES.value());
        let first = ctx.surface_tile(&exec, &params, ranges.0, ranges.1);
        assert_eq!(TILE_MISSES.value() - misses0, 1, "cold query is one miss");
        assert_eq!(TILE_HITS.value() - hits0, 0);
        let again = ctx.surface_tile(&exec, &params, ranges.0, ranges.1);
        assert!(Arc::ptr_eq(&first, &again), "repeat must hit the cache");
        assert_eq!(TILE_HITS.value() - hits0, 1, "warm query is one hit");
        assert_eq!(TILE_MISSES.value() - misses0, 1, "and no further miss");
        assert_eq!(ctx.cached_tiles(), 1);
    }

    #[test]
    fn cold_insert_counts_like_an_unplanned_miss() {
        let _guard = counter_test_lock();
        let ctx = EvalContext::new();
        let exec = Executor::serial();
        let params = SurfaceParameters::fig8();
        let ranges = ((0.5, 1.0, 4), (1.0e5, 1.0e6, 3));
        let tile = Arc::new(CostSurface::compute_with(
            &exec, &params, ranges.0, ranges.1,
        ));
        let key = TileKey::new(ranges.0, ranges.1);
        assert!(!ctx.has_tile(&key));
        let (hits0, misses0, cells0) = (TILE_HITS.value(), TILE_MISSES.value(), TILE_CELLS.value());
        ctx.insert_cold_tile(key, 12, &tile);
        assert!(ctx.has_tile(&key), "inserted tile must be warm");
        assert_eq!(TILE_MISSES.value() - misses0, 1);
        assert_eq!(TILE_CELLS.value() - cells0, 12);
        assert_eq!(TILE_HITS.value() - hits0, 0, "probes bump nothing");
        let again = ctx.surface_tile(&exec, &params, ranges.0, ranges.1);
        assert!(Arc::ptr_eq(&tile, &again), "surface_tile must hit it");
        assert_eq!(TILE_HITS.value() - hits0, 1);
    }

    #[test]
    fn tile_key_quantization_absorbs_float_noise() {
        let a = TileKey::new((0.4, 1.5, 10), (2.0e4, 4.0e6, 8));
        let b = TileKey::new((0.4 + 1e-9, 1.5 - 1e-9, 10), (2.0e4, 4.0e6, 8));
        assert_eq!(a, b);
        let c = TileKey::new((0.4, 1.5, 11), (2.0e4, 4.0e6, 8));
        assert_ne!(a, c, "step counts stay exact");
    }
}
