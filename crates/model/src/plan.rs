//! The evaluation-plan IR: what a query batch *needs* before anything
//! runs.
//!
//! A batch of [`Query`]s compiles to a [`Plan`] — the deduplicated
//! query list, the slot map scattering answers back to request order,
//! and the set of unique surface-tile grid nodes the batch will touch.
//! The planner (`crate::planner`) then executes the plan: cold tile
//! nodes across *all* queries fuse into one lane-batched eq. (1)
//! dispatch, and byte-identical queries are answered once.
//!
//! Node keying matches the warm-tile cache grain exactly
//! ([`crate::context`]'s quantized `TileKey`): two queries whose
//! windows differ only by float noise share a node, just as they would
//! share a cache entry on the unplanned path. Everything coarser — the
//! per-cell `(λ, N_tr)` fusion inside a dispatch — is keyed on *bit
//! equality* of the axis values, so fusion can never change a single
//! output bit.
//!
//! Planning is on by default; `MALY_PLAN=0` (or `false`) restores the
//! direct per-query batch path. Both paths are bit-identical by
//! contract, enforced by the `plan_fusion` property tests and the serve
//! loopback suite running under both settings.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::context::TileKey;
use crate::query::{ProductSpec, Query};

/// Environment toggle for the batch planner: unset or any value other
/// than `0`/`false`/empty enables planning.
pub const PLAN_ENV_VAR: &str = "MALY_PLAN";

/// Whether batch evaluation routes through the planner. Read once per
/// process: the toggle exists for A/B runs and CI, not for flipping
/// mid-flight.
#[must_use]
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var(PLAN_ENV_VAR) {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("false") || v.is_empty()),
        Err(_) => true,
    })
}

/// Grid nodes a batch asked for, before dedup/fusion: every cell of
/// every surface-tile query plus one node per non-tile query. Work
/// counter — determined by batch contents alone.
pub static NODES_REQUESTED: maly_obs::Counter = maly_obs::Counter::work("plan.nodes_requested");
/// Grid nodes actually evaluated after cross-request dedup and warm
/// cache elision. The fusion goldens assert this stays well under
/// [`struct@NODES_REQUESTED`] on overlapping batches.
pub static NODES_EVALUATED: maly_obs::Counter = maly_obs::Counter::work("plan.nodes_evaluated");
/// Fused kernel dispatches issued (one per batch with ≥ 1 cold tile).
pub static FUSED_DISPATCHES: maly_obs::Counter = maly_obs::Counter::work("plan.fused_dispatches");
/// Queries answered by fan-out from an identical batch-mate instead of
/// re-evaluation (diagnostic: depends on request history).
pub static DEDUPED_QUERIES: maly_obs::Counter = maly_obs::Counter::diag("plan.deduped_queries");

/// One unique surface-tile grid node: the cache-grain key plus the
/// exact ranges that materialize it.
#[derive(Debug, Clone)]
pub(crate) struct TileNode {
    /// Cache-grain identity (quantized endpoints, exact step counts).
    pub key: TileKey,
    /// `(λ min, λ max, steps)` of the first query requesting this node.
    pub lambda_range: (f64, f64, usize),
    /// `(N_tr min, N_tr max, steps)` of that query.
    pub n_tr_range: (f64, f64, usize),
}

/// A compiled batch: what to evaluate, and how to scatter it back.
#[derive(Debug)]
pub(crate) struct Plan {
    /// Unique queries in first-occurrence order.
    pub unique: Vec<Query>,
    /// `slots[i]` = index into `unique` answering input query `i`.
    pub slots: Vec<usize>,
    /// Unique surface-tile nodes in first-occurrence order.
    pub tiles: Vec<TileNode>,
    /// Total grid nodes the raw batch asked for.
    pub nodes_requested: u64,
}

/// A bit-exact query identity: variant tag, the product label when one
/// exists, and every numeric field as raw bits. Strictly finer than
/// (or equal to) wire-format identity — two queries sharing a key
/// serialize to the same bytes, but building the key costs integer
/// moves instead of float formatting, which matters because compile
/// overhead is paid by every batch whether or not anything fuses.
fn dedup_key(q: &Query) -> (u8, String, Vec<u64>) {
    fn spec_bits(spec: &ProductSpec, bits: &mut Vec<u64>) {
        bits.extend([
            spec.transistors.to_bits(),
            spec.lambda_um.to_bits(),
            spec.density.to_bits(),
            spec.radius_cm.to_bits(),
            spec.yield0.to_bits(),
            spec.c0.to_bits(),
            spec.x.to_bits(),
        ]);
    }
    let mut bits: Vec<u64> = Vec::with_capacity(10);
    let mut name = String::new();
    let tag = match q {
        Query::Product(spec) => {
            name.push_str(&spec.name);
            spec_bits(spec, &mut bits);
            0
        }
        Query::Table3Row { id } => {
            bits.push(u64::from(*id));
            1
        }
        Query::Table3 => 2,
        Query::Scenario1Sweep {
            x,
            lambda_min,
            lambda_max,
            steps,
        } => {
            bits.extend([
                x.to_bits(),
                lambda_min.to_bits(),
                lambda_max.to_bits(),
                *steps as u64,
            ]);
            3
        }
        Query::Scenario2Sweep {
            x,
            lambda_min,
            lambda_max,
            steps,
        } => {
            bits.extend([
                x.to_bits(),
                lambda_min.to_bits(),
                lambda_max.to_bits(),
                *steps as u64,
            ]);
            4
        }
        Query::SurfaceTile {
            lambda_min,
            lambda_max,
            lambda_steps,
            n_tr_min,
            n_tr_max,
            n_tr_steps,
        } => {
            bits.extend([
                lambda_min.to_bits(),
                lambda_max.to_bits(),
                *lambda_steps as u64,
                n_tr_min.to_bits(),
                n_tr_max.to_bits(),
                *n_tr_steps as u64,
            ]);
            5
        }
        Query::OptimalLambda {
            spec,
            lambda_min,
            lambda_max,
            steps,
        } => {
            name.push_str(&spec.name);
            spec_bits(spec, &mut bits);
            bits.extend([lambda_min.to_bits(), lambda_max.to_bits(), *steps as u64]);
            6
        }
        Query::McYield {
            products,
            volume_each,
            replications,
            jitter,
            seed,
        } => {
            bits.extend([
                *products as u64,
                volume_each.to_bits(),
                *replications as u64,
                jitter.to_bits(),
                *seed,
            ]);
            7
        }
        Query::Roadmap { from, to } => {
            bits.extend([u64::from(*from), u64::from(*to)]);
            8
        }
        Query::ProductMix {
            products,
            volume_each,
            mono_volume,
        } => {
            bits.extend([
                *products as u64,
                volume_each.to_bits(),
                mono_volume.to_bits(),
            ]);
            9
        }
        Query::ServerStats => 10,
        Query::ChipletCost {
            transistors,
            lambda_um,
            chiplets,
            spares,
            volume,
        } => {
            bits.extend([
                transistors.to_bits(),
                lambda_um.to_bits(),
                *chiplets as u64,
                *spares as u64,
                *volume,
            ]);
            11
        }
        Query::ChipletPartitionSweep {
            transistors,
            volume,
            lambda_min,
            lambda_max,
            lambda_steps,
            max_chiplets,
            max_spares,
        } => {
            bits.extend([
                transistors.to_bits(),
                *volume,
                lambda_min.to_bits(),
                lambda_max.to_bits(),
                *lambda_steps as u64,
                *max_chiplets as u64,
                *max_spares as u64,
            ]);
            12
        }
    };
    (tag, name, bits)
}

impl Plan {
    /// Compiles a batch: dedups bit-identical queries (see
    /// [`dedup_key`] — finer than the wire format's equivalence, so
    /// fan-out can never conflate queries that would serialize
    /// differently) and collects the unique tile nodes, all in
    /// first-occurrence order so execution matches a sequential
    /// left-to-right evaluation of the same batch against a shared
    /// context.
    pub(crate) fn compile(queries: &[Query]) -> Self {
        let mut unique: Vec<Query> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(queries.len());
        // Lookup-only maps (never iterated): result order comes from
        // the `unique`/`tiles` vectors.
        let mut slot_of: HashMap<(u8, String, Vec<u64>), usize> = HashMap::new();
        let mut seen_tiles: HashMap<TileKey, ()> = HashMap::new();
        let mut tiles: Vec<TileNode> = Vec::new();
        let mut nodes_requested: u64 = 0;
        for q in queries {
            nodes_requested += match q.tile_request() {
                Some((l, n)) => (l.2 * n.2) as u64,
                None => 1,
            };
            let key = dedup_key(q);
            let slot = match slot_of.get(&key) {
                Some(&u) => u,
                None => {
                    let u = unique.len();
                    slot_of.insert(key, u);
                    if let Some((lambda_range, n_tr_range)) = q.tile_request() {
                        let key = TileKey::new(lambda_range, n_tr_range);
                        if seen_tiles.insert(key, ()).is_none() {
                            tiles.push(TileNode {
                                key,
                                lambda_range,
                                n_tr_range,
                            });
                        }
                    }
                    unique.push(q.clone());
                    u
                }
            };
            slots.push(slot);
        }
        Self {
            unique,
            slots,
            tiles,
            nodes_requested,
        }
    }

    /// Input queries answered by fan-out rather than evaluation.
    pub(crate) fn duplicate_queries(&self) -> u64 {
        (self.slots.len() - self.unique.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(lo: f64) -> Query {
        Query::SurfaceTile {
            lambda_min: lo,
            lambda_max: lo + 0.5,
            lambda_steps: 9,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 24,
        }
    }

    #[test]
    fn compile_dedups_queries_and_tile_nodes() {
        let batch = vec![
            tile(0.5),
            Query::Table3,
            tile(0.5),
            // Float noise within the 1 nm key grain: distinct query
            // text, same tile node.
            Query::SurfaceTile {
                lambda_min: 0.5 + 1e-9,
                lambda_max: 1.0,
                lambda_steps: 9,
                n_tr_min: 2.0e4,
                n_tr_max: 4.0e6,
                n_tr_steps: 24,
            },
            tile(0.625),
        ];
        let plan = Plan::compile(&batch);
        assert_eq!(plan.slots, vec![0, 1, 0, 2, 3]);
        assert_eq!(plan.unique.len(), 4);
        assert_eq!(plan.duplicate_queries(), 1);
        assert_eq!(plan.tiles.len(), 2, "noise-duplicate shares a node");
        assert_eq!(plan.nodes_requested, 4 * 9 * 24 + 1);
        // First-occurrence ranges win, matching a sequential shared-
        // context evaluation where the first requester computes.
        assert_eq!(plan.tiles[0].lambda_range, (0.5, 1.0, 9));
        assert_eq!(plan.tiles[1].lambda_range, (0.625, 1.125, 9));
    }

    #[test]
    fn malformed_tiles_are_single_nodes() {
        let bad = Query::SurfaceTile {
            lambda_min: 1.0,
            lambda_max: 0.5,
            lambda_steps: 9,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 24,
        };
        let plan = Plan::compile(&[bad]);
        assert_eq!(plan.tiles.len(), 0);
        assert_eq!(plan.nodes_requested, 1);
    }
}
