//! The unified query API: every question the workspace can answer,
//! as one typed request/response pair.
//!
//! Historically each consumer wired itself to the model crates
//! directly: the CLI built `ProductScenario`s by hand, the repro
//! harness owned the Fig 8 surface, benchmarks re-derived Table 3.
//! [`Query`] is the single sanctioned entry point: a typed request
//! that evaluates against the shared [`crate::context`] artifacts,
//! batches onto the deterministic `maly-par` executor, and serializes
//! to/from the line-delimited JSON wire format the serve crate speaks.
//!
//! Determinism contract: [`Query::evaluate_with`] produces
//! bit-identical results at every executor width, because every
//! parallel path underneath (surface grids, optimal-λ scans, MC
//! replications) is index-ordered. The serve loopback tests compare
//! served bytes against direct in-process evaluation.

use std::sync::Arc;

use maly_cost_model::product::ProductScenario;
use maly_cost_model::scenario::{Scenario1, Scenario2};
use maly_cost_model::surface::CostSurface;
use maly_cost_optim::search::optimal_feature_size_with;
use maly_fabline_sim::cost::{product_mix_study, FabEconomics};
use maly_fabline_sim::mc::{self, McConfig};
use maly_fabline_sim::process::ProcessFlow;
use maly_par::Executor;
use maly_units::{Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount};

use crate::context::{self, EvalContext};
use crate::error::Error;
use crate::json::Json;

/// Most grid steps a single sweep/scan may request — a service bound,
/// far above anything the paper's figures need (Fig 6/7 use ≤ 481).
pub const MAX_SWEEP_STEPS: usize = 100_000;
/// Most steps per surface-tile axis (the Fig 8 report tile is 56×48).
pub const MAX_TILE_STEPS: usize = 512;
/// Most Monte Carlo replications per query.
pub const MAX_REPLICATIONS: usize = 100_000;
/// Most chiplets per partition (a service bound; real packages top out
/// far lower).
pub const MAX_CHIPLETS: usize = 64;
/// Most redundant (spare) dies per partition.
pub const MAX_SPARES: usize = 8;

/// The full input vector of an eq. (1) product evaluation — Table 3's
/// columns as a value type.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductSpec {
    /// Product label (echoed back; defaults to `"query"`).
    pub name: String,
    /// Transistor count `N_tr`.
    pub transistors: f64,
    /// Feature size λ in µm.
    pub lambda_um: f64,
    /// Design density `d_d` in λ²/transistor.
    pub density: f64,
    /// Wafer radius in cm.
    pub radius_cm: f64,
    /// Reference yield `Y₀` for a 1 cm² die.
    pub yield0: f64,
    /// Reference wafer cost `C₀` in dollars.
    pub c0: f64,
    /// Cost escalation factor `X`.
    pub x: f64,
}

impl ProductSpec {
    /// Builds the executable scenario, validating every field through
    /// the maly-units newtypes.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn scenario(&self) -> Result<ProductScenario, Error> {
        Ok(ProductScenario::builder(self.name.clone())
            .transistors(TransistorCount::new(self.transistors)?)
            .feature_size(Microns::new(self.lambda_um)?)
            .design_density(DesignDensity::new(self.density)?)
            .wafer_radius(Centimeters::new(self.radius_cm)?)
            .reference_yield(Probability::new(self.yield0)?)
            .reference_wafer_cost(Dollars::new(self.c0)?)
            .cost_escalation(self.x)?
            .build()?)
    }

    fn to_pairs(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::Str(self.name.clone())),
            ("transistors", Json::Num(self.transistors)),
            ("lambda_um", Json::Num(self.lambda_um)),
            ("density", Json::Num(self.density)),
            ("radius_cm", Json::Num(self.radius_cm)),
            ("yield0", Json::Num(self.yield0)),
            ("c0", Json::Num(self.c0)),
            ("x", Json::Num(self.x)),
        ]
    }

    fn from_json(v: &Json) -> Result<Self, Error> {
        Ok(Self {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("query")
                .to_string(),
            transistors: f64_field(v, "transistors")?,
            lambda_um: f64_field(v, "lambda_um")?,
            density: f64_field(v, "density")?,
            radius_cm: f64_field_or(v, "radius_cm", 7.5)?,
            yield0: f64_field(v, "yield0")?,
            c0: f64_field(v, "c0")?,
            x: f64_field(v, "x")?,
        })
    }
}

/// A typed query — the union of everything the service answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// One eq. (1) product evaluation (a Table 3-style row).
    Product(ProductSpec),
    /// One printed Table 3 row by id (1-based, as printed).
    Table3Row {
        /// Row id in 1..=17.
        id: u8,
    },
    /// All 17 printed Table 3 rows, paper cost vs model cost.
    Table3,
    /// Scenario #1 (eq. 8) λ sweep at escalation `X` — Fig 6.
    Scenario1Sweep {
        /// Escalation factor `X`.
        x: f64,
        /// Sweep window start (µm).
        lambda_min: f64,
        /// Sweep window end (µm).
        lambda_max: f64,
        /// Points, ≥ 2.
        steps: usize,
    },
    /// Scenario #2 (eq. 9) λ sweep at escalation `X` — Fig 7.
    Scenario2Sweep {
        /// Escalation factor `X`.
        x: f64,
        /// Sweep window start (µm).
        lambda_min: f64,
        /// Sweep window end (µm).
        lambda_max: f64,
        /// Points, ≥ 2.
        steps: usize,
    },
    /// A Fig 8 cost-surface tile on the paper's fab calibration,
    /// answered from the warm tile cache when possible.
    SurfaceTile {
        /// λ window start (µm).
        lambda_min: f64,
        /// λ window end (µm).
        lambda_max: f64,
        /// λ axis steps, 2..=[`MAX_TILE_STEPS`].
        lambda_steps: usize,
        /// `N_tr` window start.
        n_tr_min: f64,
        /// `N_tr` window end.
        n_tr_max: f64,
        /// `N_tr` axis steps, 2..=[`MAX_TILE_STEPS`].
        n_tr_steps: usize,
    },
    /// The cost-minimizing feature size for a product over a λ window.
    OptimalLambda {
        /// The product under study.
        spec: ProductSpec,
        /// Window start (µm).
        lambda_min: f64,
        /// Window end (µm).
        lambda_max: f64,
        /// Candidate nodes, ≥ 2.
        steps: usize,
    },
    /// A Monte Carlo wafer-cost study over a jittered product mix.
    McYield {
        /// Number of concurrent products in the fab.
        products: usize,
        /// Wafer starts per product per year.
        volume_each: f64,
        /// Replications, 1..=[`MAX_REPLICATIONS`].
        replications: usize,
        /// Relative volume jitter in `[0, 1)`.
        jitter: f64,
        /// Base PRNG seed (deterministic per replication index).
        seed: u64,
    },
    /// The two-scenario calendar roadmap (Figs 6+7 over time).
    Roadmap {
        /// First calendar year.
        from: u32,
        /// Last calendar year.
        to: u32,
    },
    /// Mono- vs multi-product fab economics (Sec. III).
    ProductMix {
        /// Number of concurrent products.
        products: usize,
        /// Wafer starts per product per year in the multi-product fab.
        volume_each: f64,
        /// Wafer starts per year in the mono-product reference fab.
        mono_volume: f64,
    },
    /// Admin: a snapshot of the process metrics registry (work/diag
    /// counters, gauges, latency percentiles). Served over the same
    /// wire protocol so operators can ask "what is p99 right now?"
    /// without attaching anything.
    ServerStats,
    /// One multi-die partition priced end-to-end on the `fig8_mcm`
    /// calibration: per-chiplet die cost (eq. 1–7), KGD test cost,
    /// bonding with `Y_asm^(m−1)` assembly yield, NRE over volume.
    ChipletCost {
        /// Total system transistor count, split equally over chiplets.
        transistors: f64,
        /// Feature size (µm).
        lambda_um: f64,
        /// Dies required for a working system, 1..=[`MAX_CHIPLETS`].
        chiplets: usize,
        /// Redundant dies mounted, 0..=[`MAX_SPARES`].
        spares: usize,
        /// Production volume the NRE amortizes over.
        volume: u64,
    },
    /// The partition search: given `N_tr` total at volume `V`, how many
    /// chiplets of what size (over a λ window, with up to `max_spares`
    /// redundant dies) minimize \$/system?
    ChipletPartitionSweep {
        /// Total system transistor count.
        transistors: f64,
        /// Production volume the NRE amortizes over.
        volume: u64,
        /// λ window start (µm).
        lambda_min: f64,
        /// λ window end (µm).
        lambda_max: f64,
        /// λ grid points, ≥ 2; the full grid (λ × chiplets × spares)
        /// is bounded by [`MAX_SWEEP_STEPS`].
        lambda_steps: usize,
        /// Largest chiplet count probed, 1..=[`MAX_CHIPLETS`].
        max_chiplets: usize,
        /// Largest spare count probed, 0..=[`MAX_SPARES`].
        max_spares: usize,
    },
}

/// A typed response, mirroring [`Query`]'s variants.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Eq. (1) breakdown of one product.
    Product(ProductReport),
    /// Paper-vs-model rows.
    Table3(Vec<Table3Report>),
    /// `(λ, C_tr)` series from a scenario sweep.
    Sweep(Vec<SweepPoint>),
    /// A cost-surface tile.
    Surface(SurfaceReport),
    /// The optimum, or `None` when no node in the window is feasible.
    OptimalLambda(Option<OptimalReport>),
    /// Monte Carlo summary.
    Mc(McSummary),
    /// Calendar projection rows.
    Roadmap(Vec<RoadmapRow>),
    /// Product-mix penalty report.
    ProductMix(MixReport),
    /// Metrics registry snapshot.
    ServerStats(StatsReport),
    /// One priced multi-die partition.
    Chiplet(ChipletReport),
    /// Partition-search result: the arg-min plus the per-chiplet-count
    /// frontier.
    ChipletSweep(ChipletSweepReport),
}

/// Eq. (1) outputs for one product.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductReport {
    /// Echoed product label.
    pub name: String,
    /// Realized die area (cm²).
    pub die_area_cm2: f64,
    /// Wafer cost `C_w` ($).
    pub wafer_cost: f64,
    /// Dies per wafer `N_ch`.
    pub dies_per_wafer: u32,
    /// Die yield `Y` in `[0, 1]`.
    pub die_yield: f64,
    /// Expected good dies per wafer.
    pub good_dies_per_wafer: f64,
    /// Cost per good die ($).
    pub cost_per_good_die: f64,
    /// Cost per transistor (µ$) — the paper's Table 3 unit.
    pub cost_per_transistor_micro: f64,
}

/// One Table 3 comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Report {
    /// Row id as printed.
    pub id: u8,
    /// IC type.
    pub name: String,
    /// The printed cost (µ$).
    pub paper_micro_dollars: f64,
    /// The model's cost (µ$).
    pub model_micro_dollars: f64,
}

/// One sweep sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Feature size (µm).
    pub lambda_um: f64,
    /// Cost per transistor ($).
    pub cost_per_transistor: f64,
}

/// A surface tile plus its derived optima.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceReport {
    /// The λ axis (µm).
    pub lambda_axis: Vec<f64>,
    /// The `N_tr` axis.
    pub n_tr_axis: Vec<f64>,
    /// `values[i][j]` = `C_tr` at `(lambda_axis[i], n_tr_axis[j])`,
    /// `None` where infeasible.
    pub values: Vec<Vec<Option<f64>>>,
    /// `λ^opt(N_tr)` per column: `(λ, cost)` or `None`.
    pub optimal_lambda_per_n_tr: Vec<Option<(f64, f64)>>,
    /// Global `(λ, N_tr, cost)` minimum, if any cell evaluated.
    pub global_minimum: Option<(f64, f64, f64)>,
}

/// An optimal-λ search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalReport {
    /// The cost-minimizing feature size (µm).
    pub lambda_um: f64,
    /// The cost per transistor there ($).
    pub cost_per_transistor: f64,
}

/// Monte Carlo wafer-cost summary.
#[derive(Debug, Clone, PartialEq)]
pub struct McSummary {
    /// Replications run.
    pub replications: usize,
    /// Mean wafer cost ($).
    pub mean_wafer_cost: f64,
    /// Cheapest replication ($).
    pub min_wafer_cost: f64,
    /// Most expensive replication ($).
    pub max_wafer_cost: f64,
    /// Mean tool utilization in `[0, 1]`.
    pub mean_utilization: f64,
    /// `max / min` wafer cost.
    pub cost_spread: f64,
}

/// One roadmap calendar row.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadmapRow {
    /// Calendar year.
    pub year: f64,
    /// Projected feature size (µm).
    pub lambda_um: f64,
    /// Scenario #1 cost (µ$/transistor).
    pub optimistic_micro: f64,
    /// Scenario #2 cost (µ$/transistor).
    pub realistic_micro: f64,
}

/// Mono- vs multi-product fab comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MixReport {
    /// Mono-product wafer cost ($).
    pub mono_cost: f64,
    /// Multi-product wafer cost ($).
    pub multi_cost: f64,
    /// `multi / mono` — the paper quotes "as high as 7".
    pub cost_ratio: f64,
    /// Mono-fab productive utilization.
    pub mono_utilization: f64,
    /// Multi-fab productive utilization.
    pub multi_utilization: f64,
}

/// One priced multi-die partition — the wire form of
/// [`maly_chiplet::PartitionCost`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChipletReport {
    /// Dies required for a working system.
    pub chiplets: u32,
    /// Redundant dies mounted beyond `chiplets`.
    pub spares: u32,
    /// Feature size (µm).
    pub lambda_um: f64,
    /// Transistors on each die (the equal split).
    pub transistors_per_chiplet: f64,
    /// Per-die cost delivered known-good (bare die + KGD test, $).
    pub known_good_die_cost: f64,
    /// `Y_asm^(m−1)` over the bonds.
    pub assembly_yield: f64,
    /// Assembly yield × P(enough dies escape the residual DL).
    pub system_yield: f64,
    /// Package base plus per-joint bonding ($).
    pub packaging_cost: f64,
    /// Amortized NRE per system ($).
    pub nre_per_system: f64,
    /// Expected cost of one good system ($).
    pub cost_per_system: f64,
}

impl ChipletReport {
    fn from_cost(c: &maly_chiplet::PartitionCost) -> Self {
        Self {
            chiplets: c.chiplets,
            spares: c.spares,
            lambda_um: c.lambda.value(),
            transistors_per_chiplet: c.transistors_per_chiplet.value(),
            known_good_die_cost: c.known_good_die_cost.value(),
            assembly_yield: c.assembly_yield.value(),
            system_yield: c.system_yield.value(),
            packaging_cost: c.packaging_cost.value(),
            nre_per_system: c.nre_per_system.value(),
            cost_per_system: c.cost_per_system.value(),
        }
    }

    fn pairs(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("chiplets", Json::Num(f64::from(self.chiplets))),
            ("spares", Json::Num(f64::from(self.spares))),
            ("lambda_um", Json::Num(self.lambda_um)),
            (
                "transistors_per_chiplet",
                Json::Num(self.transistors_per_chiplet),
            ),
            ("known_good_die_cost", Json::Num(self.known_good_die_cost)),
            ("assembly_yield", Json::Num(self.assembly_yield)),
            ("system_yield", Json::Num(self.system_yield)),
            ("packaging_cost", Json::Num(self.packaging_cost)),
            ("nre_per_system", Json::Num(self.nre_per_system)),
            ("cost_per_system", Json::Num(self.cost_per_system)),
        ]
    }

    fn to_json(&self) -> Json {
        Json::obj(self.pairs())
    }
}

/// The partition-search result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipletSweepReport {
    /// Grid candidates priced (feasible or not).
    pub evaluated: usize,
    /// Candidates with a feasible die and non-zero system yield.
    pub feasible: usize,
    /// The deterministic arg-min over the grid.
    pub best: ChipletReport,
    /// The best feasible partition at each chiplet count, ascending.
    pub per_chiplet_count: Vec<ChipletReport>,
}

/// A deterministic-shape snapshot of the process metrics registry.
///
/// Every section is sorted by metric name, so identical registry state
/// serializes to identical bytes. The split mirrors the obs crate's
/// determinism contract: `work` counters are exact and
/// thread-count-invariant (safe to golden-compare across worker
/// counts); `diag` counters, `gauges`, and `latency` are diagnostics
/// that legitimately vary with scheduling and wall-clock time and are
/// excluded from the bit-identity contract.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Work counters (name → exact total), sorted by name.
    pub work: Vec<(String, u64)>,
    /// Diagnostic counters (name → total), sorted by name.
    pub diag: Vec<(String, u64)>,
    /// Gauge levels (name → signed level), sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Per-histogram latency summaries, sorted by name.
    pub latency: Vec<LatencyReport>,
}

/// One histogram's latency summary inside a [`StatsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Histogram registry name (e.g. `serve.request_ns`).
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Mean duration (ns).
    pub mean_ns: f64,
    /// Interpolated median (ns).
    pub p50_ns: f64,
    /// Interpolated 90th percentile (ns).
    pub p90_ns: f64,
    /// Interpolated 99th percentile (ns).
    pub p99_ns: f64,
    /// Interpolated 99.9th percentile (ns).
    pub p999_ns: f64,
}

impl StatsReport {
    /// Snapshots the process-wide metrics registry. The obs snapshot
    /// functions already sort by name, so the report's shape is
    /// deterministic for a given registry state.
    #[must_use]
    pub fn capture() -> Self {
        let mut work = Vec::new();
        let mut diag = Vec::new();
        for c in maly_obs::counters_snapshot() {
            match c.kind {
                maly_obs::CounterKind::Work => work.push((c.name.to_string(), c.value)),
                maly_obs::CounterKind::Diag => diag.push((c.name.to_string(), c.value)),
            }
        }
        let gauges = maly_obs::gauges_snapshot()
            .into_iter()
            .map(|g| (g.name.to_string(), g.value))
            .collect();
        let latency = maly_obs::histograms_snapshot()
            .into_iter()
            .map(|h| {
                let p = h.latency_percentiles();
                LatencyReport {
                    name: h.name.to_string(),
                    count: h.count,
                    mean_ns: h.mean_ns(),
                    p50_ns: p.p50_ns,
                    p90_ns: p.p90_ns,
                    p99_ns: p.p99_ns,
                    p999_ns: p.p999_ns,
                }
            })
            .collect();
        Self {
            work,
            diag,
            gauges,
            latency,
        }
    }
}

// ---------------------------------------------------------------------
// Field extraction helpers
// ---------------------------------------------------------------------

fn f64_field(v: &Json, field: &'static str) -> Result<f64, Error> {
    v.get(field)
        .ok_or(Error::MissingField { field })?
        .as_f64()
        .ok_or(Error::InvalidField {
            field,
            message: "expected a number".to_string(),
        })
}

fn f64_field_or(v: &Json, field: &'static str, default: f64) -> Result<f64, Error> {
    match v.get(field) {
        None => Ok(default),
        Some(j) => j.as_f64().ok_or(Error::InvalidField {
            field,
            message: "expected a number".to_string(),
        }),
    }
}

fn usize_field(v: &Json, field: &'static str) -> Result<usize, Error> {
    let raw = f64_field(v, field)?;
    if raw.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&raw) {
        return Err(Error::InvalidField {
            field,
            message: format!("expected a non-negative integer, got {raw}"),
        });
    }
    Ok(raw as usize)
}

fn usize_field_or(v: &Json, field: &'static str, default: usize) -> Result<usize, Error> {
    match v.get(field) {
        None => Ok(default),
        Some(_) => usize_field(v, field),
    }
}

fn check_window(
    lambda_min: f64,
    lambda_max: f64,
    steps: usize,
    max_steps: usize,
) -> Result<(), Error> {
    if !(lambda_min.is_finite() && lambda_max.is_finite() && 0.0 < lambda_min)
        || lambda_min >= lambda_max
    {
        return Err(Error::InvalidField {
            field: "lambda_min",
            message: format!("window {lambda_min}..{lambda_max} must be ascending-positive"),
        });
    }
    if !(2..=max_steps).contains(&steps) {
        return Err(Error::InvalidField {
            field: "steps",
            message: format!("steps {steps} outside 2..={max_steps}"),
        });
    }
    Ok(())
}

fn check_partition_shape(chiplets: usize, spares: usize, volume: u64) -> Result<(), Error> {
    if !(1..=MAX_CHIPLETS).contains(&chiplets) {
        return Err(Error::InvalidField {
            field: "chiplets",
            message: format!("chiplet count {chiplets} outside 1..={MAX_CHIPLETS}"),
        });
    }
    if spares > MAX_SPARES {
        return Err(Error::InvalidField {
            field: "spares",
            message: format!("spare count {spares} above {MAX_SPARES}"),
        });
    }
    if volume == 0 {
        return Err(Error::InvalidField {
            field: "volume",
            message: "volume must be at least 1".to_string(),
        });
    }
    Ok(())
}

fn check_tile(lambda_range: (f64, f64, usize), n_tr_range: (f64, f64, usize)) -> Result<(), Error> {
    let (lambda_min, lambda_max, lambda_steps) = lambda_range;
    let (n_tr_min, n_tr_max, n_tr_steps) = n_tr_range;
    check_window(lambda_min, lambda_max, lambda_steps, MAX_TILE_STEPS)?;
    if !(n_tr_min.is_finite() && n_tr_max.is_finite() && 0.0 < n_tr_min) || n_tr_min >= n_tr_max {
        return Err(Error::InvalidField {
            field: "n_tr_min",
            message: format!("window {n_tr_min}..{n_tr_max} must be ascending-positive"),
        });
    }
    if !(2..=MAX_TILE_STEPS).contains(&n_tr_steps) {
        return Err(Error::InvalidField {
            field: "n_tr_steps",
            message: format!("steps {n_tr_steps} outside 2..={MAX_TILE_STEPS}"),
        });
    }
    Ok(())
}

impl Query {
    /// Parses a query from its JSON object form (the wire format's
    /// `query` field).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedQuery`], [`Error::MissingField`] or
    /// [`Error::InvalidField`] describing the first problem found.
    pub fn from_json(v: &Json) -> Result<Self, Error> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or(Error::MissingField { field: "type" })?;
        match kind {
            "product" => Ok(Query::Product(ProductSpec::from_json(v)?)),
            "table3_row" => {
                let id = usize_field(v, "id")?;
                let id = u8::try_from(id).map_err(|_| Error::UnknownTableRow { id: u8::MAX })?;
                Ok(Query::Table3Row { id })
            }
            "table3" => Ok(Query::Table3),
            "scenario1_sweep" | "scenario2_sweep" => {
                let x = f64_field(v, "x")?;
                let lambda_min = f64_field_or(v, "lambda_min", 0.2)?;
                let lambda_max = f64_field_or(v, "lambda_max", 1.2)?;
                let steps = usize_field_or(v, "steps", 41)?;
                if kind == "scenario1_sweep" {
                    Ok(Query::Scenario1Sweep {
                        x,
                        lambda_min,
                        lambda_max,
                        steps,
                    })
                } else {
                    Ok(Query::Scenario2Sweep {
                        x,
                        lambda_min,
                        lambda_max,
                        steps,
                    })
                }
            }
            "surface_tile" => Ok(Query::SurfaceTile {
                lambda_min: f64_field(v, "lambda_min")?,
                lambda_max: f64_field(v, "lambda_max")?,
                lambda_steps: usize_field(v, "lambda_steps")?,
                n_tr_min: f64_field(v, "n_tr_min")?,
                n_tr_max: f64_field(v, "n_tr_max")?,
                n_tr_steps: usize_field(v, "n_tr_steps")?,
            }),
            "optimal_lambda" => Ok(Query::OptimalLambda {
                spec: ProductSpec::from_json(v)?,
                lambda_min: f64_field_or(v, "lambda_min", 0.3)?,
                lambda_max: f64_field_or(v, "lambda_max", 1.2)?,
                steps: usize_field_or(v, "steps", 481)?,
            }),
            "mc_yield" => Ok(Query::McYield {
                products: usize_field_or(v, "products", 4)?,
                volume_each: f64_field_or(v, "volume_each", 5_000.0)?,
                replications: usize_field_or(v, "replications", 200)?,
                jitter: f64_field_or(v, "jitter", 0.3)?,
                seed: {
                    let raw = f64_field_or(v, "seed", 0.0)?;
                    if raw.fract() != 0.0 || raw < 0.0 {
                        return Err(Error::InvalidField {
                            field: "seed",
                            message: format!("expected a non-negative integer, got {raw}"),
                        });
                    }
                    raw as u64
                },
            }),
            "roadmap" => Ok(Query::Roadmap {
                from: usize_field_or(v, "from", 1986)? as u32,
                to: usize_field_or(v, "to", 2002)? as u32,
            }),
            "product_mix" => Ok(Query::ProductMix {
                products: usize_field_or(v, "products", 8)?,
                volume_each: f64_field_or(v, "volume_each", 1_000.0)?,
                mono_volume: f64_field_or(v, "mono_volume", 100_000.0)?,
            }),
            "server_stats" => Ok(Query::ServerStats),
            "chiplet_cost" => Ok(Query::ChipletCost {
                transistors: f64_field(v, "transistors")?,
                lambda_um: f64_field(v, "lambda_um")?,
                chiplets: usize_field(v, "chiplets")?,
                spares: usize_field_or(v, "spares", 0)?,
                volume: usize_field_or(v, "volume", 100_000)? as u64,
            }),
            "chiplet_partition_sweep" => Ok(Query::ChipletPartitionSweep {
                transistors: f64_field(v, "transistors")?,
                volume: usize_field_or(v, "volume", 100_000)? as u64,
                lambda_min: f64_field_or(v, "lambda_min", 0.5)?,
                lambda_max: f64_field_or(v, "lambda_max", 1.2)?,
                lambda_steps: usize_field_or(v, "lambda_steps", 15)?,
                max_chiplets: usize_field_or(v, "max_chiplets", 8)?,
                max_spares: usize_field_or(v, "max_spares", 1)?,
            }),
            other => Err(Error::UnsupportedQuery {
                found: other.to_string(),
            }),
        }
    }

    /// The JSON object form of this query (inverse of
    /// [`Query::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let tag = |t: &str| ("type", Json::Str(t.to_string()));
        match self {
            Query::Product(spec) => {
                let mut pairs = vec![tag("product")];
                pairs.extend(spec.to_pairs());
                Json::obj(pairs)
            }
            Query::Table3Row { id } => {
                Json::obj(vec![tag("table3_row"), ("id", Json::Num(f64::from(*id)))])
            }
            Query::Table3 => Json::obj(vec![tag("table3")]),
            Query::Scenario1Sweep {
                x,
                lambda_min,
                lambda_max,
                steps,
            } => Json::obj(vec![
                tag("scenario1_sweep"),
                ("x", Json::Num(*x)),
                ("lambda_min", Json::Num(*lambda_min)),
                ("lambda_max", Json::Num(*lambda_max)),
                ("steps", Json::Num(*steps as f64)),
            ]),
            Query::Scenario2Sweep {
                x,
                lambda_min,
                lambda_max,
                steps,
            } => Json::obj(vec![
                tag("scenario2_sweep"),
                ("x", Json::Num(*x)),
                ("lambda_min", Json::Num(*lambda_min)),
                ("lambda_max", Json::Num(*lambda_max)),
                ("steps", Json::Num(*steps as f64)),
            ]),
            Query::SurfaceTile {
                lambda_min,
                lambda_max,
                lambda_steps,
                n_tr_min,
                n_tr_max,
                n_tr_steps,
            } => Json::obj(vec![
                tag("surface_tile"),
                ("lambda_min", Json::Num(*lambda_min)),
                ("lambda_max", Json::Num(*lambda_max)),
                ("lambda_steps", Json::Num(*lambda_steps as f64)),
                ("n_tr_min", Json::Num(*n_tr_min)),
                ("n_tr_max", Json::Num(*n_tr_max)),
                ("n_tr_steps", Json::Num(*n_tr_steps as f64)),
            ]),
            Query::OptimalLambda {
                spec,
                lambda_min,
                lambda_max,
                steps,
            } => {
                let mut pairs = vec![tag("optimal_lambda")];
                pairs.extend(spec.to_pairs());
                pairs.push(("lambda_min", Json::Num(*lambda_min)));
                pairs.push(("lambda_max", Json::Num(*lambda_max)));
                pairs.push(("steps", Json::Num(*steps as f64)));
                Json::obj(pairs)
            }
            Query::McYield {
                products,
                volume_each,
                replications,
                jitter,
                seed,
            } => Json::obj(vec![
                tag("mc_yield"),
                ("products", Json::Num(*products as f64)),
                ("volume_each", Json::Num(*volume_each)),
                ("replications", Json::Num(*replications as f64)),
                ("jitter", Json::Num(*jitter)),
                ("seed", Json::Num(*seed as f64)),
            ]),
            Query::Roadmap { from, to } => Json::obj(vec![
                tag("roadmap"),
                ("from", Json::Num(f64::from(*from))),
                ("to", Json::Num(f64::from(*to))),
            ]),
            Query::ProductMix {
                products,
                volume_each,
                mono_volume,
            } => Json::obj(vec![
                tag("product_mix"),
                ("products", Json::Num(*products as f64)),
                ("volume_each", Json::Num(*volume_each)),
                ("mono_volume", Json::Num(*mono_volume)),
            ]),
            Query::ServerStats => Json::obj(vec![tag("server_stats")]),
            Query::ChipletCost {
                transistors,
                lambda_um,
                chiplets,
                spares,
                volume,
            } => Json::obj(vec![
                tag("chiplet_cost"),
                ("transistors", Json::Num(*transistors)),
                ("lambda_um", Json::Num(*lambda_um)),
                ("chiplets", Json::Num(*chiplets as f64)),
                ("spares", Json::Num(*spares as f64)),
                ("volume", Json::Num(*volume as f64)),
            ]),
            Query::ChipletPartitionSweep {
                transistors,
                volume,
                lambda_min,
                lambda_max,
                lambda_steps,
                max_chiplets,
                max_spares,
            } => Json::obj(vec![
                tag("chiplet_partition_sweep"),
                ("transistors", Json::Num(*transistors)),
                ("volume", Json::Num(*volume as f64)),
                ("lambda_min", Json::Num(*lambda_min)),
                ("lambda_max", Json::Num(*lambda_max)),
                ("lambda_steps", Json::Num(*lambda_steps as f64)),
                ("max_chiplets", Json::Num(*max_chiplets as f64)),
                ("max_spares", Json::Num(*max_spares as f64)),
            ]),
        }
    }

    /// Evaluates against the process-wide context on the ambient
    /// executor (`MALY_PAR_THREADS`).
    ///
    /// # Errors
    ///
    /// Returns the unified [`Error`] for validation and model failures.
    pub fn evaluate(&self) -> Result<QueryResponse, Error> {
        self.evaluate_with(&Executor::from_env(), EvalContext::process())
    }

    /// Evaluates on an explicit executor and context. Results are
    /// bit-identical at every executor width.
    ///
    /// # Errors
    ///
    /// Returns the unified [`Error`] for validation and model failures.
    pub fn evaluate_with(
        &self,
        exec: &Executor,
        ctx: &EvalContext,
    ) -> Result<QueryResponse, Error> {
        let _span = maly_obs::span("model.query").with_histogram(&context::EVAL_NS);
        context::QUERIES.incr();
        match self {
            Query::Product(spec) => {
                let scenario = spec.scenario()?;
                let b = scenario.evaluate()?;
                Ok(QueryResponse::Product(ProductReport {
                    name: spec.name.clone(),
                    die_area_cm2: scenario.die_area().value(),
                    wafer_cost: b.wafer_cost.value(),
                    dies_per_wafer: b.dies_per_wafer.value(),
                    die_yield: b.die_yield.value(),
                    good_dies_per_wafer: b.good_dies_per_wafer,
                    cost_per_good_die: b.cost_per_good_die.value(),
                    cost_per_transistor_micro: b.cost_per_transistor.to_micro_dollars().value(),
                }))
            }
            Query::Table3Row { id } => {
                let rows = &context::shared().table3_rows;
                let row = rows
                    .iter()
                    .find(|r| r.id == *id)
                    .ok_or(Error::UnknownTableRow { id: *id })?;
                Ok(QueryResponse::Table3(vec![table3_report(row)?]))
            }
            Query::Table3 => {
                let rows = &context::shared().table3_rows;
                // Rows are independent eq. (1) evaluations; batch them
                // across the executor in printed order.
                let reports = exec.map_indexed(rows.len(), |i| table3_report(&rows[i]));
                Ok(QueryResponse::Table3(
                    reports.into_iter().collect::<Result<Vec<_>, _>>()?,
                ))
            }
            Query::Scenario1Sweep {
                x,
                lambda_min,
                lambda_max,
                steps,
            } => {
                check_window(*lambda_min, *lambda_max, *steps, MAX_SWEEP_STEPS)?;
                let s1 = Scenario1::fig6(*x)?;
                let series = s1.sweep(
                    Microns::new(*lambda_min)?,
                    Microns::new(*lambda_max)?,
                    *steps,
                )?;
                Ok(QueryResponse::Sweep(sweep_points(series)))
            }
            Query::Scenario2Sweep {
                x,
                lambda_min,
                lambda_max,
                steps,
            } => {
                check_window(*lambda_min, *lambda_max, *steps, MAX_SWEEP_STEPS)?;
                let s2 = Scenario2::fig7(*x)?;
                let series = s2.sweep(
                    Microns::new(*lambda_min)?,
                    Microns::new(*lambda_max)?,
                    *steps,
                )?;
                Ok(QueryResponse::Sweep(sweep_points(series)))
            }
            Query::SurfaceTile {
                lambda_min,
                lambda_max,
                lambda_steps,
                n_tr_min,
                n_tr_max,
                n_tr_steps,
            } => {
                check_tile(
                    (*lambda_min, *lambda_max, *lambda_steps),
                    (*n_tr_min, *n_tr_max, *n_tr_steps),
                )?;
                let tile = ctx.surface_tile(
                    exec,
                    &context::shared().fig8_params,
                    (*lambda_min, *lambda_max, *lambda_steps),
                    (*n_tr_min, *n_tr_max, *n_tr_steps),
                );
                Ok(QueryResponse::Surface(surface_report(&tile, exec)))
            }
            Query::OptimalLambda {
                spec,
                lambda_min,
                lambda_max,
                steps,
            } => {
                check_window(*lambda_min, *lambda_max, *steps, MAX_SWEEP_STEPS)?;
                let scenario = spec.scenario()?;
                let best =
                    optimal_feature_size_with(exec, &scenario, *lambda_min, *lambda_max, *steps)?;
                Ok(QueryResponse::OptimalLambda(best.map(|(lambda, cost)| {
                    OptimalReport {
                        lambda_um: lambda.value(),
                        cost_per_transistor: cost,
                    }
                })))
            }
            Query::McYield {
                products,
                volume_each,
                replications,
                jitter,
                seed,
            } => {
                if *products == 0 {
                    return Err(Error::InvalidField {
                        field: "products",
                        message: "need at least one product".to_string(),
                    });
                }
                if !(*volume_each > 0.0 && volume_each.is_finite()) {
                    return Err(Error::InvalidField {
                        field: "volume_each",
                        message: format!("volume {volume_each} must be positive"),
                    });
                }
                if !(1..=MAX_REPLICATIONS).contains(replications) {
                    return Err(Error::InvalidField {
                        field: "replications",
                        message: format!(
                            "replications {replications} outside 1..={MAX_REPLICATIONS}"
                        ),
                    });
                }
                let demand: Vec<(ProcessFlow, f64)> = (0..*products)
                    .map(|i| {
                        // Spread products over nearby nodes, as the
                        // product_mix study does.
                        let lambda = 0.8 + 0.05 * (i % 4) as f64;
                        (
                            ProcessFlow::for_generation(format!("mc-{i}"), lambda),
                            *volume_each,
                        )
                    })
                    .collect();
                let config = McConfig {
                    replications: *replications,
                    volume_jitter: *jitter,
                    base_seed: *seed,
                };
                let report = mc::run_with(exec, &FabEconomics::default(), &demand, &config)
                    .map_err(Error::Unit)?;
                Ok(QueryResponse::Mc(McSummary {
                    replications: report.samples.len(),
                    mean_wafer_cost: report.mean_wafer_cost.value(),
                    min_wafer_cost: report.min_wafer_cost.value(),
                    max_wafer_cost: report.max_wafer_cost.value(),
                    mean_utilization: report.mean_utilization,
                    cost_spread: report.cost_spread(),
                }))
            }
            Query::Roadmap { from, to } => {
                if from >= to {
                    return Err(Error::InvalidField {
                        field: "from",
                        message: format!("year range {from}..{to} must be ascending"),
                    });
                }
                let roadmap = &context::shared().roadmap;
                let points = roadmap.project(*from, *to)?;
                Ok(QueryResponse::Roadmap(
                    points
                        .iter()
                        .map(|p| RoadmapRow {
                            year: p.year,
                            lambda_um: p.lambda.value(),
                            optimistic_micro: p.optimistic.to_micro_dollars().value(),
                            realistic_micro: p.realistic.to_micro_dollars().value(),
                        })
                        .collect(),
                ))
            }
            Query::ProductMix {
                products,
                volume_each,
                mono_volume,
            } => {
                if *products == 0 || !(*volume_each > 0.0) || !(*mono_volume > 0.0) {
                    return Err(Error::InvalidField {
                        field: "products",
                        message: "need positive products and volumes".to_string(),
                    });
                }
                let study = product_mix_study(*products, *volume_each, *mono_volume);
                Ok(QueryResponse::ProductMix(MixReport {
                    mono_cost: study.mono_cost.value(),
                    multi_cost: study.multi_cost.value(),
                    cost_ratio: study.cost_ratio,
                    mono_utilization: study.mono_utilization,
                    multi_utilization: study.multi_utilization,
                }))
            }
            Query::ServerStats => Ok(QueryResponse::ServerStats(StatsReport::capture())),
            Query::ChipletCost {
                transistors,
                lambda_um,
                chiplets,
                spares,
                volume,
            } => {
                check_partition_shape(*chiplets, *spares, *volume)?;
                let params = maly_chiplet::ChipletParameters::fig8_mcm();
                let partition = maly_chiplet::Partition {
                    chiplets: *chiplets as u32,
                    spares: *spares as u32,
                    lambda: Microns::new(*lambda_um)?,
                    system_transistors: TransistorCount::new(*transistors)?,
                    volume: *volume,
                };
                let cost = params.price_partition(&partition)?;
                Ok(QueryResponse::Chiplet(ChipletReport::from_cost(&cost)))
            }
            Query::ChipletPartitionSweep {
                transistors,
                volume,
                lambda_min,
                lambda_max,
                lambda_steps,
                max_chiplets,
                max_spares,
            } => {
                check_window(*lambda_min, *lambda_max, *lambda_steps, MAX_SWEEP_STEPS)?;
                check_partition_shape(*max_chiplets, *max_spares, *volume)?;
                let candidates = *lambda_steps * *max_chiplets * (*max_spares + 1);
                if candidates > MAX_SWEEP_STEPS {
                    return Err(Error::InvalidField {
                        field: "lambda_steps",
                        message: format!(
                            "partition grid has {candidates} candidates, above {MAX_SWEEP_STEPS}"
                        ),
                    });
                }
                let params = maly_chiplet::ChipletParameters::fig8_mcm();
                let spec = maly_chiplet::SweepSpec {
                    system_transistors: TransistorCount::new(*transistors)?,
                    volume: *volume,
                    lambda_min: Microns::new(*lambda_min)?,
                    lambda_max: Microns::new(*lambda_max)?,
                    lambda_steps: *lambda_steps,
                    max_chiplets: *max_chiplets as u32,
                    max_spares: *max_spares as u32,
                };
                let outcome = params.sweep(&spec, exec)?;
                Ok(QueryResponse::ChipletSweep(ChipletSweepReport {
                    evaluated: outcome.evaluated,
                    feasible: outcome.feasible,
                    best: ChipletReport::from_cost(&outcome.best),
                    per_chiplet_count: outcome
                        .per_chiplet_count
                        .iter()
                        .map(ChipletReport::from_cost)
                        .collect(),
                }))
            }
        }
    }

    /// The validated grid ranges when this query is a well-formed
    /// [`Query::SurfaceTile`] — the batch planner's node extraction.
    /// Malformed tiles return `None` and keep their per-query typed
    /// error from [`Query::evaluate_with`].
    pub(crate) fn tile_request(&self) -> Option<((f64, f64, usize), (f64, f64, usize))> {
        if let Query::SurfaceTile {
            lambda_min,
            lambda_max,
            lambda_steps,
            n_tr_min,
            n_tr_max,
            n_tr_steps,
        } = self
        {
            let lambda_range = (*lambda_min, *lambda_max, *lambda_steps);
            let n_tr_range = (*n_tr_min, *n_tr_max, *n_tr_steps);
            if check_tile(lambda_range, n_tr_range).is_ok() {
                return Some((lambda_range, n_tr_range));
            }
        }
        None
    }

    /// Evaluates a batch of queries, preserving input order. Each
    /// element fails independently.
    ///
    /// By default the batch compiles to an evaluation plan first
    /// ([`crate::plan`]): byte-identical queries are answered once and
    /// fanned back out, and the cold surface-tile nodes of the whole
    /// batch fuse into a single deduplicated kernel dispatch. Results
    /// are bit-identical to [`Query::evaluate_batch_unplanned`] (and to
    /// per-query [`Query::evaluate_with`]) at every executor width;
    /// setting `MALY_PLAN=0` falls back to the unplanned path.
    #[must_use]
    pub fn evaluate_batch(
        exec: &Executor,
        ctx: &EvalContext,
        queries: &[Query],
    ) -> Vec<Result<QueryResponse, Error>> {
        if crate::plan::enabled() {
            crate::planner::evaluate(exec, ctx, queries)
        } else {
            Self::evaluate_batch_unplanned(exec, ctx, queries)
        }
    }

    /// The direct batch path: every query scheduled independently
    /// across the executor, no cross-request dedup or fusion. The
    /// planner's bit-identity reference, and the `MALY_PLAN=0` service
    /// path.
    #[must_use]
    pub fn evaluate_batch_unplanned(
        exec: &Executor,
        ctx: &EvalContext,
        queries: &[Query],
    ) -> Vec<Result<QueryResponse, Error>> {
        // Each query may itself fan out (surface tiles, MC); batching
        // happens at the query level, inner evaluation reuses the same
        // executor. Index order keeps the batch deterministic.
        exec.map_indexed(queries.len(), |i| queries[i].evaluate_with(exec, ctx))
    }
}

fn table3_report(row: &maly_paper_data::table3::Table3Row) -> Result<Table3Report, Error> {
    let measured = row
        .scenario()?
        .evaluate()?
        .cost_per_transistor
        .to_micro_dollars()
        .value();
    Ok(Table3Report {
        id: row.id,
        name: row.name.to_string(),
        paper_micro_dollars: row.paper_cost_micro_dollars,
        model_micro_dollars: measured,
    })
}

fn sweep_points(series: Vec<(f64, Dollars)>) -> Vec<SweepPoint> {
    series
        .into_iter()
        .map(|(lambda_um, cost)| SweepPoint {
            lambda_um,
            cost_per_transistor: cost.value(),
        })
        .collect()
}

fn surface_report(tile: &Arc<CostSurface>, exec: &Executor) -> SurfaceReport {
    SurfaceReport {
        lambda_axis: tile.lambda_axis().to_vec(),
        n_tr_axis: tile.n_tr_axis().to_vec(),
        values: tile.values().to_vec(),
        optimal_lambda_per_n_tr: tile.optimal_lambda_per_n_tr_with(exec),
        global_minimum: tile.global_minimum(),
    }
}

// ---------------------------------------------------------------------
// Response serialization
// ---------------------------------------------------------------------

impl QueryResponse {
    /// The JSON object form of this response — the wire format's `ok`
    /// payload. Serialization is deterministic: same response, same
    /// bytes.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            QueryResponse::Product(r) => Json::obj(vec![
                ("kind", Json::Str("product".to_string())),
                ("name", Json::Str(r.name.clone())),
                ("die_area_cm2", Json::Num(r.die_area_cm2)),
                ("wafer_cost", Json::Num(r.wafer_cost)),
                ("dies_per_wafer", Json::Num(f64::from(r.dies_per_wafer))),
                ("die_yield", Json::Num(r.die_yield)),
                ("good_dies_per_wafer", Json::Num(r.good_dies_per_wafer)),
                ("cost_per_good_die", Json::Num(r.cost_per_good_die)),
                (
                    "cost_per_transistor_micro",
                    Json::Num(r.cost_per_transistor_micro),
                ),
            ]),
            QueryResponse::Table3(rows) => Json::obj(vec![
                ("kind", Json::Str("table3".to_string())),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("id", Json::Num(f64::from(r.id))),
                                    ("name", Json::Str(r.name.clone())),
                                    ("paper_micro_dollars", Json::Num(r.paper_micro_dollars)),
                                    ("model_micro_dollars", Json::Num(r.model_micro_dollars)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            QueryResponse::Sweep(points) => Json::obj(vec![
                ("kind", Json::Str("sweep".to_string())),
                (
                    "points",
                    Json::Arr(
                        points
                            .iter()
                            .map(|p| {
                                Json::Arr(vec![
                                    Json::Num(p.lambda_um),
                                    Json::Num(p.cost_per_transistor),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            QueryResponse::Surface(s) => Json::obj(vec![
                ("kind", Json::Str("surface".to_string())),
                (
                    "lambda_axis",
                    Json::Arr(s.lambda_axis.iter().map(|&v| Json::Num(v)).collect()),
                ),
                (
                    "n_tr_axis",
                    Json::Arr(s.n_tr_axis.iter().map(|&v| Json::Num(v)).collect()),
                ),
                (
                    "values",
                    Json::Arr(
                        s.values
                            .iter()
                            .map(|row| {
                                Json::Arr(
                                    row.iter()
                                        .map(|cell| match cell {
                                            Some(v) => Json::Num(*v),
                                            None => Json::Null,
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "optimal_lambda_per_n_tr",
                    Json::Arr(
                        s.optimal_lambda_per_n_tr
                            .iter()
                            .map(|col| match col {
                                Some((l, c)) => Json::Arr(vec![Json::Num(*l), Json::Num(*c)]),
                                None => Json::Null,
                            })
                            .collect(),
                    ),
                ),
                (
                    "global_minimum",
                    match s.global_minimum {
                        Some((l, n, c)) => {
                            Json::Arr(vec![Json::Num(l), Json::Num(n), Json::Num(c)])
                        }
                        None => Json::Null,
                    },
                ),
            ]),
            QueryResponse::OptimalLambda(best) => Json::obj(vec![
                ("kind", Json::Str("optimal_lambda".to_string())),
                (
                    "best",
                    match best {
                        Some(r) => Json::obj(vec![
                            ("lambda_um", Json::Num(r.lambda_um)),
                            ("cost_per_transistor", Json::Num(r.cost_per_transistor)),
                        ]),
                        None => Json::Null,
                    },
                ),
            ]),
            QueryResponse::Mc(m) => Json::obj(vec![
                ("kind", Json::Str("mc".to_string())),
                ("replications", Json::Num(m.replications as f64)),
                ("mean_wafer_cost", Json::Num(m.mean_wafer_cost)),
                ("min_wafer_cost", Json::Num(m.min_wafer_cost)),
                ("max_wafer_cost", Json::Num(m.max_wafer_cost)),
                ("mean_utilization", Json::Num(m.mean_utilization)),
                ("cost_spread", Json::Num(m.cost_spread)),
            ]),
            QueryResponse::Roadmap(rows) => Json::obj(vec![
                ("kind", Json::Str("roadmap".to_string())),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("year", Json::Num(r.year)),
                                    ("lambda_um", Json::Num(r.lambda_um)),
                                    ("optimistic_micro", Json::Num(r.optimistic_micro)),
                                    ("realistic_micro", Json::Num(r.realistic_micro)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            QueryResponse::ProductMix(m) => Json::obj(vec![
                ("kind", Json::Str("product_mix".to_string())),
                ("mono_cost", Json::Num(m.mono_cost)),
                ("multi_cost", Json::Num(m.multi_cost)),
                ("cost_ratio", Json::Num(m.cost_ratio)),
                ("mono_utilization", Json::Num(m.mono_utilization)),
                ("multi_utilization", Json::Num(m.multi_utilization)),
            ]),
            QueryResponse::Chiplet(r) => {
                let mut pairs = vec![("kind", Json::Str("chiplet".to_string()))];
                pairs.extend(r.pairs());
                Json::obj(pairs)
            }
            QueryResponse::ChipletSweep(s) => Json::obj(vec![
                ("kind", Json::Str("chiplet_sweep".to_string())),
                ("evaluated", Json::Num(s.evaluated as f64)),
                ("feasible", Json::Num(s.feasible as f64)),
                ("best", s.best.to_json()),
                (
                    "per_chiplet_count",
                    Json::Arr(
                        s.per_chiplet_count
                            .iter()
                            .map(ChipletReport::to_json)
                            .collect(),
                    ),
                ),
            ]),
            QueryResponse::ServerStats(s) => {
                let counts = |v: &[(String, u64)]| -> Json {
                    Json::Obj(
                        v.iter()
                            .map(|(k, n)| (k.clone(), Json::Num(*n as f64)))
                            .collect(),
                    )
                };
                let latency = Json::Obj(
                    s.latency
                        .iter()
                        .map(|l| {
                            (
                                l.name.clone(),
                                Json::obj(vec![
                                    ("count", Json::Num(l.count as f64)),
                                    ("mean_ns", Json::Num(l.mean_ns)),
                                    ("p50_ns", Json::Num(l.p50_ns)),
                                    ("p90_ns", Json::Num(l.p90_ns)),
                                    ("p99_ns", Json::Num(l.p99_ns)),
                                    ("p999_ns", Json::Num(l.p999_ns)),
                                ]),
                            )
                        })
                        .collect(),
                );
                Json::obj(vec![
                    ("kind", Json::Str("server_stats".to_string())),
                    ("work", counts(&s.work)),
                    ("diag", counts(&s.diag)),
                    (
                        "gauges",
                        Json::Obj(
                            s.gauges
                                .iter()
                                .map(|(k, n)| (k.clone(), Json::Num(*n as f64)))
                                .collect(),
                        ),
                    ),
                    ("latency", latency),
                ])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn row1_spec() -> ProductSpec {
        ProductSpec {
            name: "BiCMOS µP".to_string(),
            transistors: 3.1e6,
            lambda_um: 0.8,
            density: 150.0,
            radius_cm: 7.5,
            yield0: 0.9,
            c0: 700.0,
            x: 1.4,
        }
    }

    #[test]
    fn product_query_reproduces_table3_row1() {
        let resp = Query::Product(row1_spec()).evaluate().unwrap();
        let QueryResponse::Product(report) = resp else {
            panic!("wrong response kind");
        };
        assert_eq!(report.dies_per_wafer, 46);
        assert!((report.cost_per_transistor_micro - 9.40).abs() < 0.05);
    }

    #[test]
    fn queries_round_trip_through_json() {
        let queries = vec![
            Query::Product(row1_spec()),
            Query::Table3Row { id: 13 },
            Query::Table3,
            Query::Scenario1Sweep {
                x: 1.4,
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 11,
            },
            Query::Scenario2Sweep {
                x: 2.4,
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 11,
            },
            Query::SurfaceTile {
                lambda_min: 0.4,
                lambda_max: 1.5,
                lambda_steps: 8,
                n_tr_min: 2.0e4,
                n_tr_max: 4.0e6,
                n_tr_steps: 6,
            },
            Query::OptimalLambda {
                spec: row1_spec(),
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 21,
            },
            Query::McYield {
                products: 2,
                volume_each: 1_000.0,
                replications: 10,
                jitter: 0.3,
                seed: 7,
            },
            Query::Roadmap {
                from: 1990,
                to: 1994,
            },
            Query::ProductMix {
                products: 4,
                volume_each: 1_000.0,
                mono_volume: 50_000.0,
            },
            Query::ServerStats,
            Query::ChipletCost {
                transistors: 2.0e6,
                lambda_um: 0.9,
                chiplets: 4,
                spares: 1,
                volume: 50_000,
            },
            Query::ChipletPartitionSweep {
                transistors: 2.0e6,
                volume: 50_000,
                lambda_min: 0.5,
                lambda_max: 1.2,
                lambda_steps: 15,
                max_chiplets: 8,
                max_spares: 1,
            },
        ];
        for q in queries {
            let text = q.to_json().write();
            let back = Query::from_json(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(q, back, "{text}");
        }
    }

    #[test]
    fn unknown_type_and_missing_fields_are_typed_errors() {
        let bad = json::parse("{\"type\":\"nonsense\"}").unwrap();
        let err = Query::from_json(&bad).unwrap_err();
        assert!(matches!(&err, Error::UnsupportedQuery { found } if found == "nonsense"));
        assert_eq!(err.kind(), "unsupported-query");
        let missing = json::parse("{\"type\":\"product\"}").unwrap();
        assert!(matches!(
            Query::from_json(&missing),
            Err(Error::MissingField { .. })
        ));
        let no_type = json::parse("{}").unwrap();
        assert!(matches!(
            Query::from_json(&no_type),
            Err(Error::MissingField { field: "type" })
        ));
    }

    #[test]
    fn surface_tile_validates_before_compute() {
        // CostSurface::compute panics on degenerate grids; the query
        // layer must reject them as typed errors instead.
        let q = Query::SurfaceTile {
            lambda_min: 0.4,
            lambda_max: 1.5,
            lambda_steps: 1,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 6,
        };
        assert!(matches!(q.evaluate(), Err(Error::InvalidField { .. })));
        let q = Query::SurfaceTile {
            lambda_min: 1.5,
            lambda_max: 0.4,
            lambda_steps: 8,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 6,
        };
        assert!(matches!(q.evaluate(), Err(Error::InvalidField { .. })));
        let q = Query::SurfaceTile {
            lambda_min: 0.4,
            lambda_max: 1.5,
            lambda_steps: 8,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: MAX_TILE_STEPS + 1,
        };
        assert!(matches!(q.evaluate(), Err(Error::InvalidField { .. })));
    }

    #[test]
    fn unknown_table_row_is_a_typed_error() {
        assert!(matches!(
            Query::Table3Row { id: 99 }.evaluate(),
            Err(Error::UnknownTableRow { id: 99 })
        ));
    }

    #[test]
    fn evaluation_is_thread_count_invariant() {
        // Evaluations bump the global tile counters; hold the lock so
        // the counter-golden tests see clean deltas.
        let _guard = context::counter_test_lock();
        let ctx = EvalContext::new();
        let queries = vec![
            Query::Table3,
            Query::Scenario2Sweep {
                x: 2.4,
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 31,
            },
            Query::SurfaceTile {
                lambda_min: 0.4,
                lambda_max: 1.5,
                lambda_steps: 12,
                n_tr_min: 2.0e4,
                n_tr_max: 4.0e6,
                n_tr_steps: 10,
            },
            Query::McYield {
                products: 3,
                volume_each: 2_000.0,
                replications: 16,
                jitter: 0.3,
                seed: 42,
            },
            Query::ChipletPartitionSweep {
                transistors: 2.0e6,
                volume: 50_000,
                lambda_min: 0.5,
                lambda_max: 1.2,
                lambda_steps: 15,
                max_chiplets: 8,
                max_spares: 1,
            },
        ];
        for q in &queries {
            // Fresh context per width so the tile cache cannot mask a
            // divergent computation.
            let serial = q
                .evaluate_with(&Executor::with_threads(1), &EvalContext::new())
                .unwrap();
            let parallel = q
                .evaluate_with(&Executor::with_threads(8), &EvalContext::new())
                .unwrap();
            assert_eq!(
                serial.to_json().write(),
                parallel.to_json().write(),
                "{q:?} must be thread-count-invariant"
            );
        }
        // And a batch call preserves order and content.
        let batch = Query::evaluate_batch(&Executor::with_threads(4), &ctx, &queries);
        assert_eq!(batch.len(), queries.len());
        assert!(batch.iter().all(Result::is_ok));
    }

    #[test]
    fn repeated_surface_tile_reuses_the_cache() {
        let _guard = context::counter_test_lock();
        let ctx = EvalContext::new();
        let exec = Executor::serial();
        let q = Query::SurfaceTile {
            lambda_min: 0.5,
            lambda_max: 1.4,
            lambda_steps: 9,
            n_tr_min: 1.0e5,
            n_tr_max: 1.0e6,
            n_tr_steps: 7,
        };
        let cells_before = context::TILE_CELLS.value();
        let (hits0, misses0) = (context::TILE_HITS.value(), context::TILE_MISSES.value());
        let first = q.evaluate_with(&exec, &ctx).unwrap();
        let after_first = context::TILE_CELLS.value();
        assert_eq!(after_first - cells_before, 9 * 7, "cold tile evaluates");
        assert_eq!(context::TILE_MISSES.value() - misses0, 1, "one miss");
        assert_eq!(context::TILE_HITS.value() - hits0, 0);
        let second = q.evaluate_with(&exec, &ctx).unwrap();
        assert_eq!(
            context::TILE_CELLS.value(),
            after_first,
            "warm tile adds zero grid-cell work"
        );
        assert_eq!(context::TILE_HITS.value() - hits0, 1, "repeat is one hit");
        assert_eq!(context::TILE_MISSES.value() - misses0, 1, "and no new miss");
        assert_eq!(first.to_json().write(), second.to_json().write());
    }

    #[test]
    fn tile_request_extracts_only_valid_surface_tiles() {
        let good = Query::SurfaceTile {
            lambda_min: 0.5,
            lambda_max: 1.0,
            lambda_steps: 9,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 24,
        };
        assert_eq!(
            good.tile_request(),
            Some(((0.5, 1.0, 9), (2.0e4, 4.0e6, 24)))
        );
        let degenerate = Query::SurfaceTile {
            lambda_min: 1.0,
            lambda_max: 0.5,
            lambda_steps: 9,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 24,
        };
        assert_eq!(degenerate.tile_request(), None);
        assert_eq!(Query::Table3.tile_request(), None);
    }

    #[test]
    fn server_stats_snapshot_is_sorted_and_typed() {
        let QueryResponse::ServerStats(report) = Query::ServerStats.evaluate().unwrap() else {
            panic!("wrong response kind");
        };
        // Every section must be name-sorted — the deterministic-shape
        // contract the trace checker and goldens rely on.
        assert!(report.work.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(report.diag.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(report.gauges.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(report.latency.windows(2).all(|w| w[0].name <= w[1].name));
        // Evaluating the stats query itself bumps model.queries, so the
        // work section is never empty.
        assert!(report.work.iter().any(|(k, _)| k == "model.queries"));
        let text = QueryResponse::ServerStats(report).to_json().write();
        assert!(
            text.starts_with("{\"kind\":\"server_stats\",\"work\":{"),
            "{text}"
        );
        assert!(text.contains("\"diag\":{"), "{text}");
        assert!(text.contains("\"gauges\":{"), "{text}");
        assert!(text.contains("\"latency\":{"), "{text}");
    }

    #[test]
    fn chiplet_sweep_matches_direct_evaluation_and_pins_the_optimum() {
        let q = Query::ChipletPartitionSweep {
            transistors: 2.0e6,
            volume: 50_000,
            lambda_min: 0.5,
            lambda_max: 1.2,
            lambda_steps: 15,
            max_chiplets: 8,
            max_spares: 1,
        };
        let QueryResponse::ChipletSweep(report) = q.evaluate().unwrap() else {
            panic!("wrong kind");
        };
        // Bit-identical to the chiplet crate's direct sweep.
        let params = maly_chiplet::ChipletParameters::fig8_mcm();
        let spec = maly_chiplet::SweepSpec {
            system_transistors: TransistorCount::new(2.0e6).unwrap(),
            volume: 50_000,
            lambda_min: Microns::new(0.5).unwrap(),
            lambda_max: Microns::new(1.2).unwrap(),
            lambda_steps: 15,
            max_chiplets: 8,
            max_spares: 1,
        };
        let direct = params.sweep(&spec, &Executor::from_env()).unwrap();
        assert_eq!(report.evaluated, direct.evaluated);
        assert_eq!(report.feasible, direct.feasible);
        assert_eq!(
            report.best.cost_per_system.to_bits(),
            direct.best.cost_per_system.value().to_bits()
        );
        // The reference-point golden: 2M transistors at 50k volume
        // partition into 4 chiplets with no spares at λ = 1.2 µm.
        assert_eq!((report.best.chiplets, report.best.spares), (4, 0));
        assert!((report.best.lambda_um - 1.2).abs() < 1e-12);
        assert!((report.best.cost_per_system - 64.950_204_570_179).abs() < 1e-6);
        assert_eq!(report.per_chiplet_count.len(), 8);
    }

    #[test]
    fn chiplet_queries_validate_their_shape() {
        let base = Query::ChipletCost {
            transistors: 2.0e6,
            lambda_um: 0.9,
            chiplets: 0,
            spares: 0,
            volume: 1,
        };
        assert!(matches!(base.evaluate(), Err(Error::InvalidField { .. })));
        let q = Query::ChipletPartitionSweep {
            transistors: 2.0e6,
            volume: 50_000,
            lambda_min: 0.5,
            lambda_max: 1.2,
            lambda_steps: MAX_SWEEP_STEPS,
            max_chiplets: 8,
            max_spares: 1,
        };
        // 100k λ steps × 8 chiplets × 2 spares overflows the grid cap.
        assert!(matches!(q.evaluate(), Err(Error::InvalidField { .. })));
        let q = Query::ChipletCost {
            transistors: 2.0e6,
            lambda_um: 0.9,
            chiplets: 4,
            spares: MAX_SPARES + 1,
            volume: 1,
        };
        assert!(matches!(q.evaluate(), Err(Error::InvalidField { .. })));
    }

    #[test]
    fn sweep_response_matches_direct_scenario_evaluation() {
        let q = Query::Scenario1Sweep {
            x: 1.4,
            lambda_min: 0.4,
            lambda_max: 1.0,
            steps: 7,
        };
        let QueryResponse::Sweep(points) = q.evaluate().unwrap() else {
            panic!("wrong kind");
        };
        let direct = Scenario1::fig6(1.4)
            .unwrap()
            .sweep(Microns::new(0.4).unwrap(), Microns::new(1.0).unwrap(), 7)
            .unwrap();
        assert_eq!(points.len(), direct.len());
        for (p, (l, c)) in points.iter().zip(&direct) {
            assert_eq!(p.lambda_um.to_bits(), l.to_bits());
            assert_eq!(p.cost_per_transistor.to_bits(), c.value().to_bits());
        }
    }
}
