//! Executes a compiled [`Plan`]: fused tile prefetch, deduplicated
//! query evaluation, per-slot scatter.
//!
//! Determinism contract: the planned path is bit-identical to
//! [`Query::evaluate_batch_unplanned`] at every executor width.
//! Three facts carry the proof:
//!
//! 1. **Per-cell independence.** `PlannedEq1` cells depend only on
//!    their own `(λ, N_tr)` bits (the PR 7 kernel contract), and cells
//!    only fuse when their axis values are *bit-equal*, so a fused
//!    evaluation produces exactly the bytes a per-tile
//!    `CostSurface::compute_with` would.
//! 2. **First-occurrence representatives.** Dedup (of queries and of
//!    tile nodes within the cache-key grain) keeps the first
//!    occurrence, matching what a sequential left-to-right evaluation
//!    of the batch against a shared context would cache and reuse.
//! 3. **Index-ordered scatter.** Unique queries run under the
//!    executor's index-ordered `map_indexed`, and answers fan back out
//!    through the slot map, so batch order never depends on thread
//!    interleaving.

use std::sync::Arc;

use maly_cost_model::surface::{self, CostSurface, PlannedEq1};
use maly_par::Executor;

use crate::context::{self, EvalContext};
use crate::error::Error;
use crate::plan::{self, Plan, TileNode};
use crate::query::{Query, QueryResponse};

/// Evaluates a batch through the plan IR. Semantics (per-element
/// errors, input order, counters visible to callers) match the
/// unplanned path; only the amount of grid work differs.
pub(crate) fn evaluate(
    exec: &Executor,
    ctx: &EvalContext,
    queries: &[Query],
) -> Vec<Result<QueryResponse, Error>> {
    let _span = maly_obs::span("model.plan").with_histogram(&context::PLAN_NS);
    let plan = Plan::compile(queries);
    plan::NODES_REQUESTED.add(plan.nodes_requested);
    let cold: Vec<&TileNode> = plan
        .tiles
        .iter()
        .filter(|t| !ctx.has_tile(&t.key))
        .collect();
    prefetch_fused(exec, ctx, &cold);
    // Unique queries evaluate through the ordinary per-query path —
    // tile queries now hit the entries the prefetch warmed.
    let answers = exec.map_indexed(plan.unique.len(), |u| {
        plan.unique[u].evaluate_with(exec, ctx)
    });
    let single_nodes = plan
        .unique
        .iter()
        .filter(|q| q.tile_request().is_none())
        .count() as u64;
    plan::NODES_EVALUATED.add(single_nodes);
    let duplicates = plan.duplicate_queries();
    if duplicates == 0 {
        // No fan-out: `slots` is the identity map and the answers are
        // already in request order — return them without cloning.
        return answers;
    }
    // A deduped duplicate is still an answered query: the
    // model.queries ledger must equal responses produced whether or
    // not the planner elided the work.
    context::QUERIES.add(duplicates);
    plan::DEDUPED_QUERIES.add(duplicates);
    plan.slots.iter().map(|&u| answers[u].clone()).collect()
}

/// Materializes every cold tile node in one fused kernel dispatch:
/// union the tiles' axis values, evaluate each bit-unique `(λ, N_tr)`
/// cell exactly once, scatter per-tile grids back out, and insert them
/// as ordinary cold cache entries.
fn prefetch_fused(exec: &Executor, ctx: &EvalContext, cold: &[&TileNode]) {
    if cold.is_empty() {
        return;
    }
    // Per-tile axes from the same arithmetic as the compute path —
    // bit-equality below is meaningful only because of that. Tile
    // nodes are unique as pairs, but single axis ranges repeat (a
    // sliding λ window usually shares one `N_tr` range), so each
    // distinct range computes its axis once; the log-spaced `N_tr`
    // axis costs one `exp` per point.
    let range_key = |(lo, hi, steps): (f64, f64, usize)| (lo.to_bits(), hi.to_bits(), steps);
    let mut l_cache: Vec<((u64, u64, usize), Vec<f64>)> = Vec::new();
    let mut n_cache: Vec<((u64, u64, usize), Vec<f64>)> = Vec::new();
    let mut axis_from = |cache_is_lambda: bool, range: (f64, f64, usize)| -> Option<Vec<f64>> {
        let (cache, compute): (_, fn((f64, f64, usize)) -> Option<Vec<f64>>) = if cache_is_lambda {
            (&mut l_cache, surface::lambda_axis_values)
        } else {
            (&mut n_cache, surface::n_tr_axis_values)
        };
        let key = range_key(range);
        if let Some((_, v)) = cache.iter().find(|(k, _)| *k == key) {
            return Some(v.clone());
        }
        let v = compute(range)?;
        cache.push((key, v.clone()));
        Some(v)
    };
    let mut planned: Vec<&TileNode> = Vec::with_capacity(cold.len());
    let mut axes: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(cold.len());
    for t in cold {
        let Some(l_axis) = axis_from(true, t.lambda_range) else {
            continue;
        };
        let Some(n_axis) = axis_from(false, t.n_tr_range) else {
            continue;
        };
        planned.push(t);
        axes.push((l_axis, n_axis));
    }
    let params = &context::shared().fig8_params;
    // Unions over the *distinct* axes (the caches), not per tile — a
    // shared range contributes its values once.
    let sorted_union = |cache: &[((u64, u64, usize), Vec<f64>)]| {
        let mut union: Vec<f64> = cache.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        // Unstable sort: bit-equal keys are indistinguishable and
        // everything else is strictly ordered by `total_cmp`, so
        // instability cannot change the deduped result.
        union.sort_unstable_by(f64::total_cmp);
        union.dedup_by(|a, b| a.to_bits() == b.to_bits());
        union
    };
    let lambda_union = sorted_union(&l_cache);
    let n_tr_union = sorted_union(&n_cache);
    // Bit-exact rank into a sorted, bit-deduped union: `total_cmp`
    // orders distinct bit patterns distinctly, so a hit is the entry
    // carrying exactly `v`'s bits, and every tile axis value is in its
    // union by construction. Binary search plus the dense slot grid
    // below keep planning overhead in index arithmetic — hashing every
    // cell would cost more than the fused dispatch saves. An axis as
    // long as its union *is* the union (sorted, every value a member),
    // so its ranks are the identity without searching.
    let rank = |vals: &[f64], v: f64| vals.binary_search_by(|probe| probe.total_cmp(&v)).ok();
    let ranks_into = |vals: &[f64], union: &[f64]| -> Option<Vec<usize>> {
        if vals.len() == union.len() {
            return Some((0..vals.len()).collect());
        }
        vals.iter().map(|&v| rank(union, v)).collect()
    };
    let tile_idx: Vec<(Vec<usize>, Vec<usize>)> = axes
        .iter()
        .map(|(l_axis, n_axis)| {
            let l = ranks_into(l_axis, &lambda_union);
            let n = ranks_into(n_axis, &n_tr_union);
            (l.unwrap_or_default(), n.unwrap_or_default())
        })
        .collect();
    // When every tile spans the full `N_tr` union — the sliding-λ-
    // window shape batched sweeps produce — the union grid is fully
    // covered: each union row comes from some tile's λ axis, and that
    // tile pairs it with every column. The dispatch is then the whole
    // grid row-major with identity slots, and the per-cell discovery
    // loop (the planner's single largest fixed cost) is skipped
    // entirely. Cell order is irrelevant to the output bits — per-cell
    // independence again — it only has to be deterministic, and both
    // orders are.
    const UNPLANNED: usize = usize::MAX;
    let n_cols = n_tr_union.len();
    let full_grid = tile_idx.iter().all(|(_, n_idx)| n_idx.len() == n_cols);
    let (cells, slot): (Vec<(usize, usize)>, Vec<usize>) = if full_grid {
        let cells = (0..lambda_union.len())
            .flat_map(|ri| (0..n_cols).map(move |ci| (ri, ci)))
            .collect();
        (cells, Vec::new())
    } else {
        // General case: first-occurrence unique cell list over the
        // union grid; `slot` maps a union cell to its position in the
        // fused dispatch.
        let mut slot = vec![UNPLANNED; lambda_union.len() * n_cols];
        let mut cells: Vec<(usize, usize)> = Vec::with_capacity(slot.len());
        for (l_idx, n_idx) in &tile_idx {
            for &ri in l_idx {
                for &ci in n_idx {
                    let k = ri * n_cols + ci;
                    if slot[k] == UNPLANNED {
                        slot[k] = cells.len();
                        cells.push((ri, ci));
                    }
                }
            }
        }
        (cells, slot)
    };
    if let Some(kernel) = PlannedEq1::new(params, &lambda_union, &n_tr_union) {
        plan::NODES_EVALUATED.add(cells.len() as u64);
        plan::FUSED_DISPATCHES.incr();
        let values = kernel.eval_cells_with(exec, &cells);
        for ((t, (l_axis, n_axis)), (l_idx, n_idx)) in planned.iter().zip(&axes).zip(&tile_idx) {
            if l_idx.len() != l_axis.len() || n_idx.len() != n_axis.len() {
                continue; // unreachable: union ranks cover every tile value
            }
            let grid: Vec<Vec<Option<f64>>> = if full_grid {
                // Row-major dispatch means each tile row is one
                // contiguous slice of `values`.
                l_idx
                    .iter()
                    .map(|&ri| values[ri * n_cols..(ri + 1) * n_cols].to_vec())
                    .collect()
            } else {
                l_idx
                    .iter()
                    .map(|&ri| {
                        n_idx
                            .iter()
                            .map(|&ci| values[slot[ri * n_cols + ci]])
                            .collect()
                    })
                    .collect()
            };
            if let Some(tile) = surface::surface_from_grid(l_axis.clone(), n_axis.clone(), grid) {
                ctx.insert_cold_tile(t.key, tile_cells(t), &Arc::new(tile));
            }
        }
    } else {
        // This calibration has no batched eq. (1) kernel (exotic
        // dies-per-wafer method): materialize each unique node set
        // directly — still once per node, so dedup savings survive.
        for t in &planned {
            plan::NODES_EVALUATED.add(tile_cells(t));
            let tile = Arc::new(CostSurface::compute_with(
                exec,
                params,
                t.lambda_range,
                t.n_tr_range,
            ));
            ctx.insert_cold_tile(t.key, tile_cells(t), &tile);
        }
    }
}

fn tile_cells(t: &TileNode) -> u64 {
    (t.lambda_range.2 * t.n_tr_range.2) as u64
}
