//! A minimal, std-only JSON value: recursive-descent parser and
//! deterministic writer.
//!
//! The workspace is intentionally dependency-free, so the wire format
//! of the query API is implemented here rather than pulled from a
//! crates.io parser. The subset is full JSON with two deliberate
//! choices:
//!
//! * numbers are `f64` (the model is an `f64` calculation end to end;
//!   integers up to 2⁵³ round-trip exactly);
//! * objects preserve insertion order (`Vec<(String, Json)>`), so a
//!   response serializes identically on every run and at every thread
//!   count — the loopback determinism tests compare raw bytes.
//!
//! Writing uses Rust's shortest-round-trip `f64` formatting: the
//! parsed value is bit-identical to the written one, which is what
//! lets a served response be compared bit-for-bit against a direct
//! library evaluation. Non-finite numbers have no JSON spelling and
//! serialize as `null`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to compact JSON (no whitespace), deterministically.
    #[must_use]
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation: parsing it
                    // back yields the same bits.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a JSON string literal with the mandatory escapes.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Trailing non-whitespace is an error —
/// the wire protocol is strictly one value per line.
///
/// # Errors
///
/// Returns a message describing the first syntax error, with its byte
/// offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Nesting depth bound: a malicious request cannot blow the stack of a
/// server worker thread.
const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller guarantees bytes[*pos] == b'"'.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogates and other unpaired code points fold
                        // to the replacement character; the protocol
                        // never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest).map_err(|_| "non-utf8 string")?;
                let ch = text.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-1.5", "1e3", "\"hi\""] {
            let v = parse(text).unwrap();
            let back = parse(&v.write()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.1, 1.0 / 3.0, 9.4e-6, f64::MAX, 5e-324] {
            let text = Json::Num(v).write();
            let Json::Num(back) = parse(&text).unwrap() else {
                panic!("not a number: {text}");
            };
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = parse("{\"b\":1,\"a\":2}").unwrap();
        assert_eq!(v.write(), "{\"b\":1,\"a\":2}");
        assert_eq!(v.get("a"), Some(&Json::Num(2.0)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(" [1, {\"k\": [true, null]}, \"s\"] ").unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t unicode µ";
        let text = Json::Str(original.to_string()).write();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"k\" 1}", "tru", "1.2.3", "[1] x", "nan"] {
            assert!(parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).write(), "null");
        assert_eq!(Json::Num(f64::INFINITY).write(), "null");
    }
}
