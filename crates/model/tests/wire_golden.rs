//! Wire-codec byte goldens: one pinned serialization per [`Query`] and
//! [`QueryResponse`] variant.
//!
//! The wire format is a compatibility surface — deployed clients parse
//! these exact bytes, and the versioned envelope (`"v": 1`) promises
//! that version 1 bytes never change shape silently. Any diff here is
//! a wire-format change and must be intentional: either bump the
//! protocol version or fix the regression.
//!
//! The `all_variants_are_pinned` matches have no wildcard arm, so
//! adding a `Query`/`QueryResponse` variant fails compilation until a
//! golden is added here.

use maly_model::json;
use maly_model::query::{
    ChipletReport, ChipletSweepReport, LatencyReport, McSummary, MixReport, OptimalReport,
    ProductReport, ProductSpec, Query, QueryResponse, RoadmapRow, StatsReport, SurfaceReport,
    SweepPoint, Table3Report,
};

fn spec() -> ProductSpec {
    ProductSpec {
        name: "golden µP".to_string(),
        transistors: 3.1e6,
        lambda_um: 0.8,
        density: 150.0,
        radius_cm: 7.5,
        yield0: 0.9,
        c0: 700.0,
        x: 1.4,
    }
}

fn chiplet_report() -> ChipletReport {
    ChipletReport {
        chiplets: 4,
        spares: 1,
        lambda_um: 1.0,
        transistors_per_chiplet: 5.0e5,
        known_good_die_cost: 6.25,
        assembly_yield: 0.960_596_01,
        system_yield: 0.956_75,
        packaging_cost: 23.0,
        nre_per_system: 7.0,
        cost_per_system: 65.25,
    }
}

/// Every `Query` variant with fixed field values, in declaration
/// order, paired with its pinned wire bytes.
fn query_goldens() -> Vec<(Query, &'static str)> {
    vec![
        (
            Query::Product(spec()),
            "{\"type\":\"product\",\"name\":\"golden µP\",\"transistors\":3100000,\"lambda_um\":0.8,\"density\":150,\"radius_cm\":7.5,\"yield0\":0.9,\"c0\":700,\"x\":1.4}",
        ),
        (
            Query::Table3Row { id: 13 },
            "{\"type\":\"table3_row\",\"id\":13}",
        ),
        (Query::Table3, "{\"type\":\"table3\"}"),
        (
            Query::Scenario1Sweep {
                x: 1.4,
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 11,
            },
            "{\"type\":\"scenario1_sweep\",\"x\":1.4,\"lambda_min\":0.3,\"lambda_max\":1.2,\"steps\":11}",
        ),
        (
            Query::Scenario2Sweep {
                x: 2.4,
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 11,
            },
            "{\"type\":\"scenario2_sweep\",\"x\":2.4,\"lambda_min\":0.3,\"lambda_max\":1.2,\"steps\":11}",
        ),
        (
            Query::SurfaceTile {
                lambda_min: 0.4,
                lambda_max: 1.5,
                lambda_steps: 8,
                n_tr_min: 2.0e4,
                n_tr_max: 4.0e6,
                n_tr_steps: 6,
            },
            "{\"type\":\"surface_tile\",\"lambda_min\":0.4,\"lambda_max\":1.5,\"lambda_steps\":8,\"n_tr_min\":20000,\"n_tr_max\":4000000,\"n_tr_steps\":6}",
        ),
        (
            Query::OptimalLambda {
                spec: spec(),
                lambda_min: 0.3,
                lambda_max: 1.2,
                steps: 21,
            },
            "{\"type\":\"optimal_lambda\",\"name\":\"golden µP\",\"transistors\":3100000,\"lambda_um\":0.8,\"density\":150,\"radius_cm\":7.5,\"yield0\":0.9,\"c0\":700,\"x\":1.4,\"lambda_min\":0.3,\"lambda_max\":1.2,\"steps\":21}",
        ),
        (
            Query::McYield {
                products: 2,
                volume_each: 1_000.0,
                replications: 10,
                jitter: 0.3,
                seed: 7,
            },
            "{\"type\":\"mc_yield\",\"products\":2,\"volume_each\":1000,\"replications\":10,\"jitter\":0.3,\"seed\":7}",
        ),
        (
            Query::Roadmap {
                from: 1990,
                to: 1994,
            },
            "{\"type\":\"roadmap\",\"from\":1990,\"to\":1994}",
        ),
        (
            Query::ProductMix {
                products: 4,
                volume_each: 1_000.0,
                mono_volume: 50_000.0,
            },
            "{\"type\":\"product_mix\",\"products\":4,\"volume_each\":1000,\"mono_volume\":50000}",
        ),
        (Query::ServerStats, "{\"type\":\"server_stats\"}"),
        (
            Query::ChipletCost {
                transistors: 2.0e6,
                lambda_um: 1.0,
                chiplets: 4,
                spares: 1,
                volume: 50_000,
            },
            "{\"type\":\"chiplet_cost\",\"transistors\":2000000,\"lambda_um\":1,\"chiplets\":4,\"spares\":1,\"volume\":50000}",
        ),
        (
            Query::ChipletPartitionSweep {
                transistors: 2.0e6,
                volume: 50_000,
                lambda_min: 0.5,
                lambda_max: 1.2,
                lambda_steps: 15,
                max_chiplets: 8,
                max_spares: 1,
            },
            "{\"type\":\"chiplet_partition_sweep\",\"transistors\":2000000,\"volume\":50000,\"lambda_min\":0.5,\"lambda_max\":1.2,\"lambda_steps\":15,\"max_chiplets\":8,\"max_spares\":1}",
        ),
    ]
}

/// Every `QueryResponse` variant with fixed field values, in
/// declaration order, paired with its pinned wire bytes.
fn response_goldens() -> Vec<(QueryResponse, &'static str)> {
    vec![
        (
            QueryResponse::Product(ProductReport {
                name: "golden µP".to_string(),
                die_area_cm2: 2.976,
                wafer_cost: 1_780.5,
                dies_per_wafer: 46,
                die_yield: 0.125,
                good_dies_per_wafer: 5.75,
                cost_per_good_die: 309.65,
                cost_per_transistor_micro: 9.4,
            }),
            "{\"kind\":\"product\",\"name\":\"golden µP\",\"die_area_cm2\":2.976,\"wafer_cost\":1780.5,\"dies_per_wafer\":46,\"die_yield\":0.125,\"good_dies_per_wafer\":5.75,\"cost_per_good_die\":309.65,\"cost_per_transistor_micro\":9.4}",
        ),
        (
            QueryResponse::Table3(vec![Table3Report {
                id: 1,
                name: "BiCMOS µP".to_string(),
                paper_micro_dollars: 9.4,
                model_micro_dollars: 9.398,
            }]),
            "{\"kind\":\"table3\",\"rows\":[{\"id\":1,\"name\":\"BiCMOS µP\",\"paper_micro_dollars\":9.4,\"model_micro_dollars\":9.398}]}",
        ),
        (
            QueryResponse::Sweep(vec![
                SweepPoint {
                    lambda_um: 0.5,
                    cost_per_transistor: 1.25e-5,
                },
                SweepPoint {
                    lambda_um: 0.8,
                    cost_per_transistor: 9.4e-6,
                },
            ]),
            "{\"kind\":\"sweep\",\"points\":[[0.5,0.0000125],[0.8,0.0000094]]}",
        ),
        (
            QueryResponse::Surface(SurfaceReport {
                lambda_axis: vec![0.5, 1.0],
                n_tr_axis: vec![1.0e5, 2.0e5],
                values: vec![vec![Some(1.5e-5), None], vec![Some(2.5e-5), Some(3.5e-5)]],
                optimal_lambda_per_n_tr: vec![Some((0.5, 1.5e-5)), None],
                global_minimum: Some((0.5, 1.0e5, 1.5e-5)),
            }),
            "{\"kind\":\"surface\",\"lambda_axis\":[0.5,1],\"n_tr_axis\":[100000,200000],\"values\":[[0.000015,null],[0.000025,0.000035]],\"optimal_lambda_per_n_tr\":[[0.5,0.000015],null],\"global_minimum\":[0.5,100000,0.000015]}",
        ),
        (
            QueryResponse::OptimalLambda(Some(OptimalReport {
                lambda_um: 0.65,
                cost_per_transistor: 8.2e-6,
            })),
            "{\"kind\":\"optimal_lambda\",\"best\":{\"lambda_um\":0.65,\"cost_per_transistor\":0.0000082}}",
        ),
        (
            QueryResponse::Mc(McSummary {
                replications: 10,
                mean_wafer_cost: 2_150.25,
                min_wafer_cost: 1_900.5,
                max_wafer_cost: 2_400.75,
                mean_utilization: 0.85,
                cost_spread: 1.263,
            }),
            "{\"kind\":\"mc\",\"replications\":10,\"mean_wafer_cost\":2150.25,\"min_wafer_cost\":1900.5,\"max_wafer_cost\":2400.75,\"mean_utilization\":0.85,\"cost_spread\":1.263}",
        ),
        (
            QueryResponse::Roadmap(vec![RoadmapRow {
                year: 1994.0,
                lambda_um: 0.5,
                optimistic_micro: 1.8,
                realistic_micro: 3.6,
            }]),
            "{\"kind\":\"roadmap\",\"rows\":[{\"year\":1994,\"lambda_um\":0.5,\"optimistic_micro\":1.8,\"realistic_micro\":3.6}]}",
        ),
        (
            QueryResponse::ProductMix(MixReport {
                mono_cost: 1_000.0,
                multi_cost: 6_800.0,
                cost_ratio: 6.8,
                mono_utilization: 0.9,
                multi_utilization: 0.35,
            }),
            "{\"kind\":\"product_mix\",\"mono_cost\":1000,\"multi_cost\":6800,\"cost_ratio\":6.8,\"mono_utilization\":0.9,\"multi_utilization\":0.35}",
        ),
        (
            QueryResponse::ServerStats(StatsReport {
                work: vec![("model.queries".to_string(), 12)],
                diag: vec![("plan.deduped_queries".to_string(), 3)],
                gauges: vec![("serve.queue_depth".to_string(), -1)],
                latency: vec![LatencyReport {
                    name: "serve.request_ns".to_string(),
                    count: 4,
                    mean_ns: 1_500.0,
                    p50_ns: 1_200.0,
                    p90_ns: 2_000.0,
                    p99_ns: 2_400.0,
                    p999_ns: 2_450.0,
                }],
            }),
            "{\"kind\":\"server_stats\",\"work\":{\"model.queries\":12},\"diag\":{\"plan.deduped_queries\":3},\"gauges\":{\"serve.queue_depth\":-1},\"latency\":{\"serve.request_ns\":{\"count\":4,\"mean_ns\":1500,\"p50_ns\":1200,\"p90_ns\":2000,\"p99_ns\":2400,\"p999_ns\":2450}}}",
        ),
        (
            QueryResponse::Chiplet(chiplet_report()),
            "{\"kind\":\"chiplet\",\"chiplets\":4,\"spares\":1,\"lambda_um\":1,\"transistors_per_chiplet\":500000,\"known_good_die_cost\":6.25,\"assembly_yield\":0.96059601,\"system_yield\":0.95675,\"packaging_cost\":23,\"nre_per_system\":7,\"cost_per_system\":65.25}",
        ),
        (
            QueryResponse::ChipletSweep(ChipletSweepReport {
                evaluated: 240,
                feasible: 240,
                best: chiplet_report(),
                per_chiplet_count: vec![chiplet_report()],
            }),
            "{\"kind\":\"chiplet_sweep\",\"evaluated\":240,\"feasible\":240,\"best\":{\"chiplets\":4,\"spares\":1,\"lambda_um\":1,\"transistors_per_chiplet\":500000,\"known_good_die_cost\":6.25,\"assembly_yield\":0.96059601,\"system_yield\":0.95675,\"packaging_cost\":23,\"nre_per_system\":7,\"cost_per_system\":65.25},\"per_chiplet_count\":[{\"chiplets\":4,\"spares\":1,\"lambda_um\":1,\"transistors_per_chiplet\":500000,\"known_good_die_cost\":6.25,\"assembly_yield\":0.96059601,\"system_yield\":0.95675,\"packaging_cost\":23,\"nre_per_system\":7,\"cost_per_system\":65.25}]}",
        ),
    ]
}

/// Compile-time exhaustiveness: adding a variant to either enum breaks
/// these matches (no wildcard arm), forcing a golden to be added above.
fn query_variant_index(q: &Query) -> usize {
    match q {
        Query::Product(_) => 0,
        Query::Table3Row { .. } => 1,
        Query::Table3 => 2,
        Query::Scenario1Sweep { .. } => 3,
        Query::Scenario2Sweep { .. } => 4,
        Query::SurfaceTile { .. } => 5,
        Query::OptimalLambda { .. } => 6,
        Query::McYield { .. } => 7,
        Query::Roadmap { .. } => 8,
        Query::ProductMix { .. } => 9,
        Query::ServerStats => 10,
        Query::ChipletCost { .. } => 11,
        Query::ChipletPartitionSweep { .. } => 12,
    }
}

fn response_variant_index(r: &QueryResponse) -> usize {
    match r {
        QueryResponse::Product(_) => 0,
        QueryResponse::Table3(_) => 1,
        QueryResponse::Sweep(_) => 2,
        QueryResponse::Surface(_) => 3,
        QueryResponse::OptimalLambda(_) => 4,
        QueryResponse::Mc(_) => 5,
        QueryResponse::Roadmap(_) => 6,
        QueryResponse::ProductMix(_) => 7,
        QueryResponse::ServerStats(_) => 8,
        QueryResponse::Chiplet(_) => 9,
        QueryResponse::ChipletSweep(_) => 10,
    }
}

#[test]
fn every_query_variant_serializes_to_its_pinned_bytes() {
    let goldens = query_goldens();
    // One golden per variant, in declaration order.
    for (i, (q, _)) in goldens.iter().enumerate() {
        assert_eq!(query_variant_index(q), i, "goldens out of order at {i}");
    }
    for (q, expected) in &goldens {
        assert_eq!(&q.to_json().write(), expected, "wire bytes for {q:?}");
    }
}

#[test]
fn every_query_golden_parses_back_to_its_query() {
    for (q, expected) in &query_goldens() {
        let parsed = json::parse(expected).expect("golden bytes parse as JSON");
        assert_eq!(
            &Query::from_json(&parsed).expect("golden bytes decode"),
            q,
            "round trip for {expected}"
        );
    }
}

#[test]
fn every_response_variant_serializes_to_its_pinned_bytes() {
    let goldens = response_goldens();
    for (i, (r, _)) in goldens.iter().enumerate() {
        assert_eq!(response_variant_index(r), i, "goldens out of order at {i}");
    }
    for (r, expected) in &goldens {
        assert_eq!(&r.to_json().write(), expected, "wire bytes for {r:?}");
    }
}
