//! The batch planner's two contracts, checked from counters and bytes:
//!
//! * **Fusion saves real work.** On a 4-tile overlapping surface batch
//!   the eq. (1) cell counter drops ≥ 40% vs the unplanned path, and
//!   `plan.nodes_evaluated` stays under 0.6× `plan.nodes_requested` —
//!   the ISSUE 8 acceptance numbers, proven from Work counters rather
//!   than wall clock.
//! * **Fusion changes no bytes.** Randomized batches (overlapping
//!   tiles, float-noise near-duplicates, exact duplicates, non-tile
//!   queries) answer bit-identically to sequential per-query
//!   evaluation, at 1, 2, and 8 executor threads.
//!
//! The workspace builds offline with no external crates, so the
//! property runs over deterministic SplitMix64 samples.

use std::sync::{Mutex, MutexGuard, PoisonError};

use maly_cost_model::surface::EQ1_CELLS;
use maly_model::plan;
use maly_model::query::ProductSpec;
use maly_model::{EvalContext, Query};
use maly_par::Executor;

/// Counters are process-global; serialize the tests in this binary.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Four λ windows sliding by half a window over a shared `N_tr` range.
/// The endpoints are dyadic rationals, so the 9-step linear axes land
/// on bit-identical λ = k/16 grid values: 36 requested rows collapse
/// to 15 unique, and 4·9·24 = 864 requested cells to 15·24 = 360.
fn overlapping_tiles() -> Vec<Query> {
    [0.5, 0.625, 0.75, 0.875]
        .iter()
        .map(|&lo| Query::SurfaceTile {
            lambda_min: lo,
            lambda_max: lo + 0.5,
            lambda_steps: 9,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 24,
        })
        .collect()
}

fn response_bytes(r: &Result<maly_model::QueryResponse, maly_model::Error>) -> String {
    match r {
        Ok(resp) => resp.to_json().write(),
        Err(e) => format!("err:{e:?}"),
    }
}

#[test]
fn fused_batch_saves_over_40_percent_of_eq1_work() {
    let _guard = lock();
    if !plan::enabled() {
        // The planner-off CI pass (MALY_PLAN=0) checks the fallback
        // path elsewhere; the fusion golden needs the planner.
        return;
    }
    // Building the process-wide context computes the 56×48 Fig 8
    // report surface; force it now so deltas below see only the batch.
    let _ = maly_model::shared();
    let batch = overlapping_tiles();
    let exec = Executor::serial();

    let cells0 = EQ1_CELLS.value();
    let unplanned = Query::evaluate_batch_unplanned(&exec, &EvalContext::new(), &batch);
    let unplanned_cells = EQ1_CELLS.value() - cells0;
    assert_eq!(unplanned_cells, 864, "4 cold tiles of 9×24 cells each");

    let cells1 = EQ1_CELLS.value();
    let (req0, eval0, disp0) = (
        plan::NODES_REQUESTED.value(),
        plan::NODES_EVALUATED.value(),
        plan::FUSED_DISPATCHES.value(),
    );
    let planned = Query::evaluate_batch(&exec, &EvalContext::new(), &batch);
    let planned_cells = EQ1_CELLS.value() - cells1;
    let requested = plan::NODES_REQUESTED.value() - req0;
    let evaluated = plan::NODES_EVALUATED.value() - eval0;

    assert_eq!(requested, 864);
    assert_eq!(evaluated, 360, "15 unique λ rows × 24 shared N_tr values");
    assert_eq!(planned_cells, 360, "the kernel ran exactly the plan");
    assert_eq!(plan::FUSED_DISPATCHES.value() - disp0, 1, "one dispatch");
    assert!(
        (evaluated as f64) < 0.6 * (requested as f64),
        "acceptance: nodes_evaluated {evaluated} must be < 0.6 × {requested}"
    );
    assert!(
        (planned_cells as f64) <= 0.6 * (unplanned_cells as f64),
        "eq1 work must drop ≥ 40%: {planned_cells} vs {unplanned_cells}"
    );

    assert_eq!(planned.len(), unplanned.len());
    for (p, u) in planned.iter().zip(&unplanned) {
        assert_eq!(response_bytes(p), response_bytes(u), "fusion changed bytes");
    }
}

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }
}

fn random_query(s: &mut Sampler) -> Query {
    match s.below(6) {
        0 | 1 => {
            // Overlapping dyadic windows — the fusion-friendly case.
            let lo = 0.5 + 0.125 * s.below(4) as f64;
            Query::SurfaceTile {
                lambda_min: lo,
                lambda_max: lo + 0.5,
                lambda_steps: 5 + 2 * s.below(3) as usize,
                n_tr_min: 2.0e4,
                n_tr_max: 4.0e6,
                n_tr_steps: 8,
            }
        }
        2 => {
            // Arbitrary window, sometimes float-noise-shifted within
            // the 1 nm cache-key grain.
            let lo = s.uniform(0.45, 0.9);
            let noise = if s.below(2) == 0 { 1.0e-10 } else { 0.0 };
            Query::SurfaceTile {
                lambda_min: lo + noise,
                lambda_max: lo + 0.4,
                lambda_steps: 6,
                n_tr_min: 1.0e5,
                n_tr_max: 2.0e6,
                n_tr_steps: 7,
            }
        }
        3 => Query::Product(ProductSpec {
            name: "prop".to_string(),
            transistors: s.uniform(1.0e5, 5.0e6),
            lambda_um: s.uniform(0.5, 1.2),
            density: 150.0,
            radius_cm: 7.5,
            yield0: 0.9,
            c0: 700.0,
            x: 1.4,
        }),
        4 => Query::Table3Row {
            id: 1 + s.below(17) as u8,
        },
        _ => Query::Scenario1Sweep {
            x: 1.4,
            lambda_min: 0.4,
            lambda_max: 1.0,
            steps: 5 + s.below(4) as usize,
        },
    }
}

#[test]
fn planned_batches_match_sequential_evaluation_at_1_2_8_threads() {
    let _guard = lock();
    let mut s = Sampler(0x5EED_0F00D);
    for round in 0..6u32 {
        let mut batch: Vec<Query> = (0..8).map(|_| random_query(&mut s)).collect();
        // Exact duplicates: copy a few batch-mates verbatim.
        for _ in 0..3 {
            let src = s.below(batch.len() as u64) as usize;
            batch.push(batch[src].clone());
        }
        // Reference: sequential left-to-right per-query evaluation on
        // one shared fresh context — what a naive client would do.
        let serial = Executor::serial();
        let ref_ctx = EvalContext::new();
        let reference: Vec<String> = batch
            .iter()
            .map(|q| response_bytes(&q.evaluate_with(&serial, &ref_ctx)))
            .collect();
        for threads in [1usize, 2, 8] {
            let got = Query::evaluate_batch(
                &Executor::with_threads(threads),
                &EvalContext::new(),
                &batch,
            );
            assert_eq!(got.len(), batch.len());
            for (i, r) in got.iter().enumerate() {
                assert_eq!(
                    response_bytes(r),
                    reference[i],
                    "round {round}, {threads} threads, slot {i}: {:?}",
                    batch[i]
                );
            }
        }
    }
}
