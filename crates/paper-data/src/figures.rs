//! Figure parameter sets as printed in the captions.

/// Fig 6 caption: "Cost per transistor computed for X = 1.1, 1.2 and
/// 1.3, respectively and C₀ = \$500, d_d = 30 and R_w = 7.5 cm."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Parameters {
    /// The three plotted escalation factors.
    pub x_values: [f64; 3],
    /// Reference wafer cost ($).
    pub c0: f64,
    /// Design density (λ²/tr) — DRAM-class.
    pub design_density: f64,
    /// Wafer radius (cm).
    pub wafer_radius_cm: f64,
    /// λ sweep range (µm), inferred from the plotted axis.
    pub lambda_range: (f64, f64),
}

/// The printed Fig 6 parameters.
#[must_use]
pub fn fig6() -> Fig6Parameters {
    Fig6Parameters {
        x_values: [1.1, 1.2, 1.3],
        c0: 500.0,
        design_density: 30.0,
        wafer_radius_cm: 7.5,
        lambda_range: (0.25, 1.0),
    }
}

/// Fig 7 caption: "Cost per transistor computed as a function of minimum
/// feature size (C₀ = \$500, d_d = 200 and R_w = 7.5 cm)", with
/// Scenario #2 assumptions: X ∈ [1.8, 2.4], Y₀ = 70% for a 1 cm² die,
/// `A_ch(λ) = 16.5·e^{−5.3λ}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Parameters {
    /// Plotted escalation factors (the S.2.1 range).
    pub x_values: [f64; 4],
    /// Reference wafer cost ($).
    pub c0: f64,
    /// Design density (λ²/tr) — custom-logic class.
    pub design_density: f64,
    /// Wafer radius (cm).
    pub wafer_radius_cm: f64,
    /// Reference yield for a 1 cm² die.
    pub reference_yield: f64,
    /// λ sweep range (µm).
    pub lambda_range: (f64, f64),
}

/// The printed Fig 7 parameters.
#[must_use]
pub fn fig7() -> Fig7Parameters {
    Fig7Parameters {
        x_values: [1.8, 2.0, 2.2, 2.4],
        c0: 500.0,
        design_density: 200.0,
        wafer_radius_cm: 7.5,
        reference_yield: 0.7,
        lambda_range: (0.25, 1.0),
    }
}

/// Fig 8 text: "X = 1.4, C₀ = \$500, R_w = 7.5 cm, d_d = 152, D = 1.72
/// and p = 4.07. (These values were extracted from a real manufacturing
/// operation \[26\].)"
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Parameters {
    /// Escalation factor.
    pub x: f64,
    /// Reference wafer cost ($).
    pub c0: f64,
    /// Wafer radius (cm).
    pub wafer_radius_cm: f64,
    /// Design density (λ²/tr).
    pub design_density: f64,
    /// Eq. (7) reference defect density.
    pub defect_d: f64,
    /// Eq. (7) defect size exponent.
    pub defect_p: f64,
    /// λ axis range (µm).
    pub lambda_range: (f64, f64),
    /// N_tr axis range.
    pub n_tr_range: (f64, f64),
}

/// The printed Fig 8 parameters.
#[must_use]
pub fn fig8() -> Fig8Parameters {
    Fig8Parameters {
        x: 1.4,
        c0: 500.0,
        wafer_radius_cm: 7.5,
        design_density: 152.0,
        defect_d: 1.72,
        defect_p: 4.07,
        lambda_range: (0.3, 1.5),
        n_tr_range: (1.0e5, 2.0e7),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captions_transcribed() {
        assert_eq!(fig6().x_values, [1.1, 1.2, 1.3]);
        assert_eq!(fig6().design_density, 30.0);
        assert_eq!(fig7().design_density, 200.0);
        assert_eq!(fig7().reference_yield, 0.7);
        assert_eq!(fig8().defect_d, 1.72);
        assert_eq!(fig8().defect_p, 4.07);
        assert_eq!(fig8().design_density, 152.0);
    }

    #[test]
    fn all_wafers_are_six_inch() {
        assert_eq!(fig6().wafer_radius_cm, 7.5);
        assert_eq!(fig7().wafer_radius_cm, 7.5);
        assert_eq!(fig8().wafer_radius_cm, 7.5);
    }
}
