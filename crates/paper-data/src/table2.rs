//! Table 2 — design densities for a spectrum of ICs \[23, 24\].
//!
//! Published die data from ISSCC 1991–93 and CICC 1989: feature size and
//! extracted density per product. The spread — 17.8 λ²/tr for a 16 Mb
//! SRAM to 2631 λ²/tr for a PLD — spans two orders of magnitude and
//! drives the two-orders-of-magnitude cost spread of Table 3.

/// Broad product category, for grouping and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcCategory {
    /// Microprocessors.
    Microprocessor,
    /// SRAM/DRAM memories.
    Memory,
    /// Gate arrays and sea-of-gates.
    GateArray,
    /// Programmable logic devices.
    Pld,
}

impl std::fmt::Display for IcCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IcCategory::Microprocessor => "microprocessor",
            IcCategory::Memory => "memory",
            IcCategory::GateArray => "gate array",
            IcCategory::Pld => "PLD",
        };
        f.write_str(s)
    }
}

/// One Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcDensityRow {
    /// Product description as printed.
    pub name: &'static str,
    /// Category.
    pub category: IcCategory,
    /// Feature size (µm).
    pub feature_size_um: f64,
    /// Printed density (λ²/tr).
    pub density: f64,
}

/// The printed rows.
#[must_use]
pub fn rows() -> Vec<IcDensityRow> {
    use IcCategory::*;
    vec![
        IcDensityRow {
            name: "µP, BiCMOS, 3M",
            category: Microprocessor,
            feature_size_um: 0.3,
            density: 907.95,
        },
        IcDensityRow {
            name: "µP, CMOS, 3M, Alpha 21064",
            category: Microprocessor,
            feature_size_um: 0.68,
            density: 250.13,
        },
        IcDensityRow {
            name: "µP, CMOS, 2M, R4400SC",
            category: Microprocessor,
            feature_size_um: 0.6,
            density: 224.64,
        },
        IcDensityRow {
            name: "µP, CMOS, 3M, PA7100",
            category: Microprocessor,
            feature_size_um: 0.8,
            density: 370.66,
        },
        IcDensityRow {
            name: "µP, BiCMOS, 3M, Pentium",
            category: Microprocessor,
            feature_size_um: 0.8,
            density: 149.11,
        },
        IcDensityRow {
            name: "µP, CMOS, 4M, PowerPC 601",
            category: Microprocessor,
            feature_size_um: 0.65,
            density: 102.28,
        },
        IcDensityRow {
            name: "µP, BiCMOS, 3M, 2P, SuperSparc",
            category: Microprocessor,
            feature_size_um: 0.7,
            density: 168.53,
        },
        IcDensityRow {
            name: "µP, CMOS, 2M, 68040",
            category: Microprocessor,
            feature_size_um: 0.65,
            density: 249.23,
        },
        IcDensityRow {
            name: "1Mb SRAM, 2M, 2P",
            category: Memory,
            feature_size_um: 0.35,
            density: 36.00,
        },
        IcDensityRow {
            name: "16Mb SRAM, 2M, 4P",
            category: Memory,
            feature_size_um: 0.25,
            density: 17.80,
        },
        IcDensityRow {
            name: "64Mb DRAM, 2M",
            category: Memory,
            feature_size_um: 0.4,
            density: 22.29,
        },
        IcDensityRow {
            name: "256Mb DRAM, 3M",
            category: Memory,
            feature_size_um: 0.25,
            density: 20.18,
        },
        IcDensityRow {
            name: "Gate array, 53Kg, BiCMOS, \"50%\"",
            category: GateArray,
            feature_size_um: 0.8,
            density: 507.66,
        },
        IcDensityRow {
            name: "Gate array, BiCMOS",
            category: GateArray,
            feature_size_um: 0.5,
            density: 403.20,
        },
        IcDensityRow {
            name: "SOG, 177Kg, 35–70%, CMOS, 3M",
            category: GateArray,
            feature_size_um: 0.8,
            density: 249.44,
        },
        IcDensityRow {
            name: "SOG, 235Kg, 70%, CMOS, 3M",
            category: GateArray,
            feature_size_um: 0.8,
            density: 117.19,
        },
        IcDensityRow {
            name: "PLD, 1.2Kg, EEPROM, 2M, 2P",
            category: Pld,
            feature_size_um: 0.8,
            density: 2631.04,
        },
    ]
}

/// Mean density of a category — the paper's qualitative ranking
/// (memory ≪ µP < gate array ≪ PLD).
#[must_use]
pub fn mean_density(category: IcCategory) -> f64 {
    let selected: Vec<f64> = rows()
        .into_iter()
        .filter(|r| r.category == category)
        .map(|r| r.density)
        .collect();
    selected.iter().sum::<f64>() / selected.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_rows_printed() {
        assert_eq!(rows().len(), 17);
    }

    #[test]
    fn density_extremes_match_paper() {
        let all = rows();
        let min = all.iter().map(|r| r.density).fold(f64::INFINITY, f64::min);
        let max = all.iter().map(|r| r.density).fold(0.0, f64::max);
        assert_eq!(min, 17.80); // 16 Mb SRAM
        assert_eq!(max, 2631.04); // PLD
        assert!(max / min > 100.0, "two orders of magnitude spread");
    }

    #[test]
    fn category_ranking_memory_up_ga_pld() {
        use IcCategory::*;
        let m = mean_density(Memory);
        let u = mean_density(Microprocessor);
        let g = mean_density(GateArray);
        let p = mean_density(Pld);
        assert!(m < u && u < g && g < p, "{m} {u} {g} {p}");
        assert!(u / m > 5.0, "µP at least 5× sparser than memory");
    }

    #[test]
    fn all_feature_sizes_are_early_90s_nodes() {
        for r in rows() {
            assert!((0.2..=1.0).contains(&r.feature_size_um), "{}", r.name);
        }
    }
}
