//! Datasets and paper-reported values from Maly, DAC 1994.
//!
//! Everything the paper *prints* lives here, typed: Table 1 (µP block
//! densities), Table 2 (density spectrum across IC types), Table 3 (the
//! 17-row cost diversity study, inputs and reported costs), and the
//! figure parameter sets. The reproduction harness compares model output
//! against these constants; nothing in this crate computes.
//!
//! # Examples
//!
//! ```
//! use maly_paper_data::table3;
//!
//! let rows = table3::rows();
//! assert_eq!(rows.len(), 17);
//! // Row 1 is the 9.40 µ$ BiCMOS µP.
//! assert_eq!(rows[0].paper_cost_micro_dollars, 9.40);
//! let scenario = rows[0].scenario().unwrap();
//! let cost = scenario.evaluate().unwrap().cost_per_transistor;
//! assert!((cost.to_micro_dollars().value() - 9.40).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod table1;
pub mod table2;
pub mod table3;
