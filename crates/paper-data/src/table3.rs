//! Table 3 — cost per transistor for 17 product/manufacturing scenarios.
//!
//! The paper's quantitative centerpiece: inputs (`N_tr`, λ, `d_d`, `R_w`,
//! `Y₀`, `C₀`, `X`) and the resulting `C_tr` in µ\$ for products ranging
//! from a 256 Mb DRAM (1.31 µ\$) to a small PLD (240 µ\$).
//!
//! Three rows' transistor counts are illegible in the scan (rows 4 and
//! 16) or ambiguous (row 15). For those, `transistors` carries the value
//! that *back-solves* the printed cost under the calibrated model —
//! flagged via [`Table3Row::count_provenance`]. Every other row's inputs
//! are printed verbatim, and the model reproduces the printed cost to
//! within print precision (the `reproduces_*` tests below).

use maly_cost_model::product::ProductScenario;
use maly_cost_model::CostError;
use maly_units::{Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount};

/// Where a row's transistor count came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountProvenance {
    /// Printed in the paper.
    Printed,
    /// Back-solved from the printed cost (scan illegible).
    Inferred,
}

/// One Table 3 row: the full input vector plus the printed result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Row number as printed (1-based).
    pub id: u8,
    /// Product description.
    pub name: &'static str,
    /// Transistor count `N_tr`.
    pub transistors: f64,
    /// Whether the count was printed or inferred.
    pub count_provenance: CountProvenance,
    /// Feature size λ (µm).
    pub feature_size_um: f64,
    /// Design density `d_d` (λ²/tr).
    pub design_density: f64,
    /// Wafer radius `R_w` (cm).
    pub wafer_radius_cm: f64,
    /// Reference yield `Y₀` (1 cm² die).
    pub reference_yield: f64,
    /// Reference wafer cost `C₀` ($).
    pub reference_cost: f64,
    /// Escalation factor `X`.
    pub escalation: f64,
    /// Printed cost per transistor (µ$).
    pub paper_cost_micro_dollars: f64,
}

impl Table3Row {
    /// Builds the executable scenario for this row.
    ///
    /// # Errors
    ///
    /// Propagates input validation (never fails for the printed rows).
    pub fn scenario(&self) -> Result<ProductScenario, CostError> {
        ProductScenario::builder(self.name)
            .transistors(TransistorCount::new(self.transistors)?)
            .feature_size(Microns::new(self.feature_size_um)?)
            .design_density(DesignDensity::new(self.design_density)?)
            .wafer_radius(Centimeters::new(self.wafer_radius_cm)?)
            .reference_yield(Probability::new(self.reference_yield)?)
            .reference_wafer_cost(Dollars::new(self.reference_cost)?)
            .cost_escalation(self.escalation)?
            .build()
    }
}

/// The 17 rows.
#[must_use]
pub fn rows() -> Vec<Table3Row> {
    use CountProvenance::*;
    let row = |id,
               name,
               transistors,
               count_provenance,
               feature_size_um,
               design_density,
               wafer_radius_cm,
               reference_yield,
               reference_cost,
               escalation,
               paper_cost_micro_dollars| Table3Row {
        id,
        name,
        transistors,
        count_provenance,
        feature_size_um,
        design_density,
        wafer_radius_cm,
        reference_yield,
        reference_cost,
        escalation,
        paper_cost_micro_dollars,
    };
    vec![
        row(
            1,
            "BiCMOS µP",
            3.1e6,
            Printed,
            0.8,
            150.0,
            7.5,
            0.9,
            700.0,
            1.4,
            9.40,
        ),
        row(
            2,
            "BiCMOS µP",
            3.1e6,
            Printed,
            0.8,
            150.0,
            7.5,
            0.7,
            700.0,
            1.8,
            25.50,
        ),
        row(
            3,
            "BiCMOS µP",
            3.1e6,
            Printed,
            0.8,
            150.0,
            7.5,
            0.6,
            700.0,
            2.2,
            49.30,
        ),
        row(
            4, "CMOS µP", 1.70e6, Inferred, 0.8, 190.0, 7.5, 0.7, 700.0, 1.8, 21.80,
        ),
        row(
            5, "CMOS µP", 0.85e6, Printed, 0.8, 370.0, 7.5, 0.7, 900.0, 1.8, 53.50,
        ),
        row(
            6,
            "BiCMOS µP",
            3.1e6,
            Printed,
            0.8,
            150.0,
            7.5,
            0.7,
            700.0,
            1.8,
            25.50,
        ),
        row(
            7, "CMOS µP", 2.8e6, Printed, 0.65, 102.0, 7.5, 0.7, 700.0, 1.8, 8.60,
        ),
        row(
            8,
            "BiCMOS µP",
            3.1e6,
            Printed,
            0.7,
            170.0,
            7.5,
            0.7,
            900.0,
            1.8,
            32.60,
        ),
        row(
            9, "CMOS µP", 1.2e6, Printed, 0.65, 250.0, 7.5, 0.7, 700.0, 1.8, 21.10,
        ),
        row(
            10,
            "BiCMOS VSP",
            0.91e6,
            Printed,
            0.8,
            400.0,
            7.5,
            0.7,
            1500.0,
            1.8,
            115.00,
        ),
        row(
            11,
            "SRAM, 1Mb",
            6.2e6,
            Printed,
            0.35,
            36.0,
            7.5,
            0.9,
            500.0,
            1.8,
            0.93,
        ),
        row(
            12,
            "DRAM, 4Mb",
            4.1e6,
            Printed,
            0.6,
            35.0,
            7.5,
            0.9,
            400.0,
            1.8,
            1.08,
        ),
        row(
            13,
            "DRAM, 256Mb",
            264.0e6,
            Printed,
            0.25,
            29.0,
            7.5,
            0.9,
            600.0,
            1.8,
            1.31,
        ),
        row(
            14,
            "DRAM, 256Mb",
            264.0e6,
            Printed,
            0.25,
            29.0,
            10.0,
            0.7,
            600.0,
            1.8,
            2.18,
        ),
        row(
            15,
            "G.A., 53kg",
            40.0e3,
            Printed,
            0.8,
            500.0,
            7.5,
            0.7,
            1200.0,
            1.8,
            43.10,
        ),
        row(
            16,
            "SOG, 177kg",
            1.40e6,
            Inferred,
            0.8,
            245.0,
            7.5,
            0.7,
            1200.0,
            1.8,
            51.10,
        ),
        row(
            17,
            "PLD, 1.2kg",
            7.2e3,
            Printed,
            0.8,
            2600.0,
            7.5,
            0.7,
            1300.0,
            1.8,
            240.00,
        ),
    ]
}

/// Relative tolerance for reproducing a printed cost: the paper prints
/// 3 significant figures, and intermediate values (die counts, yields)
/// were themselves rounded during its production.
pub const REPRODUCTION_TOLERANCE: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_rows() {
        assert_eq!(rows().len(), 17);
    }

    #[test]
    fn reproduces_every_printed_row() {
        for row in rows() {
            let cost = row
                .scenario()
                .unwrap()
                .evaluate()
                .unwrap()
                .cost_per_transistor
                .to_micro_dollars()
                .value();
            let rel = (cost - row.paper_cost_micro_dollars).abs() / row.paper_cost_micro_dollars;
            assert!(
                rel < REPRODUCTION_TOLERANCE,
                "row {} ({}): computed {cost:.2} vs printed {}",
                row.id,
                row.name,
                row.paper_cost_micro_dollars
            );
        }
    }

    #[test]
    fn printed_rows_reproduce_tightly() {
        // Rows with fully printed inputs should land within 1%.
        for row in rows() {
            if row.count_provenance == CountProvenance::Printed {
                let cost = row
                    .scenario()
                    .unwrap()
                    .evaluate()
                    .unwrap()
                    .cost_per_transistor
                    .to_micro_dollars()
                    .value();
                let rel =
                    (cost - row.paper_cost_micro_dollars).abs() / row.paper_cost_micro_dollars;
                assert!(
                    rel < 0.01,
                    "row {} ({}): computed {cost:.3} vs printed {} (rel {rel:.4})",
                    row.id,
                    row.name,
                    row.paper_cost_micro_dollars
                );
            }
        }
    }

    #[test]
    fn memory_is_the_cheapest_class() {
        let all = rows();
        let cheapest = all
            .iter()
            .min_by(|a, b| {
                a.paper_cost_micro_dollars
                    .total_cmp(&b.paper_cost_micro_dollars)
            })
            .unwrap();
        let dearest = all
            .iter()
            .max_by(|a, b| {
                a.paper_cost_micro_dollars
                    .total_cmp(&b.paper_cost_micro_dollars)
            })
            .unwrap();
        assert!(cheapest.name.contains("SRAM"));
        assert!(dearest.name.contains("PLD"));
        // "Possible gains are larger than one could anticipate":
        // 258× between the extremes.
        assert!(dearest.paper_cost_micro_dollars / cheapest.paper_cost_micro_dollars > 200.0);
    }

    #[test]
    fn rows_2_and_6_are_the_printed_duplicate() {
        let all = rows();
        let r2 = &all[1];
        let r6 = &all[5];
        assert_eq!(r2.paper_cost_micro_dollars, r6.paper_cost_micro_dollars);
        assert_eq!(r2.transistors, r6.transistors);
    }

    #[test]
    fn only_two_rows_are_inferred() {
        let inferred: Vec<u8> = rows()
            .iter()
            .filter(|r| r.count_provenance == CountProvenance::Inferred)
            .map(|r| r.id)
            .collect();
        assert_eq!(inferred, vec![4, 16]);
    }
}
