//! Table 1 — design densities of µP functional blocks \[22\].
//!
//! Measured from a three-million-transistor microprocessor (ISSCC 1993):
//! block area, transistor count, and the resulting density in λ²/tr at
//! the design's 0.8 µm feature size. The 10× spread between the I-cache
//! and the bus unit is the paper's evidence that density is a *design*
//! property, not a technology property.

/// Feature size at which Table 1's blocks were laid out (µm).
pub const TABLE1_LAMBDA_UM: f64 = 0.8;

/// One functional block row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionalBlock {
    /// Block name as printed.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Transistor count.
    pub transistors: f64,
    /// Paper-printed density (λ²/tr).
    pub paper_density: f64,
}

impl FunctionalBlock {
    /// Recomputes the density from area, count and λ — the check the
    /// reproduction harness runs against [`Self::paper_density`].
    #[must_use]
    pub fn derived_density(&self) -> f64 {
        let area_um2 = self.area_mm2 * 1.0e6;
        area_um2 / (self.transistors * TABLE1_LAMBDA_UM * TABLE1_LAMBDA_UM)
    }
}

/// The six printed rows.
#[must_use]
pub fn blocks() -> Vec<FunctionalBlock> {
    vec![
        FunctionalBlock {
            name: "I-cache",
            area_mm2: 33.2,
            transistors: 1.2e6,
            paper_density: 43.2,
        },
        FunctionalBlock {
            name: "D-cache",
            area_mm2: 35.7,
            transistors: 1.1e6,
            paper_density: 50.7,
        },
        FunctionalBlock {
            name: "F. point unit",
            area_mm2: 45.9,
            transistors: 323.0e3,
            paper_density: 222.3,
        },
        FunctionalBlock {
            name: "Integer unit",
            area_mm2: 38.3,
            transistors: 232.0e3,
            paper_density: 257.9,
        },
        FunctionalBlock {
            name: "MMU",
            area_mm2: 20.4,
            transistors: 118.0e3,
            paper_density: 270.5,
        },
        FunctionalBlock {
            name: "Bus unit",
            area_mm2: 12.7,
            transistors: 50.0e3,
            paper_density: 399.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_blocks_printed() {
        assert_eq!(blocks().len(), 6);
    }

    #[test]
    fn derived_densities_match_printed_within_rounding() {
        for block in blocks() {
            let derived = block.derived_density();
            let rel = (derived - block.paper_density).abs() / block.paper_density;
            assert!(
                rel < 0.01,
                "{}: derived {derived} vs printed {}",
                block.name,
                block.paper_density
            );
        }
    }

    #[test]
    fn caches_are_densest_and_bus_sparsest() {
        let b = blocks();
        let min = b
            .iter()
            .min_by(|a, c| a.paper_density.total_cmp(&c.paper_density))
            .unwrap();
        let max = b
            .iter()
            .max_by(|a, c| a.paper_density.total_cmp(&c.paper_density))
            .unwrap();
        assert_eq!(min.name, "I-cache");
        assert_eq!(max.name, "Bus unit");
        assert!(max.paper_density / min.paper_density > 9.0);
    }

    #[test]
    fn totals_are_a_three_million_transistor_chip() {
        let total: f64 = blocks().iter().map(|b| b.transistors).sum();
        assert!(total > 2.9e6 && total < 3.2e6, "total {total}");
    }
}
