//! maly-lanes — fixed-width f64 lane kernels for the batch hot paths.
//!
//! The sweep kernels (eq. (1) transistor cost, eq. (4) dies-per-wafer,
//! eq. (7)–(9) yields) process thousands of grid nodes per Fig 8
//! surface. This crate provides the shared lane vocabulary they build
//! on: operations over [`Lane`] = `[f64; WIDTH]` blocks plus slice
//! drivers that walk a buffer lane by lane and finish the odd tail with
//! the *same* per-element function, so results never depend on how a
//! slice was chunked.
//!
//! Two kinds of operation live here:
//!
//! - **Exact lane ops** (`add`, `mul`, `mul_add`, `sqrt`, `min`, …):
//!   elementwise IEEE-754 operations. Each lane element is the same
//!   correctly rounded operation the scalar code would perform, so lane
//!   and scalar results are bit-identical. `mul_add` is *fma-shaped*
//!   (one multiply then one add, each rounded) rather than a fused
//!   multiply-add — a hardware FMA would round once and change bits
//!   between targets, breaking the workspace determinism contract.
//! - **Polynomial transcendentals** (`exp`, `ln`, `pow` and their
//!   `*_s` scalar / `*_slice` drivers): branch-free argument-reduction
//!   + polynomial kernels evaluated identically on every platform.
//!   They are *not* bit-identical to `std`'s libm (which varies by
//!   platform anyway); the contract is a documented ulp bound instead:
//!   `exp` stays within 2 ulp and `ln` within 2 ulp of the correctly
//!   rounded result over the model's domain (pinned by the accuracy
//!   tests below at ≤ 4 ulp of this platform's libm, which is itself
//!   ≤ 1 ulp). Callers that need bit-exactness keep using the scalar
//!   reference path; callers on the lane path document the bound.
//!
//! The crate is std-only, dependency-free, `forbid(unsafe_code)`, and
//! has a panic budget of zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Number of f64 elements processed per lane block.
///
/// Four doubles are one 256-bit vector register (AVX2-class hardware)
/// and two 128-bit ones; the slice drivers below are written so the
/// compiler can keep a whole block in registers.
pub const WIDTH: usize = 4;

/// One fixed-width block of f64 values.
pub type Lane = [f64; WIDTH];

// ---------------------------------------------------------------------
// Exact elementwise lane ops (bit-identical to scalar)
// ---------------------------------------------------------------------

/// A lane with every element set to `x`.
#[must_use]
pub const fn splat(x: f64) -> Lane {
    [x; WIDTH]
}

/// Elementwise `a + b`.
#[must_use]
pub fn add(a: Lane, b: Lane) -> Lane {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
}

/// Elementwise `a * b`.
#[must_use]
pub fn mul(a: Lane, b: Lane) -> Lane {
    [a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]]
}

/// Elementwise fma-shaped `a * b + c`: one rounded multiply then one
/// rounded add (deliberately *not* a fused multiply-add — see the
/// crate docs for why).
#[must_use]
pub fn mul_add(a: Lane, b: Lane, c: Lane) -> Lane {
    [
        a[0] * b[0] + c[0],
        a[1] * b[1] + c[1],
        a[2] * b[2] + c[2],
        a[3] * b[3] + c[3],
    ]
}

/// Elementwise minimum (IEEE `f64::min`: propagates the non-NaN side).
#[must_use]
pub fn min(a: Lane, b: Lane) -> Lane {
    [
        a[0].min(b[0]),
        a[1].min(b[1]),
        a[2].min(b[2]),
        a[3].min(b[3]),
    ]
}

/// Elementwise maximum (IEEE `f64::max`).
#[must_use]
pub fn max(a: Lane, b: Lane) -> Lane {
    [
        a[0].max(b[0]),
        a[1].max(b[1]),
        a[2].max(b[2]),
        a[3].max(b[3]),
    ]
}

/// Elementwise square root. IEEE-754 `sqrt` is correctly rounded, so
/// each element is bit-identical to the scalar call.
#[must_use]
pub fn sqrt(a: Lane) -> Lane {
    [a[0].sqrt(), a[1].sqrt(), a[2].sqrt(), a[3].sqrt()]
}

/// Elementwise `a * x + b` over a slice, in place (the ln-space
/// "scale and shift" step: `ln D − p·ln λ` is `scale_add(lnλ, −p, lnD)`).
/// Exact per element: one rounded multiply, one rounded add.
pub fn scale_add_slice(xs: &mut [f64], a: f64, b: f64) {
    for x in xs {
        *x = *x * a + b;
    }
}

/// Elementwise `−(x · y)` over two slices, written into `xs` (the
/// eq. (7) exponent step: `−A · D/λ^p`). Trailing elements of the
/// longer slice are left untouched.
pub fn neg_mul_slice(xs: &mut [f64], ys: &[f64]) {
    for (x, y) in xs.iter_mut().zip(ys) {
        *x = -(*x * *y);
    }
}

// ---------------------------------------------------------------------
// Polynomial exp
// ---------------------------------------------------------------------

/// High bits of ln 2 (Cody–Waite split: `LN2_HI + LN2_LO` carries ~20
/// extra bits so `x − k·ln2` stays accurate for |k| up to ~1100).
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
/// Low bits of ln 2.
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// log2(e), for the exponent split `x = k·ln2 + r`.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// Above this, exp(x) overflows f64.
const EXP_OVERFLOW: f64 = 709.782_712_893_384;
/// Below this, exp(x) underflows to zero (even subnormally).
const EXP_UNDERFLOW: f64 = -745.2;

/// `2^e` for `e` in `[-1022, 1023]`, built from the exponent bits.
/// Exact (a power of two has an all-zero mantissa).
fn pow2(e: i64) -> f64 {
    // The callers below keep e in range by splitting the scaling in
    // two; the clamp is belt-and-braces, not a rounding step.
    let e = e.clamp(-1022, 1023);
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Scalar core of the polynomial exp: Cody–Waite reduction
/// `x = k·ln2 + r` with |r| ≤ ln2/2, a degree-13 Taylor kernel on `r`
/// (truncation error < 1e-17 relative), and an exact two-step `2^k`
/// scaling that handles the subnormal range. The arithmetic path is
/// branch-free; the guards only catch NaN/overflow/underflow inputs.
fn exp_core(x: f64) -> f64 {
    if !(x >= EXP_UNDERFLOW) {
        // NaN fails every comparison; tell it apart from deep underflow.
        return if x.is_nan() { f64::NAN } else { 0.0 };
    }
    if x > EXP_OVERFLOW {
        return f64::INFINITY;
    }
    let k = (x * LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // Horner over 1/n! for n = 13 .. 0. Literal reciprocal factorials:
    // shortest decimal round-trips of 1/n!.
    let mut p = 1.605_904_383_682_161_3e-10; // 1/13!
    p = p * r + 2.087_675_698_786_81e-9; // 1/12!
    p = p * r + 2.505_210_838_544_172e-8; // 1/11!
    p = p * r + 2.755_731_922_398_589e-7; // 1/10!
    p = p * r + 2.755_731_922_398_589_3e-6; // 1/9!
    p = p * r + 2.480_158_730_158_73e-5; // 1/8!
    p = p * r + 1.984_126_984_126_984e-4; // 1/7!
    p = p * r + 1.388_888_888_888_889e-3; // 1/6!
    p = p * r + 8.333_333_333_333_333e-3; // 1/5!
    p = p * r + 4.166_666_666_666_666_4e-2; // 1/4!
    p = p * r + 1.666_666_666_666_666_6e-1; // 1/3!
    p = p * r + 0.5; // 1/2!
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^k in two exact halves so each factor stays in the normal
    // exponent range even when the result is subnormal (k ≥ −1075).
    let ki = k as i64;
    let k1 = ki >> 1;
    p * pow2(k1) * pow2(ki - k1)
}

/// Lane exp: elementwise [`exp_s`].
#[must_use]
pub fn exp(a: Lane) -> Lane {
    [
        exp_core(a[0]),
        exp_core(a[1]),
        exp_core(a[2]),
        exp_core(a[3]),
    ]
}

/// Scalar entry point of the lane exp kernel, for hoisted per-row /
/// per-slice constants that must match the lane path bit for bit.
#[must_use]
pub fn exp_s(x: f64) -> f64 {
    exp_core(x)
}

/// In-place exp over a slice: full lanes first, then the odd tail
/// through the same per-element core, so chunking never changes bits.
pub fn exp_slice(xs: &mut [f64]) {
    let mut chunks = xs.chunks_exact_mut(WIDTH);
    for c in &mut chunks {
        let out = exp([c[0], c[1], c[2], c[3]]);
        c.copy_from_slice(&out);
    }
    for x in chunks.into_remainder() {
        *x = exp_core(*x);
    }
}

// ---------------------------------------------------------------------
// Polynomial ln
// ---------------------------------------------------------------------

/// 2^54, for renormalizing subnormal ln inputs.
const TWO_POW_54: f64 = 18_014_398_509_481_984.0;

/// Scalar core of the polynomial ln: split `x = 2^e · m` with
/// `m ∈ [√2/2, √2)` via the exponent bits, then the atanh series
/// `ln m = 2s·(1 + w/3 + w²/5 + …)` in `s = (m−1)/(m+1)`, `w = s²`,
/// truncated after the s²¹ term (|s| ≤ 0.1716 ⇒ truncation < 2e-19).
fn ln_core(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    // audit:allow(float-cmp): IEEE special case, ln(±0) is exactly −∞.
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    let (norm, bias) = if x < f64::MIN_POSITIVE {
        (x * TWO_POW_54, -54i64)
    } else {
        (x, 0)
    };
    let bits = norm.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023 + bias;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let w = s * s;
    // Horner over 1/(2n+1) for the atanh series tail.
    let mut p = 4.761_904_761_904_762e-2; // 1/21
    p = p * w + 5.263_157_894_736_842e-2; // 1/19
    p = p * w + 5.882_352_941_176_470_5e-2; // 1/17
    p = p * w + 6.666_666_666_666_667e-2; // 1/15
    p = p * w + 7.692_307_692_307_693e-2; // 1/13
    p = p * w + 9.090_909_090_909_091e-2; // 1/11
    p = p * w + 1.111_111_111_111_111_1e-1; // 1/9
    p = p * w + 1.428_571_428_571_428_5e-1; // 1/7
    p = p * w + 2e-1; // 1/5
    p = p * w + 3.333_333_333_333_333e-1; // 1/3
    let ln_m = 2.0 * s + 2.0 * s * w * p;
    let ef = e as f64;
    ef * LN2_HI + (ln_m + ef * LN2_LO)
}

/// Lane ln: elementwise [`ln_s`].
#[must_use]
pub fn ln(a: Lane) -> Lane {
    [ln_core(a[0]), ln_core(a[1]), ln_core(a[2]), ln_core(a[3])]
}

/// Scalar entry point of the lane ln kernel.
#[must_use]
pub fn ln_s(x: f64) -> f64 {
    ln_core(x)
}

/// In-place ln over a slice (full lanes, then the tail through the
/// same core).
pub fn ln_slice(xs: &mut [f64]) {
    let mut chunks = xs.chunks_exact_mut(WIDTH);
    for c in &mut chunks {
        let out = ln([c[0], c[1], c[2], c[3]]);
        c.copy_from_slice(&out);
    }
    for x in chunks.into_remainder() {
        *x = ln_core(*x);
    }
}

/// `x^p` through the lane kernels: `exp(p · ln x)`. Error compounds to
/// roughly `(2 + |p·ln x|·ε)` ulp; for the model's `λ^4.07` range
/// (λ ∈ [0.3, 3] µm) that is ≤ ~8 ulp of `powf`. Hot paths hoist one
/// scalar `powf` per λ-row instead of calling this per element.
#[must_use]
pub fn pow_s(x: f64, p: f64) -> f64 {
    exp_core(p * ln_core(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* sampler (no external deps).
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in [lo, hi).
        fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
            let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        }
    }

    /// Monotone integer key over the f64 line (±0 both map to 0), so
    /// ulp distance is a key difference.
    fn ordered_key(x: f64) -> i64 {
        let b = x.to_bits() as i64;
        if b < 0 {
            i64::MIN - b
        } else {
            b
        }
    }

    fn ulps(a: f64, b: f64) -> u64 {
        ordered_key(a).abs_diff(ordered_key(b))
    }

    #[test]
    fn exp_matches_std_within_4_ulp() {
        let mut rng = Rng(0x9e3779b97f4a7c15);
        let mut worst = 0u64;
        for _ in 0..200_000 {
            let x = rng.uniform(-700.0, 700.0);
            let got = exp_s(x);
            let want = x.exp();
            let d = ulps(got, want);
            worst = worst.max(d);
            assert!(d <= 4, "exp({x}) = {got:e}, std {want:e}, {d} ulp apart");
        }
        // The documented bound: the kernel tracks libm to ≤ 4 ulp.
        assert!(worst <= 4, "worst exp deviation {worst} ulp");
    }

    #[test]
    fn exp_model_domain_is_tight() {
        // The eq. (7) exponents the yield kernel feeds in: −A·D/λ^p
        // for the Fig 8 window is roughly [−40, 0].
        let mut rng = Rng(7);
        for _ in 0..100_000 {
            let x = rng.uniform(-40.0, 0.0);
            assert!(ulps(exp_s(x), x.exp()) <= 2, "x = {x}");
        }
    }

    #[test]
    fn exp_edge_cases() {
        assert_eq!(exp_s(0.0), 1.0);
        assert_eq!(exp_s(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_s(f64::INFINITY), f64::INFINITY);
        assert!(exp_s(f64::NAN).is_nan());
        assert_eq!(exp_s(-800.0), 0.0);
        assert_eq!(exp_s(800.0), f64::INFINITY);
        // Subnormal results round-trip through the two-step scaling.
        let deep = exp_s(-744.0);
        assert!(deep > 0.0 && deep < f64::MIN_POSITIVE);
        assert!(ulps(deep, (-744.0f64).exp()) <= 4);
        // Just inside the overflow threshold stays finite.
        assert!(exp_s(709.7).is_finite());
    }

    #[test]
    fn ln_matches_std_within_4_ulp() {
        let mut rng = Rng(42);
        let mut worst = 0u64;
        for _ in 0..200_000 {
            // Log-uniform over f64's full normal range.
            let x = exp_s(rng.uniform(-700.0, 700.0));
            let got = ln_s(x);
            let want = x.ln();
            let d = ulps(got, want);
            worst = worst.max(d);
            assert!(d <= 4, "ln({x:e}) = {got}, std {want}, {d} ulp apart");
        }
        assert!(worst <= 4, "worst ln deviation {worst} ulp");
    }

    #[test]
    fn ln_edge_cases() {
        assert_eq!(ln_s(1.0), 0.0);
        assert_eq!(ln_s(0.0), f64::NEG_INFINITY);
        assert_eq!(ln_s(f64::INFINITY), f64::INFINITY);
        assert!(ln_s(-1.0).is_nan());
        assert!(ln_s(f64::NAN).is_nan());
        // Subnormal inputs renormalize instead of losing their exponent.
        let tiny = f64::MIN_POSITIVE / 1024.0;
        assert!(ulps(ln_s(tiny), tiny.ln()) <= 4);
    }

    #[test]
    fn ln_exp_round_trip() {
        let mut rng = Rng(3);
        for _ in 0..50_000 {
            let x = rng.uniform(-30.0, 30.0);
            let rt = ln_s(exp_s(x));
            assert!(
                (rt - x).abs() <= 1e-13 * x.abs().max(1.0),
                "round trip {x} -> {rt}"
            );
        }
    }

    #[test]
    fn pow_tracks_powf_in_model_range() {
        let mut rng = Rng(11);
        for _ in 0..50_000 {
            let lam = rng.uniform(0.3, 3.0);
            let p = rng.uniform(0.5, 5.0);
            let got = pow_s(lam, p);
            let want = lam.powf(p);
            assert!(
                (got - want).abs() <= 1e-14 * want,
                "{lam}^{p}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn slice_drivers_match_scalar_at_odd_lengths() {
        let mut rng = Rng(99);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 13, 64, 65] {
            let xs: Vec<f64> = (0..len).map(|_| rng.uniform(-50.0, 5.0)).collect();
            let mut exp_buf = xs.clone();
            exp_slice(&mut exp_buf);
            for (x, got) in xs.iter().zip(&exp_buf) {
                assert_eq!(got.to_bits(), exp_s(*x).to_bits(), "len {len}");
            }
            let pos: Vec<f64> = xs.iter().map(|x| x.abs() + 0.1).collect();
            let mut ln_buf = pos.clone();
            ln_slice(&mut ln_buf);
            for (x, got) in pos.iter().zip(&ln_buf) {
                assert_eq!(got.to_bits(), ln_s(*x).to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn exact_lane_ops_are_bit_identical_to_scalar() {
        let mut rng = Rng(5);
        for _ in 0..10_000 {
            let a: Lane = [
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
            ];
            let b: Lane = [
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
            ];
            let c = splat(rng.uniform(-1.0, 1.0));
            for i in 0..WIDTH {
                assert_eq!(add(a, b)[i].to_bits(), (a[i] + b[i]).to_bits());
                assert_eq!(mul(a, b)[i].to_bits(), (a[i] * b[i]).to_bits());
                assert_eq!(
                    mul_add(a, b, c)[i].to_bits(),
                    (a[i] * b[i] + c[i]).to_bits()
                );
                assert_eq!(min(a, b)[i].to_bits(), a[i].min(b[i]).to_bits());
                assert_eq!(max(a, b)[i].to_bits(), a[i].max(b[i]).to_bits());
                assert_eq!(sqrt(a)[i].to_bits(), a[i].sqrt().to_bits());
            }
        }
    }

    #[test]
    fn scale_add_and_neg_mul_are_exact() {
        let mut rng = Rng(17);
        let xs: Vec<f64> = (0..33).map(|_| rng.uniform(0.1, 10.0)).collect();
        let ys: Vec<f64> = (0..33).map(|_| rng.uniform(0.1, 10.0)).collect();
        let mut buf = xs.clone();
        scale_add_slice(&mut buf, -4.07, 0.5423);
        for (x, got) in xs.iter().zip(&buf) {
            assert_eq!(got.to_bits(), (*x * -4.07 + 0.5423).to_bits());
        }
        let mut buf = xs.clone();
        neg_mul_slice(&mut buf, &ys);
        for ((x, y), got) in xs.iter().zip(&ys).zip(&buf) {
            assert_eq!(got.to_bits(), (-(*x * *y)).to_bits());
        }
    }
}
