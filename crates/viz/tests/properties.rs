//! Property-based tests for the viz toolkit.

use maly_viz::csv::to_csv;
use maly_viz::scale::Scale;
use maly_viz::table::{Alignment, TextTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scales: normalize/denormalize are inverse on the data interval.
    #[test]
    fn scale_roundtrip(min in 0.001f64..10.0, span in 0.1f64..1000.0, t in 0.0f64..1.0) {
        for scale in [
            Scale::Linear { min, max: min + span },
            Scale::Log { min, max: min + span },
        ] {
            let data = scale.denormalize(t);
            let back = scale.normalized(data);
            prop_assert!((back - t).abs() < 1e-9, "{scale:?}: {t} → {data} → {back}");
        }
    }

    /// to_pixel stays in range and is monotone.
    #[test]
    fn pixel_mapping_monotone(min in 0.001f64..10.0, span in 0.1f64..1000.0,
                              a in 0.0f64..1.0, b in 0.0f64..1.0, pixels in 2usize..500) {
        let scale = Scale::Linear { min, max: min + span };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pa = scale.to_pixel(scale.denormalize(lo), pixels);
        let pb = scale.to_pixel(scale.denormalize(hi), pixels);
        prop_assert!(pa <= pb);
        prop_assert!(pb < pixels);
    }

    /// CSV quoting roundtrips through a trivial parser for quote-free
    /// fields and always produces one line per row.
    #[test]
    fn csv_shape(rows in prop::collection::vec(
        prop::collection::vec("[a-z0-9 ,\"]{0,12}", 3..4), 0..8)) {
        let string_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
            .collect();
        let csv = to_csv(&["a", "b", "c"], &string_rows);
        // Cells may contain embedded newlines only via quoting — none
        // here — so the line count is rows + header.
        prop_assert_eq!(csv.lines().count(), string_rows.len() + 1);
        prop_assert!(csv.starts_with("a,b,c\n"));
    }

    /// Tables: rendered row count is header + separator + rows, and every
    /// cell string survives rendering.
    #[test]
    fn table_preserves_cells(cells in prop::collection::vec("[a-zA-Z0-9]{1,10}", 1..20)) {
        let mut t = TextTable::new(vec!["value"]);
        t.align(0, Alignment::Right);
        for c in &cells {
            t.row(vec![c.clone()]);
        }
        let rendered = t.render();
        prop_assert_eq!(rendered.lines().count(), cells.len() + 2);
        for c in &cells {
            prop_assert!(rendered.contains(c.as_str()), "missing {c}");
        }
        // Markdown form keeps the same data.
        let md = t.render_markdown();
        for c in &cells {
            prop_assert!(md.contains(c.as_str()));
        }
    }
}
