//! Property-style tests for the viz toolkit.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from a tiny SplitMix64 generator.

use maly_viz::csv::to_csv;
use maly_viz::scale::Scale;
use maly_viz::table::{Alignment, TextTable};

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A pseudo-random cell string over a CSV-hostile alphabet.
    fn cell(&mut self, max_len: usize) -> String {
        const ALPHABET: &[u8] = b"abcxyz019 ,\"";
        let len = self.index(max_len + 1);
        (0..len)
            .map(|_| ALPHABET[self.index(ALPHABET.len())] as char)
            .collect()
    }
}

const CASES: usize = 128;

/// Scales: normalize/denormalize are inverse on the data interval.
#[test]
fn scale_roundtrip() {
    let mut s = Sampler::new(501);
    for _ in 0..CASES {
        let min = s.uniform(0.001, 10.0);
        let span = s.uniform(0.1, 1000.0);
        let t = s.uniform(0.0, 1.0);
        for scale in [
            Scale::Linear {
                min,
                max: min + span,
            },
            Scale::Log {
                min,
                max: min + span,
            },
        ] {
            let data = scale.denormalize(t);
            let back = scale.normalized(data);
            assert!((back - t).abs() < 1e-9, "{scale:?}: {t} → {data} → {back}");
        }
    }
}

/// to_pixel stays in range and is monotone.
#[test]
fn pixel_mapping_monotone() {
    let mut s = Sampler::new(502);
    for _ in 0..CASES {
        let min = s.uniform(0.001, 10.0);
        let span = s.uniform(0.1, 1000.0);
        let a = s.uniform(0.0, 1.0);
        let b = s.uniform(0.0, 1.0);
        let pixels = 2 + s.index(498);
        let scale = Scale::Linear {
            min,
            max: min + span,
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pa = scale.to_pixel(scale.denormalize(lo), pixels);
        let pb = scale.to_pixel(scale.denormalize(hi), pixels);
        assert!(pa <= pb);
        assert!(pb < pixels);
    }
}

/// CSV quoting roundtrips through a trivial parser for quote-free
/// fields and always produces one line per row.
#[test]
fn csv_shape() {
    let mut s = Sampler::new(503);
    for _ in 0..CASES / 4 {
        let n_rows = s.index(8);
        let string_rows: Vec<Vec<String>> = (0..n_rows)
            .map(|_| (0..3).map(|_| s.cell(12)).collect())
            .collect();
        let csv = to_csv(&["a", "b", "c"], &string_rows);
        // Cells may contain embedded newlines only via quoting — none
        // here — so the line count is rows + header.
        assert_eq!(csv.lines().count(), string_rows.len() + 1);
        assert!(csv.starts_with("a,b,c\n"));
    }
}

/// Tables: rendered row count is header + separator + rows, and every
/// cell string survives rendering.
#[test]
fn table_preserves_cells() {
    let mut s = Sampler::new(504);
    for _ in 0..CASES / 4 {
        let n_cells = 1 + s.index(19);
        let cells: Vec<String> = (0..n_cells)
            .map(|i| format!("cell{i}x{}", s.index(1_000_000)))
            .collect();
        let mut t = TextTable::new(vec!["value"]);
        t.align(0, Alignment::Right);
        for c in &cells {
            t.row(vec![c.clone()]);
        }
        let rendered = t.render();
        assert_eq!(rendered.lines().count(), cells.len() + 2);
        for c in &cells {
            assert!(rendered.contains(c.as_str()), "missing {c}");
        }
        // Markdown form keeps the same data.
        let md = t.render_markdown();
        for c in &cells {
            assert!(md.contains(c.as_str()));
        }
    }
}
