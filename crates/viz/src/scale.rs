//! Data→pixel axis scales.

/// A 1-D mapping from a data interval to a pixel interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Linear interpolation.
    Linear {
        /// Data minimum.
        min: f64,
        /// Data maximum.
        max: f64,
    },
    /// Logarithmic (base-10) interpolation; requires positive data.
    Log {
        /// Data minimum (> 0).
        min: f64,
        /// Data maximum (> min).
        max: f64,
    },
}

impl Scale {
    /// Builds a linear scale over the data's range.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or all values coincide.
    #[must_use]
    pub fn linear_over(values: impl IntoIterator<Item = f64>) -> Self {
        let (min, max) = min_max(values);
        assert!(max > min, "degenerate scale: all values equal {min}");
        Scale::Linear { min, max }
    }

    /// Builds a log scale over the data's range.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, contains non-positive entries, or
    /// all values coincide.
    #[must_use]
    pub fn log_over(values: impl IntoIterator<Item = f64>) -> Self {
        let (min, max) = min_max(values);
        assert!(min > 0.0, "log scale needs positive data, got min {min}");
        assert!(max > min, "degenerate scale: all values equal {min}");
        Scale::Log { min, max }
    }

    /// Maps a data value to a pixel coordinate in `[0, pixels − 1]`,
    /// clamped.
    #[must_use]
    pub fn to_pixel(&self, value: f64, pixels: usize) -> usize {
        let t = self.normalized(value).clamp(0.0, 1.0);
        (t * (pixels - 1) as f64).round() as usize
    }

    /// Normalized position of a data value in `[0, 1]` (unclamped).
    #[must_use]
    pub fn normalized(&self, value: f64) -> f64 {
        match self {
            Scale::Linear { min, max } => (value - min) / (max - min),
            Scale::Log { min, max } => (value.ln() - min.ln()) / (max.ln() - min.ln()),
        }
    }

    /// Data value at a normalized position (inverse of
    /// [`Self::normalized`]).
    #[must_use]
    pub fn denormalize(&self, t: f64) -> f64 {
        match self {
            Scale::Linear { min, max } => min + t * (max - min),
            Scale::Log { min, max } => (min.ln() + t * (max.ln() - min.ln())).exp(),
        }
    }

    /// Representative tick values (ends plus interior).
    #[must_use]
    pub fn ticks(&self, count: usize) -> Vec<f64> {
        let count = count.max(2);
        (0..count)
            .map(|i| self.denormalize(i as f64 / (count - 1) as f64))
            .collect()
    }
}

fn min_max(values: impl IntoIterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut any = false;
    for v in values {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
            any = true;
        }
    }
    assert!(any, "scale needs at least one finite value");
    (min, max)
}

/// Formats a value compactly for axis labels (SI-style suffixes for
/// large magnitudes, fixed decimals for small ones).
#[must_use]
pub fn format_tick(value: f64) -> String {
    let a = value.abs();
    if a >= 1.0e9 {
        format!("{:.1}G", value / 1.0e9)
    } else if a >= 1.0e6 {
        format!("{:.1}M", value / 1.0e6)
    } else if a >= 1.0e3 {
        format!("{:.1}k", value / 1.0e3)
    } else if a >= 1.0 {
        format!("{value:.2}")
    } else if a >= 1.0e-3 {
        format!("{value:.3}")
    // audit:allow(float-cmp): exact zero picks the degenerate-axis branch.
    } else if a == 0.0 {
        "0".to_string()
    } else {
        format!("{value:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_maps_ends_to_ends() {
        let s = Scale::Linear {
            min: 0.0,
            max: 10.0,
        };
        assert_eq!(s.to_pixel(0.0, 100), 0);
        assert_eq!(s.to_pixel(10.0, 100), 99);
        assert_eq!(s.to_pixel(5.0, 101), 50);
    }

    #[test]
    fn log_maps_decades_evenly() {
        let s = Scale::Log {
            min: 1.0,
            max: 1000.0,
        };
        assert!((s.normalized(10.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.normalized(100.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_handles_out_of_range() {
        let s = Scale::Linear { min: 0.0, max: 1.0 };
        assert_eq!(s.to_pixel(-5.0, 10), 0);
        assert_eq!(s.to_pixel(5.0, 10), 9);
    }

    #[test]
    fn denormalize_inverts_normalized() {
        for s in [
            Scale::Linear { min: 2.0, max: 8.0 },
            Scale::Log {
                min: 0.1,
                max: 100.0,
            },
        ] {
            for v in [0.15, 0.5, 0.93] {
                let data = s.denormalize(v);
                assert!((s.normalized(data) - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn over_constructors_span_data() {
        let s = Scale::linear_over([3.0, 1.0, 2.0]);
        assert_eq!(s, Scale::Linear { min: 1.0, max: 3.0 });
        let s = Scale::log_over([10.0, 1.0]);
        assert_eq!(
            s,
            Scale::Log {
                min: 1.0,
                max: 10.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn log_rejects_non_positive() {
        let _ = Scale::log_over([0.0, 1.0]);
    }

    #[test]
    fn ticks_cover_range() {
        let s = Scale::Linear { min: 0.0, max: 4.0 };
        assert_eq!(s.ticks(5), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(2.5e6), "2.5M");
        assert_eq!(format_tick(1.2e3), "1.2k");
        assert_eq!(format_tick(2.345), "2.35");
        assert_eq!(format_tick(0.251), "0.251");
        assert_eq!(format_tick(2.5e-6), "2.50e-6");
        assert_eq!(format_tick(0.0), "0");
    }
}
