//! A character raster with primitive drawing operations.

/// A fixed-size grid of characters, origin at the top-left.
///
/// # Examples
///
/// ```
/// use maly_viz::canvas::Canvas;
///
/// let mut c = Canvas::new(5, 3);
/// c.set(0, 0, '#');
/// c.set(4, 2, '*');
/// let s = c.render();
/// assert!(s.starts_with('#'));
/// assert!(s.ends_with('*'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canvas {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl Canvas {
    /// Creates a blank canvas filled with spaces.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "canvas must be non-empty");
        Self {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    /// Canvas width in characters.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Canvas height in rows.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sets a cell; out-of-bounds coordinates are silently clipped
    /// (plot marks near the border are common and harmless).
    pub fn set(&mut self, x: usize, y: usize, ch: char) {
        if x < self.width && y < self.height {
            self.cells[y * self.width + x] = ch;
        }
    }

    /// Reads a cell (`None` out of bounds).
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> Option<char> {
        (x < self.width && y < self.height).then(|| self.cells[y * self.width + x])
    }

    /// Writes a string horizontally starting at `(x, y)`, clipping at
    /// the right edge.
    pub fn text(&mut self, x: usize, y: usize, text: &str) {
        for (i, ch) in text.chars().enumerate() {
            self.set(x + i, y, ch);
        }
    }

    /// Draws a line between two cells (Bresenham).
    pub fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, ch: char) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        let (mut x, mut y) = (x0, y0);
        loop {
            if x >= 0 && y >= 0 {
                self.set(x as usize, y as usize, ch);
            }
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Renders the canvas to a newline-joined string, trimming trailing
    /// spaces per row.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.cells.len() + self.height);
        for row in 0..self.height {
            let line: String = self.cells[row * self.width..(row + 1) * self.width]
                .iter()
                .collect();
            out.push_str(line.trim_end());
            if row + 1 < self.height {
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut c = Canvas::new(10, 5);
        c.set(3, 2, 'x');
        assert_eq!(c.get(3, 2), Some('x'));
        assert_eq!(c.get(0, 0), Some(' '));
        assert_eq!(c.get(10, 0), None);
    }

    #[test]
    fn out_of_bounds_set_is_clipped() {
        let mut c = Canvas::new(3, 3);
        c.set(99, 99, 'x'); // no panic
        assert!(!c.render().contains('x'));
    }

    #[test]
    fn text_clips_at_right_edge() {
        let mut c = Canvas::new(5, 1);
        c.text(2, 0, "hello");
        assert_eq!(c.render(), "  hel");
    }

    #[test]
    fn horizontal_line() {
        let mut c = Canvas::new(6, 3);
        c.line(0, 1, 5, 1, '-');
        assert_eq!(c.render().lines().nth(1).unwrap(), "------");
    }

    #[test]
    fn diagonal_line_touches_endpoints() {
        let mut c = Canvas::new(8, 8);
        c.line(0, 0, 7, 7, '\\');
        assert_eq!(c.get(0, 0), Some('\\'));
        assert_eq!(c.get(7, 7), Some('\\'));
        assert_eq!(c.get(3, 3), Some('\\'));
    }

    #[test]
    fn render_trims_trailing_spaces() {
        let mut c = Canvas::new(5, 2);
        c.set(0, 0, 'a');
        let rendered = c.render();
        assert_eq!(rendered, "a\n");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = Canvas::new(0, 5);
    }
}
