//! Plotting and table tooling for cost-model experiments.
//!
//! Everything renders to plain text so results are inspectable in a
//! terminal, diffable in CI and embeddable in EXPERIMENTS.md:
//!
//! * [`canvas::Canvas`] — a character raster with Bresenham lines;
//! * [`scale::Scale`] — linear/logarithmic data→pixel mapping;
//! * [`lineplot::LinePlot`] — multi-series XY plots with axes and legend
//!   (Figs 1–7);
//! * [`contourplot`] — contour-segment rendering (Fig 8);
//! * [`wafermap`] — wafer-map rendering (die placements);
//! * [`table::TextTable`] — aligned text and Markdown tables
//!   (Tables 1–3);
//! * [`csv`] — CSV export for downstream plotting.
//!
//! # Examples
//!
//! ```
//! use maly_viz::lineplot::LinePlot;
//!
//! let series: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
//! let rendered = LinePlot::new("squares")
//!     .with_series("x²", &series)
//!     .render(60, 16);
//! assert!(rendered.contains("squares"));
//! assert!(rendered.contains("x²"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barchart;
pub mod canvas;
pub mod contourplot;
pub mod csv;
pub mod lineplot;
pub mod scale;
pub mod table;
pub mod wafermap;
