//! Wafer-map rendering: die placements on the wafer outline.
//!
//! Takes the geometric description of a placed wafer (radius plus die
//! rectangles) rather than a concrete type, so it renders
//! `maly_wafer_geom::WaferMap` output without a dependency cycle.

use crate::canvas::Canvas;

/// A die rectangle in wafer-centered coordinates (cm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieRect {
    /// Die center X (cm).
    pub center_x: f64,
    /// Die center Y (cm).
    pub center_y: f64,
    /// Die width (cm).
    pub width: f64,
    /// Die height (cm).
    pub height: f64,
}

/// Renders a wafer outline with placed dies.
///
/// Characters: `.` wafer surface, `#` die area, space outside. The
/// aspect ratio is corrected for the 2:1 cell shape of terminal fonts.
///
/// # Panics
///
/// Panics if `radius_cm` is not positive or `columns < 20`.
///
/// # Examples
///
/// ```
/// use maly_viz::wafermap::{render_wafer, DieRect};
///
/// let dies = vec![DieRect { center_x: 0.0, center_y: 0.0, width: 2.0, height: 2.0 }];
/// let s = render_wafer(7.5, &dies, 40);
/// assert!(s.contains('#'));
/// assert!(s.contains('.'));
/// ```
#[must_use]
pub fn render_wafer(radius_cm: f64, dies: &[DieRect], columns: usize) -> String {
    assert!(radius_cm > 0.0, "radius must be positive");
    assert!(columns >= 20, "need at least 20 columns");
    let rows = columns / 2; // terminal cells are ~2× taller than wide
    let mut canvas = Canvas::new(columns, rows);

    for row in 0..rows {
        for col in 0..columns {
            // Map cell center to wafer coordinates.
            let x = (col as f64 + 0.5) / columns as f64 * 2.0 * radius_cm - radius_cm;
            let y = radius_cm - (row as f64 + 0.5) / rows as f64 * 2.0 * radius_cm;
            if x * x + y * y > radius_cm * radius_cm {
                continue;
            }
            let in_die = dies.iter().any(|d| {
                (x - d.center_x).abs() <= d.width / 2.0 && (y - d.center_y).abs() <= d.height / 2.0
            });
            canvas.set(col, row, if in_die { '#' } else { '.' });
        }
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wafer_is_all_dots_inside() {
        let s = render_wafer(7.5, &[], 40);
        assert!(s.contains('.'));
        assert!(!s.contains('#'));
    }

    #[test]
    fn centered_die_marks_center() {
        let dies = vec![DieRect {
            center_x: 0.0,
            center_y: 0.0,
            width: 3.0,
            height: 3.0,
        }];
        let s = render_wafer(7.5, &dies, 40);
        let lines: Vec<&str> = s.lines().collect();
        let mid = &lines[lines.len() / 2];
        assert!(mid.contains('#'), "center row: {mid:?}");
    }

    #[test]
    fn wafer_outline_is_roughly_circular() {
        let s = render_wafer(7.5, &[], 40);
        let lines: Vec<&str> = s.lines().collect();
        // The middle row is wider than the top row.
        let width_of = |line: &str| line.trim().len();
        let top = lines
            .iter()
            .find(|l| !l.trim().is_empty())
            .map(|l| width_of(l))
            .unwrap();
        let mid = width_of(lines[lines.len() / 2]);
        assert!(mid > top);
    }

    #[test]
    fn die_outside_wafer_is_clipped() {
        let dies = vec![DieRect {
            center_x: 10.0,
            center_y: 10.0,
            width: 1.0,
            height: 1.0,
        }];
        let s = render_wafer(7.5, &dies, 40);
        assert!(!s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn bad_radius_rejected() {
        let _ = render_wafer(0.0, &[], 40);
    }
}
