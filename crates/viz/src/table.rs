//! Aligned text and Markdown tables.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Alignment {
    /// Left-aligned (default; good for names).
    #[default]
    Left,
    /// Right-aligned (good for numbers).
    Right,
}

/// A simple table builder.
///
/// # Examples
///
/// ```
/// use maly_viz::table::{Alignment, TextTable};
///
/// let mut t = TextTable::new(vec!["product", "C_tr [µ$]"]);
/// t.align(1, Alignment::Right);
/// t.row(vec!["DRAM 256Mb".into(), "1.31".into()]);
/// t.row(vec!["PLD 1.2kg".into(), "240.00".into()]);
/// let text = t.render();
/// assert!(text.contains("DRAM 256Mb"));
/// let md = t.render_markdown();
/// assert!(md.starts_with("| product"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TextTable {
    headers: Vec<String>,
    alignments: Vec<Alignment>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics on an empty header list.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        let alignments = vec![Alignment::Left; headers.len()];
        Self {
            headers: headers.into_iter().map(str::to_string).collect(),
            alignments,
            rows: Vec::new(),
        }
    }

    /// Sets a column's alignment.
    ///
    /// # Panics
    ///
    /// Panics if the column index is out of range.
    pub fn align(&mut self, column: usize, alignment: Alignment) -> &mut Self {
        assert!(column < self.headers.len(), "no column {column}");
        self.alignments[column] = alignment;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    fn pad(cell: &str, width: usize, alignment: Alignment) -> String {
        let len = cell.chars().count();
        let fill = " ".repeat(width.saturating_sub(len));
        match alignment {
            Alignment::Left => format!("{cell}{fill}"),
            Alignment::Right => format!("{fill}{cell}"),
        }
    }

    /// Renders as an aligned plain-text table with a header separator.
    #[must_use]
    pub fn render(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| Self::pad(c, widths[i], self.alignments[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        for row in &self.rows {
            out.push('\n');
            out.push_str(&render_row(row));
        }
        out
    }

    /// Renders as a GitHub-flavored Markdown table.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String { format!("| {} |", cells.join(" | ")) };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push('|');
        for alignment in &self.alignments {
            out.push_str(match alignment {
                Alignment::Left => " --- |",
                Alignment::Right => " ---: |",
            });
        }
        for row in &self.rows {
            out.push('\n');
            out.push_str(&render_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.align(1, Alignment::Right);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "25.50".into()]);
        t
    }

    #[test]
    fn plain_render_is_aligned() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("-----"));
        assert_eq!(lines[2], "alpha      1");
        assert_eq!(lines[3], "b      25.50");
    }

    #[test]
    fn markdown_render_has_alignment_row() {
        let md = sample().render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| name | value |");
        assert_eq!(lines[1], "| --- | ---: |");
        assert_eq!(lines[2], "| alpha | 1 |");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(TextTable::new(vec!["a"]).is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = TextTable::new(vec![]);
    }

    #[test]
    fn unicode_widths_counted_by_chars() {
        let mut t = TextTable::new(vec!["λ [µm]", "C"]);
        t.row(vec!["0.8".into(), "x".into()]);
        let lines: Vec<String> = t.render().lines().map(str::to_string).collect();
        // Header is 6 chars; separator matches.
        assert_eq!(lines[1].split("  ").next().unwrap().len(), 6);
    }
}
