//! Minimal CSV writing (RFC 4180 quoting).

/// Serializes rows of string-like cells to CSV.
///
/// Fields containing commas, quotes or newlines are quoted; embedded
/// quotes are doubled.
///
/// # Examples
///
/// ```
/// use maly_viz::csv::to_csv;
///
/// let csv = to_csv(
///     &["lambda_um", "cost_usd"],
///     &[vec!["0.8".into(), "9.4e-6".into()]],
/// );
/// assert_eq!(csv, "lambda_um,cost_usd\n0.8,9.4e-6\n");
/// ```
#[must_use]
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Builds a numeric row from `f64` values with full precision.
#[must_use]
pub fn numeric_row(values: &[f64]) -> Vec<String> {
    values.iter().map(|v| format!("{v}")).collect()
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        let csv = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn commas_and_quotes_are_escaped() {
        let csv = to_csv(
            &["name"],
            &[vec!["µP, BiCMOS".into()], vec!["say \"hi\"".into()]],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "\"µP, BiCMOS\"");
        assert_eq!(lines[2], "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn newlines_are_quoted() {
        let csv = to_csv(&["x"], &[vec!["a\nb".into()]]);
        assert!(csv.contains("\"a\nb\""));
    }

    #[test]
    fn numeric_rows_roundtrip_precision() {
        let row = numeric_row(&[9.4e-6, 0.8]);
        assert_eq!(row[0].parse::<f64>().unwrap(), 9.4e-6);
        assert_eq!(row[1], "0.8");
    }

    #[test]
    fn empty_rows_give_header_only() {
        assert_eq!(to_csv(&["h"], &[]), "h\n");
    }
}
