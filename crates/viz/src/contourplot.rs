//! Contour-segment rendering onto a text canvas (Fig 8).

use crate::canvas::Canvas;
use crate::scale::{format_tick, Scale};

/// Level-marker characters assigned in order.
const LEVEL_MARKS: [char; 8] = ['1', '2', '3', '4', '5', '6', '7', '8'];

/// One renderable contour: a level label and its segments in data space.
#[derive(Debug, Clone, PartialEq)]
pub struct ContourSet {
    /// Label printed in the legend (e.g. `"10 µ$"`).
    pub label: String,
    /// Segments `((x0, y0), (x1, y1))` in data coordinates.
    pub segments: Vec<((f64, f64), (f64, f64))>,
}

/// Renders contour sets over the given data window.
///
/// `x_scale`/`y_scale` define the axes (use [`Scale::Log`] for the
/// paper's logarithmic `N_tr` axis). Each set draws with its own digit
/// marker; the legend maps digits to labels.
///
/// # Panics
///
/// Panics if the canvas is too small.
///
/// # Examples
///
/// ```
/// use maly_viz::contourplot::{render_contours, ContourSet};
/// use maly_viz::scale::Scale;
///
/// let set = ContourSet {
///     label: "10 µ$".into(),
///     segments: vec![((0.5, 1e6), (0.6, 2e6))],
/// };
/// let s = render_contours(
///     "Fig 8",
///     &[set],
///     Scale::Linear { min: 0.3, max: 1.5 },
///     Scale::Log { min: 1e5, max: 2e7 },
///     60,
///     20,
/// );
/// assert!(s.contains("Fig 8"));
/// assert!(s.contains("1 = 10 µ$"));
/// ```
#[must_use]
pub fn render_contours(
    title: &str,
    sets: &[ContourSet],
    x_scale: Scale,
    y_scale: Scale,
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 30 && height >= 10, "contour plot too small");
    let margin_left = 10usize;
    let plot_w = width - margin_left - 1;
    let plot_h = height - 4;
    let mut canvas = Canvas::new(width, height);
    canvas.text(margin_left, 0, title);

    for y in 0..plot_h {
        canvas.set(margin_left - 1, y + 1, '|');
    }
    for x in 0..plot_w {
        canvas.set(margin_left + x, plot_h + 1, '-');
    }
    canvas.set(margin_left - 1, plot_h + 1, '+');

    // Axis end labels.
    for (t, row) in [(1.0, 1usize), (0.0, plot_h)] {
        let label = format_tick(y_scale.denormalize(t));
        let col = margin_left.saturating_sub(1 + label.len());
        canvas.text(col, row, &label);
    }
    let x_lo = format_tick(x_scale.denormalize(0.0));
    let x_hi = format_tick(x_scale.denormalize(1.0));
    canvas.text(margin_left, plot_h + 2, &x_lo);
    canvas.text(margin_left + plot_w - x_hi.len(), plot_h + 2, &x_hi);

    for (idx, set) in sets.iter().enumerate() {
        let mark = LEVEL_MARKS[idx % LEVEL_MARKS.len()];
        for &((x0, y0), (x1, y1)) in &set.segments {
            let px0 = margin_left + x_scale.to_pixel(x0, plot_w);
            let px1 = margin_left + x_scale.to_pixel(x1, plot_w);
            let py0 = 1 + (plot_h - 1) - y_scale.to_pixel(y0, plot_h);
            let py1 = 1 + (plot_h - 1) - y_scale.to_pixel(y1, plot_h);
            canvas.line(px0 as i64, py0 as i64, px1 as i64, py1 as i64, mark);
        }
    }

    let legend = sets
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} = {}", LEVEL_MARKS[i % LEVEL_MARKS.len()], s.label))
        .collect::<Vec<_>>()
        .join("   ");
    canvas.text(margin_left, height - 1, &legend);
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_set(label: &str) -> ContourSet {
        ContourSet {
            label: label.into(),
            segments: vec![((0.4, 2e5), (1.4, 1e7))],
        }
    }

    fn scales() -> (Scale, Scale) {
        (
            Scale::Linear { min: 0.3, max: 1.5 },
            Scale::Log { min: 1e5, max: 2e7 },
        )
    }

    #[test]
    fn renders_title_axes_legend_and_marks() {
        let (xs, ys) = scales();
        let s = render_contours("Fig 8", &[diag_set("10 µ$")], xs, ys, 70, 22);
        assert!(s.contains("Fig 8"));
        assert!(s.contains("1 = 10 µ$"));
        assert!(s.contains('1'));
        assert!(s.contains('|') && s.contains('-'));
    }

    #[test]
    fn multiple_levels_use_distinct_digits() {
        let (xs, ys) = scales();
        let s = render_contours("t", &[diag_set("a"), diag_set("b")], xs, ys, 70, 22);
        assert!(s.contains("1 = a") && s.contains("2 = b"));
    }

    #[test]
    fn empty_sets_render_frame_only() {
        let (xs, ys) = scales();
        let s = render_contours("empty", &[], xs, ys, 60, 14);
        assert!(s.contains("empty"));
        assert!(s.contains('+'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let (xs, ys) = scales();
        let _ = render_contours("t", &[], xs, ys, 10, 5);
    }
}
