//! Multi-series XY line plots rendered as text.

use crate::canvas::Canvas;
use crate::scale::{format_tick, Scale};

/// Marker characters assigned to series in order.
const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// A named data series.
#[derive(Debug, Clone, PartialEq)]
struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

/// A builder-style multi-series line plot.
///
/// # Examples
///
/// ```
/// use maly_viz::lineplot::LinePlot;
///
/// let a: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, 1.0 / i as f64)).collect();
/// let rendered = LinePlot::new("cost vs lambda")
///     .with_series("X=1.1", &a)
///     .log_y()
///     .render(70, 20);
/// assert!(rendered.contains("cost vs lambda"));
/// assert!(rendered.lines().count() >= 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    log_x: bool,
    log_y: bool,
}

impl LinePlot {
    /// Starts a plot with a title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
            log_x: false,
            log_y: false,
        }
    }

    /// Adds a series (order fixes its marker).
    #[must_use]
    pub fn with_series(mut self, name: impl Into<String>, points: &[(f64, f64)]) -> Self {
        self.series.push(Series {
            name: name.into(),
            points: points.to_vec(),
        });
        self
    }

    /// Axis labels.
    #[must_use]
    pub fn with_labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Logarithmic X axis.
    #[must_use]
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Logarithmic Y axis.
    #[must_use]
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Renders to a `width × height` character block (plot area plus
    /// title, axes and legend).
    ///
    /// # Panics
    ///
    /// Panics when no series has any finite point, or dimensions are too
    /// small to hold the frame.
    #[must_use]
    pub fn render(&self, width: usize, height: usize) -> String {
        assert!(
            width >= 30 && height >= 8,
            "plot too small: {width}×{height}"
        );
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        assert!(!xs.is_empty(), "plot has no data");

        let x_scale = build_scale(&xs, self.log_x);
        let y_scale = build_scale(&ys, self.log_y);

        let margin_left = 10usize;
        let plot_w = width - margin_left - 1;
        let plot_h = height - 4; // title + x-axis + labels
        let mut canvas = Canvas::new(width, height);

        canvas.text(margin_left, 0, &self.title);

        // Frame.
        for y in 0..plot_h {
            canvas.set(margin_left - 1, y + 1, '|');
        }
        for x in 0..plot_w {
            canvas.set(margin_left + x, plot_h + 1, '-');
        }
        canvas.set(margin_left - 1, plot_h + 1, '+');

        // Y tick labels (top, middle, bottom).
        for (t, row) in [(1.0, 1usize), (0.5, plot_h / 2), (0.0, plot_h)] {
            let value = y_scale.denormalize(t);
            let label = format_tick(value);
            let col = margin_left.saturating_sub(1 + label.len());
            canvas.text(col, row, &label);
        }
        // X tick labels.
        for (t, align_right) in [(0.0, false), (1.0, true)] {
            let value = x_scale.denormalize(t);
            let label = format_tick(value);
            let col = if align_right {
                margin_left + plot_w - label.len()
            } else {
                margin_left
            };
            canvas.text(col, plot_h + 2, &label);
        }
        if !self.x_label.is_empty() {
            let col = margin_left + (plot_w.saturating_sub(self.x_label.len())) / 2;
            canvas.text(col, plot_h + 2, &self.x_label);
        }

        // Series.
        for (idx, series) in self.series.iter().enumerate() {
            let marker = MARKERS[idx % MARKERS.len()];
            let mut last: Option<(usize, usize)> = None;
            for &(x, y) in &series.points {
                if !x.is_finite() || !y.is_finite() {
                    last = None;
                    continue;
                }
                let px = margin_left + x_scale.to_pixel(x, plot_w);
                // Y axis: data maximum at top row (row 1).
                let py = 1 + (plot_h - 1) - y_scale.to_pixel(y, plot_h);
                if let Some((lx, ly)) = last {
                    canvas.line(lx as i64, ly as i64, px as i64, py as i64, marker);
                } else {
                    canvas.set(px, py, marker);
                }
                last = Some((px, py));
            }
        }

        // Legend on the last row.
        let legend = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", MARKERS[i % MARKERS.len()], s.name))
            .collect::<Vec<_>>()
            .join("   ");
        canvas.text(margin_left, height - 1, &legend);

        canvas.render()
    }
}

fn build_scale(values: &[f64], log: bool) -> Scale {
    if log {
        Scale::log_over(values.iter().copied())
    } else {
        Scale::linear_over(values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rising() -> Vec<(f64, f64)> {
        (1..=10).map(|i| (i as f64, i as f64 * 2.0)).collect()
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let plot = LinePlot::new("demo")
            .with_series("up", &rising())
            .with_labels("x", "y");
        let s = plot.render(60, 16);
        assert!(s.contains("demo"));
        assert!(s.contains("* up"));
        assert!(s.contains('|'));
        assert!(s.contains('-'));
    }

    #[test]
    fn rising_series_has_marker_in_top_right() {
        let s = LinePlot::new("t")
            .with_series("s", &rising())
            .render(60, 16);
        let lines: Vec<&str> = s.lines().collect();
        // The top plot row (row 1) must contain the marker near the right.
        let top = lines[1];
        assert!(top.trim_end().ends_with('*'), "top row: {top:?}");
    }

    #[test]
    fn log_axes_render_without_panic() {
        let decades: Vec<(f64, f64)> = (0..6).map(|i| (10f64.powi(i), 10f64.powi(i))).collect();
        let s = LinePlot::new("log")
            .with_series("d", &decades)
            .log_x()
            .log_y()
            .render(60, 14);
        assert!(s.contains("1.0M") || s.contains("100.0k"), "{s}");
    }

    #[test]
    fn multiple_series_use_distinct_markers() {
        let a = rising();
        let b: Vec<(f64, f64)> = a.iter().map(|&(x, y)| (x, y + 1.0)).collect();
        let s = LinePlot::new("two")
            .with_series("a", &a)
            .with_series("b", &b)
            .render(60, 16);
        assert!(s.contains('*') && s.contains('o'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let pts = vec![(1.0, 1.0), (2.0, f64::NAN), (3.0, 3.0)];
        let s = LinePlot::new("gap").with_series("g", &pts).render(60, 12);
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_plot_panics() {
        let _ = LinePlot::new("empty").render(60, 12);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_panics() {
        let _ = LinePlot::new("t").with_series("s", &rising()).render(10, 4);
    }
}
