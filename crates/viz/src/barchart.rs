//! Horizontal bar charts with labels — for categorical comparisons like
//! the Table 3 cost diversity or the ablation errors.

/// A horizontal bar chart builder.
///
/// # Examples
///
/// ```
/// use maly_viz::barchart::BarChart;
///
/// let chart = BarChart::new("cost per transistor [µ$]")
///     .with_bar("DRAM 256Mb", 1.31)
///     .with_bar("BiCMOS µP", 25.5)
///     .with_bar("PLD", 240.0)
///     .render(60);
/// assert!(chart.contains("PLD"));
/// assert!(chart.contains('█'));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
    log_scale: bool,
}

impl BarChart {
    /// Starts a chart with a title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            bars: Vec::new(),
            log_scale: false,
        }
    }

    /// Adds a labeled bar. Values must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    #[must_use]
    pub fn with_bar(mut self, label: impl Into<String>, value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar value must be non-negative and finite, got {value}"
        );
        self.bars.push((label.into(), value));
        self
    }

    /// Scales bar lengths logarithmically — for the paper's multi-decade
    /// spreads (0.93 µ$ to 240 µ$ would otherwise flatten everything).
    #[must_use]
    pub fn log_scale(mut self) -> Self {
        self.log_scale = true;
        self
    }

    /// Renders to a text block `width` characters wide.
    ///
    /// # Panics
    ///
    /// Panics when there are no bars, the width is too small for the
    /// labels, or log scale is requested with non-positive values.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        assert!(!self.bars.is_empty(), "bar chart has no bars");
        let label_width = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let value_width = self
            .bars
            .iter()
            .map(|(_, v)| format!("{v:.2}").len())
            .max()
            .unwrap_or(0);
        let bar_space = width
            .checked_sub(label_width + value_width + 4)
            .expect("width too small for labels");
        assert!(bar_space >= 5, "width too small for bars");

        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let min_positive = self
            .bars
            .iter()
            .map(|(_, v)| *v)
            .filter(|v| *v > 0.0)
            .fold(f64::INFINITY, f64::min);
        if self.log_scale {
            assert!(
                min_positive.is_finite(),
                "log scale needs at least one positive value"
            );
        }

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (label, value) in &self.bars {
            let fraction = if max <= 0.0 {
                0.0
            } else if self.log_scale {
                if *value <= 0.0 {
                    0.0
                } else {
                    // Map [min_positive, max] to [0.05, 1] in log space.
                    let lo = min_positive.ln();
                    let hi = max.ln();
                    if hi > lo {
                        0.05 + 0.95 * (value.ln() - lo) / (hi - lo)
                    } else {
                        1.0
                    }
                }
            } else {
                value / max
            };
            let cells = (fraction * bar_space as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "{label:<label_width$}  {}{}  {value:.2}\n",
                "█".repeat(cells),
                " ".repeat(bar_space - cells),
            ));
        }
        out.pop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart::new("t")
            .with_bar("a", 1.0)
            .with_bar("bb", 10.0)
            .with_bar("ccc", 100.0)
    }

    #[test]
    fn longest_bar_is_the_largest_value() {
        let rendered = chart().render(50);
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        let bar_len = |line: &str| line.chars().filter(|&c| c == '█').count();
        assert!(bar_len(lines[2]) > bar_len(lines[1]));
        assert!(bar_len(lines[1]) > bar_len(lines[0]));
    }

    #[test]
    fn linear_scale_is_proportional() {
        let rendered = BarChart::new("t")
            .with_bar("half", 5.0)
            .with_bar("full", 10.0)
            .render(60);
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        let bar_len = |line: &str| line.chars().filter(|&c| c == '█').count() as f64;
        let ratio = bar_len(lines[0]) / bar_len(lines[1]);
        assert!((ratio - 0.5).abs() < 0.06, "ratio {ratio}");
    }

    #[test]
    fn log_scale_compresses_decades() {
        let lin = chart().render(50);
        let log = chart().log_scale().render(50);
        let first_bar = |s: &str| {
            s.lines()
                .nth(1)
                .unwrap()
                .chars()
                .filter(|&c| c == '█')
                .count()
        };
        assert!(first_bar(&log) > first_bar(&lin));
    }

    #[test]
    fn values_printed_after_bars() {
        let rendered = chart().render(50);
        assert!(rendered.contains("100.00"));
        assert!(rendered.contains("1.00"));
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let rendered = BarChart::new("t")
            .with_bar("zero", 0.0)
            .with_bar("one", 1.0)
            .render(40);
        let first = rendered.lines().nth(1).unwrap();
        assert_eq!(first.chars().filter(|&c| c == '█').count(), 0);
    }

    #[test]
    #[should_panic(expected = "no bars")]
    fn empty_chart_panics() {
        let _ = BarChart::new("t").render(40);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bar_panics() {
        let _ = BarChart::new("t").with_bar("bad", -1.0);
    }
}
