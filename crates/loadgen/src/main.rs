//! `maly-loadgen` — drive a live `maly-serve` instance with seeded,
//! open-loop traffic and record latency percentiles + throughput.
//!
//! ```text
//! maly-loadgen [--addr HOST:PORT] [--connections 4] [--requests 64]
//!              [--seed 42] [--pace-ns 4000000] [--workers 4]
//!              [--json BENCH_serve.json]
//! ```
//!
//! Without `--addr` the generator self-hosts a loopback server (the
//! mode baselines are recorded in, so work counters start from a fresh
//! registry). `--json` writes the `BENCH_serve.json`-shaped report that
//! `xtask bench-check` gates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

use maly_loadgen::LoadgenConfig;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv).and_then(|(config, json_path)| {
        let report = maly_loadgen::run(&config).map_err(|e| e.to_string())?;
        if let Some(path) = json_path {
            std::fs::write(&path, maly_loadgen::render_json(&report))
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
        Ok(maly_loadgen::render_summary(&report))
    }) {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: maly-loadgen [--addr HOST:PORT] [--connections N] [--requests N] \
                     [--seed N] [--pace-ns N] [--workers N] [--json PATH]";

/// Parses the flag list into a config plus an optional JSON out-path.
fn parse_args(argv: &[String]) -> Result<(LoadgenConfig, Option<String>), String> {
    let mut config = LoadgenConfig::default();
    let mut json_path = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects {what}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = Some(value("HOST:PORT")?),
            "--json" => json_path = Some(value("a file path")?),
            "--connections" => config.connections = parse_num(&value("a count")?)?,
            "--requests" => config.requests = parse_num(&value("a count")?)?,
            "--workers" => config.workers = parse_num(&value("a count")?)?,
            "--seed" => config.seed = parse_num(&value("a seed")?)?,
            "--pace-ns" => config.pace_ns = parse_num(&value("nanoseconds")?)?,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((config, json_path))
}

fn parse_num<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("not a valid number: {text}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_override_defaults() {
        let argv: Vec<String> = [
            "--connections",
            "8",
            "--requests",
            "100",
            "--seed",
            "7",
            "--pace-ns",
            "500",
            "--json",
            "out.json",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let (config, json) = parse_args(&argv).expect("valid flags");
        assert_eq!(config.connections, 8);
        assert_eq!(config.requests, 100);
        assert_eq!(config.seed, 7);
        assert_eq!(config.pace_ns, 500);
        assert_eq!(config.addr, None);
        assert_eq!(json.as_deref(), Some("out.json"));
    }

    #[test]
    fn missing_value_and_unknown_flag_are_rejected() {
        let argv = vec!["--connections".to_string()];
        assert!(parse_args(&argv).is_err());
        let argv = vec!["--frobnicate".to_string()];
        assert!(parse_args(&argv).is_err());
    }
}
