//! `maly-loadgen` — an open-loop, deterministically seeded traffic
//! generator for the `maly-serve` TCP service.
//!
//! The generator drives a live server (either an external `--addr` or a
//! self-hosted loopback instance) with a seeded mix of request lines:
//! single `product` and `table3_row` queries plus duplicate-heavy batch
//! lines that exercise the evaluation-plan fusion path. Send times are
//! paced open-loop — request *i* on a connection departs at
//! `i * pace_ns` regardless of how fast responses return — so a slow
//! server accumulates visible queueing latency instead of silently
//! throttling the load (closed-loop coordinated omission).
//!
//! Every response is timed client-side and bucketed into detached
//! [`maly_obs::HistogramSnapshot`]s using the registry's exact
//! quarter-octave semantics, so the p50/p90/p99/p999 figures in
//! `BENCH_serve.json` are directly comparable with the server's own
//! span-attached histograms. After the run the generator asks the
//! server for [`maly_model::Query::ServerStats`] and records the
//! request-count-determined work counters — the deterministic slice of
//! the ledger that `xtask bench-check` gates exactly.
//!
//! Thread model: one writer plus one reader worker per connection, all
//! obtained through [`maly_par::Executor::run_workers`] — the
//! workspace's one sanctioned thread source. TCP ordering pairs
//! response *i* with request *i*, so a reader recovers per-request
//! latency from an [`AtomicU64`] send-time slot without any framing
//! beyond the protocol's own line discipline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use maly_model::json::Json;
use maly_model::query::ProductSpec;
use maly_model::{Error, Query};
use maly_obs::{HistResolution, HistogramSnapshot};
use maly_par::Executor;
use maly_serve::client;
use maly_serve::config::ServeConfig;
use maly_serve::server::Server;
use maly_yield_model::prng::{UniformSource, Xoshiro256PlusPlus};

/// Work counters whose values are fully determined by the request
/// sequence — the only counters a recorded baseline may gate exactly.
/// Tile-cell counters are deliberately absent: `model.tile_cells`
/// counts cache *misses*, and miss attribution races across
/// connections even though every response stays bit-identical.
pub const WORK_WHITELIST: &[&str] = &[
    "model.queries",
    "serve.batched_queries",
    "serve.request_lines",
];

/// The five workload families, in report order. Singles land in the
/// `serve/single` bench group, batch lines in `serve/batch`.
const KINDS: &[(&str, &str)] = &[
    ("product", "serve/single"),
    ("table3_row", "serve/single"),
    ("chiplet_partition", "serve/single"),
    ("tile_dup", "serve/batch"),
    ("mixed", "serve/batch"),
];

/// Fixed surface-tile windows. A small closed set makes duplicate
/// windows common across the run, so the server's warm tile cache and
/// the plan-level dedup both get exercised.
const TILE_WINDOWS: &[(f64, f64, usize, f64, f64, usize)] = &[
    (0.5, 0.9, 4, 1.0e5, 5.0e5, 4),
    (0.8, 1.2, 4, 2.0e5, 8.0e5, 4),
    (0.6, 1.0, 5, 1.0e5, 1.0e6, 4),
];

/// Generator knobs. `Default` matches the committed `BENCH_serve.json`
/// baseline so `maly-loadgen --json …` with no flags reproduces it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Target server, or `None` to self-host a loopback instance.
    pub addr: Option<String>,
    /// Concurrent client connections (each gets a writer + a reader).
    pub connections: usize,
    /// Request lines per connection.
    pub requests: usize,
    /// Base PRNG seed; each connection derives its own stream from it.
    pub seed: u64,
    /// Open-loop inter-departure gap per connection, in nanoseconds.
    pub pace_ns: u64,
    /// Worker threads for the self-hosted server (ignored with `addr`).
    pub workers: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: None,
            connections: 2,
            requests: 256,
            seed: 42,
            // Slow enough that the default mix stays below server
            // capacity on a modest machine: the recorded percentiles
            // then measure service time, not open-loop queueing blowup
            // (which grows nonlinearly with machine speed and would
            // make the baseline gate flaky). Two connections keep the
            // writer/reader thread count low — on small CI boxes,
            // oversubscription jitter lands straight in the tail.
            pace_ns: 4_000_000,
            workers: 2,
        }
    }
}

/// One request line plus the bookkeeping the reader needs to file its
/// latency sample.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Request {
    /// The wire line (no trailing newline).
    line: String,
    /// Index into [`KINDS`].
    kind: usize,
    /// Queries carried (1 for singles, element count for batches).
    queries: u64,
}

/// Client-side latency for one workload family.
#[derive(Debug, Clone)]
pub struct KindLatency {
    /// Family name (`product`, `table3_row`, `tile_dup`, `mixed`).
    pub kind: &'static str,
    /// Bench group (`serve/single` or `serve/batch`).
    pub group: &'static str,
    /// Detached quarter-octave histogram of request→response times.
    pub snapshot: HistogramSnapshot,
}

/// Everything one run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections driven.
    pub connections: usize,
    /// Request lines sent per connection.
    pub requests_per_connection: usize,
    /// Base seed the workload derived from.
    pub seed: u64,
    /// Open-loop pacing gap (ns).
    pub pace_ns: u64,
    /// Total request lines sent (excluding the final stats query).
    pub lines_sent: u64,
    /// Total queries carried by those lines (batch elements counted).
    pub queries_sent: u64,
    /// Wall-clock span of the drive phase (ns).
    pub elapsed_ns: u64,
    /// Client-side latency per workload family, in [`KINDS`] order.
    pub latency: Vec<KindLatency>,
    /// Whitelisted server work counters, name-sorted.
    pub work: Vec<(String, f64)>,
}

impl LoadgenReport {
    /// Request lines per second over the drive phase.
    #[must_use]
    pub fn lines_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.lines_sent as f64 * 1.0e9 / self.elapsed_ns as f64
    }
}

/// Runs the generator: against `config.addr` when set, otherwise
/// against a self-hosted loopback server that is shut down afterwards.
///
/// # Errors
///
/// Returns [`Error::Io`] when the server cannot be reached (or bound),
/// when any connection fails mid-run, or when the final stats query
/// comes back malformed.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, Error> {
    match &config.addr {
        Some(addr) => drive(addr, config),
        None => {
            let server = Server::bind(ServeConfig::bind("127.0.0.1:0").workers(config.workers))?;
            let handle = server.handle()?;
            let addr = handle.addr().to_string();
            let exec = Executor::with_threads(config.workers.max(1));
            let outcome: Mutex<Option<Result<LoadgenReport, Error>>> = Mutex::new(None);
            // Worker 0 (the calling thread) blocks in the accept loop;
            // worker 1 drives the load and then releases worker 0 with
            // a cooperative shutdown.
            Executor::with_threads(2).run_workers(|w| {
                if w == 0 {
                    server.serve(&exec);
                } else {
                    let result = drive(&addr, config);
                    handle.shutdown();
                    *lock(&outcome) = Some(result);
                }
            });
            outcome
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| Err(Error::Io("load driver never ran".to_string())))
        }
    }
}

/// Untimed warmup: touches every once-per-process artifact (the
/// calibration fits, each tile window in the cache, the paper tables)
/// on a throwaway connection, so the timed phase measures steady-state
/// service rather than cold-start work. Fixed queries — the warmup's
/// contribution to the server's work counters is as deterministic as
/// the seeded phase's.
fn warmup(addr: &str) -> Result<(), Error> {
    let mut queries: Vec<Query> = TILE_WINDOWS.iter().map(window_query).collect();
    queries.push(Query::Table3);
    queries.push(Query::Product(ProductSpec {
        name: "warmup".to_string(),
        transistors: 1.0e6,
        lambda_um: 0.8,
        density: 150.0,
        radius_cm: 7.5,
        yield0: 0.9,
        c0: 700.0,
        x: 1.4,
    }));
    queries.push(Query::ProductMix {
        products: 4,
        volume_each: 1_000.0,
        mono_volume: 50_000.0,
    });
    queries.push(Query::ChipletPartitionSweep {
        transistors: 2.0e6,
        volume: 100_000,
        lambda_min: 0.5,
        lambda_max: 1.2,
        lambda_steps: 8,
        max_chiplets: 6,
        max_spares: 1,
    });
    let lines: Vec<String> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| element(-1.0 - i as f64, q))
        .collect();
    client::query_lines(addr, &lines).map(drop)
}

/// Drives a live server at `addr` and gathers the report.
fn drive(addr: &str, config: &LoadgenConfig) -> Result<LoadgenReport, Error> {
    warmup(addr)?;
    let connections = config.connections.max(1);
    let per_conn: Vec<Vec<Request>> = (0..connections)
        .map(|c| workload(config.seed, c as u64, config.requests.max(1)))
        .collect();
    let streams = (0..connections)
        .map(|_| client::connect(addr))
        .collect::<Result<Vec<TcpStream>, Error>>()?;
    let send_ns: Vec<Vec<AtomicU64>> = per_conn
        .iter()
        .map(|reqs| reqs.iter().map(|_| AtomicU64::new(0)).collect())
        .collect();
    let sinks: Vec<Mutex<Vec<u64>>> = KINDS.iter().map(|_| Mutex::new(Vec::new())).collect();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let epoch = Instant::now();
    // Even workers write (paced), odd workers read (and time); worker
    // pair `2c`/`2c+1` owns connection `c`.
    Executor::with_threads(2 * connections).run_workers(|w| {
        let conn = w / 2;
        let outcome = if w % 2 == 0 {
            write_loop(
                &streams[conn],
                &per_conn[conn],
                config.pace_ns,
                epoch,
                &send_ns[conn],
            )
        } else {
            read_loop(
                &streams[conn],
                &per_conn[conn],
                epoch,
                &send_ns[conn],
                &sinks,
            )
        };
        if let Err(e) = outcome {
            lock(&failures).push(format!("connection {conn}: {e}"));
        }
    });
    let elapsed_ns = elapsed_since(epoch);
    drop(streams);
    let failures = failures
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    if !failures.is_empty() {
        return Err(Error::Io(failures.join("; ")));
    }
    let latency = KINDS
        .iter()
        .zip(&sinks)
        .map(|(&(kind, group), sink)| KindLatency {
            kind,
            group,
            snapshot: detached_snapshot(kind, &lock(sink)),
        })
        .collect();
    let (lines_sent, queries_sent) = per_conn
        .iter()
        .flatten()
        .fold((0u64, 0u64), |(l, q), r| (l + 1, q + r.queries));
    Ok(LoadgenReport {
        connections,
        requests_per_connection: config.requests.max(1),
        seed: config.seed,
        pace_ns: config.pace_ns,
        lines_sent,
        queries_sent,
        elapsed_ns,
        latency,
        work: work_counters(addr)?,
    })
}

/// Writes a connection's lines at their open-loop departure times,
/// stamping each send instant for the paired reader.
fn write_loop(
    stream: &TcpStream,
    requests: &[Request],
    pace_ns: u64,
    epoch: Instant,
    send_ns: &[AtomicU64],
) -> Result<(), Error> {
    let mut writer = stream;
    for (i, request) in requests.iter().enumerate() {
        let due = (i as u64).saturating_mul(pace_ns);
        loop {
            let now = elapsed_since(epoch);
            if now >= due {
                break;
            }
            std::thread::sleep(std::time::Duration::from_nanos(due - now));
        }
        send_ns[i].store(elapsed_since(epoch), Ordering::Release);
        writer.write_all(request.line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Reads a connection's responses in order, filing one latency sample
/// per line into the family's sink.
fn read_loop(
    stream: &TcpStream,
    requests: &[Request],
    epoch: Instant,
    send_ns: &[AtomicU64],
    sinks: &[Mutex<Vec<u64>>],
) -> Result<(), Error> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for (i, request) in requests.iter().enumerate() {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(Error::Io(format!(
                "server closed after {i} of {} responses",
                requests.len()
            )));
        }
        let now = elapsed_since(epoch);
        let sent = send_ns[i].load(Ordering::Acquire);
        let trimmed = line.trim_start();
        if !(trimmed.starts_with('{') || trimmed.starts_with('[')) {
            return Err(Error::Io(format!("malformed response line: {trimmed}")));
        }
        lock(&sinks[request.kind]).push(now.saturating_sub(sent));
    }
    Ok(())
}

/// Fetches the server's stats snapshot and keeps the whitelisted,
/// request-count-determined work counters (name-sorted).
fn work_counters(addr: &str) -> Result<Vec<(String, f64)>, Error> {
    let stats = client::query_one(addr, &Query::ServerStats)?;
    let Some(Json::Obj(pairs)) = stats.get("work").cloned() else {
        return Err(Error::Io(
            "server_stats payload carries no work section".to_string(),
        ));
    };
    let mut work: Vec<(String, f64)> = pairs
        .into_iter()
        .filter(|(name, _)| WORK_WHITELIST.contains(&name.as_str()))
        .filter_map(|(name, value)| value.as_f64().map(|v| (name, v)))
        .collect();
    work.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(work)
}

/// Builds the seeded request mix for one connection. Pure function of
/// `(seed, conn, requests)` — the whole workload, ids included, is
/// reproducible, which is what makes the server's work counters
/// baseline-comparable.
fn workload(seed: u64, conn: u64, requests: usize) -> Vec<Request> {
    let mut rng =
        Xoshiro256PlusPlus::seed_from_u64(seed ^ (conn + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut out = Vec::with_capacity(requests);
    for i in 0..requests {
        let id = (conn * 1_000_000 + i as u64) as f64;
        let roll = rng.next_u64() % 100;
        out.push(if roll < 30 {
            single(id, 0, &Query::Product(product_spec(&mut rng)))
        } else if roll < 52 {
            single(id, 1, &table3_row(&mut rng))
        } else if roll < 64 {
            single(id, 2, &chiplet_sweep(&mut rng))
        } else if roll < 82 {
            tile_dup_batch(id, &mut rng)
        } else {
            mixed_batch(id, &mut rng)
        });
    }
    out
}

/// One single-query request line.
fn single(id: f64, kind: usize, query: &Query) -> Request {
    Request {
        line: element(id, query),
        kind,
        queries: 1,
    }
}

/// A duplicate-heavy batch: one tile window repeated 2–3 times plus a
/// Table 3 row — the plan fusion path answers the repeats from one
/// evaluation.
fn tile_dup_batch(id: f64, rng: &mut Xoshiro256PlusPlus) -> Request {
    let tile = tile_query(rng);
    let copies = 2 + (rng.next_u64() % 2);
    let mut elements: Vec<String> = (0..copies)
        .map(|j| element(id + j as f64 / 10.0, &tile))
        .collect();
    elements.push(element(id + 0.9, &table3_row(rng)));
    batch(elements, 3)
}

/// A mixed batch: a duplicated product, a tile, and a product-mix
/// study — fusion dedups the product pair, the rest evaluate fresh.
fn mixed_batch(id: f64, rng: &mut Xoshiro256PlusPlus) -> Request {
    let product = Query::Product(product_spec(rng));
    let elements = vec![
        element(id, &product),
        element(id + 0.1, &tile_query(rng)),
        element(id + 0.2, &product),
        element(
            id + 0.3,
            &Query::ProductMix {
                products: 2 + (rng.next_u64() % 6) as usize,
                volume_each: 1_000.0,
                mono_volume: 50_000.0,
            },
        ),
    ];
    batch(elements, 4)
}

fn batch(elements: Vec<String>, kind: usize) -> Request {
    Request {
        queries: elements.len() as u64,
        line: format!("[{}]", elements.join(", ")),
        kind,
    }
}

fn element(id: f64, query: &Query) -> String {
    Json::obj(vec![("id", Json::Num(id)), ("query", query.to_json())]).write()
}

fn product_spec(rng: &mut Xoshiro256PlusPlus) -> ProductSpec {
    const TRANSISTORS: &[f64] = &[1.0e6, 2.0e6, 3.1e6, 5.0e6];
    const LAMBDAS: &[f64] = &[0.5, 0.7, 0.8, 1.0];
    ProductSpec {
        name: "loadgen".to_string(),
        transistors: TRANSISTORS[(rng.next_u64() % 4) as usize],
        lambda_um: LAMBDAS[(rng.next_u64() % 4) as usize],
        density: 150.0,
        radius_cm: 7.5,
        yield0: 0.9,
        c0: 700.0,
        x: if rng.next_u64() % 2 == 0 { 1.4 } else { 2.4 },
    }
}

fn table3_row(rng: &mut Xoshiro256PlusPlus) -> Query {
    Query::Table3Row {
        id: 1 + (rng.next_u64() % 17) as u8,
    }
}

/// A small partition search (8 λ × 6 chiplet counts × 2 spare levels =
/// 96 candidates) over a closed set of system sizes and volumes, sized
/// so a single request costs the same order as a tile batch.
fn chiplet_sweep(rng: &mut Xoshiro256PlusPlus) -> Query {
    const TRANSISTORS: &[f64] = &[1.0e6, 2.0e6];
    const VOLUMES: &[u64] = &[50_000, 100_000];
    Query::ChipletPartitionSweep {
        transistors: TRANSISTORS[(rng.next_u64() % 2) as usize],
        volume: VOLUMES[(rng.next_u64() % 2) as usize],
        lambda_min: 0.5,
        lambda_max: 1.2,
        lambda_steps: 8,
        max_chiplets: 6,
        max_spares: 1,
    }
}

fn tile_query(rng: &mut Xoshiro256PlusPlus) -> Query {
    window_query(&TILE_WINDOWS[(rng.next_u64() % TILE_WINDOWS.len() as u64) as usize])
}

fn window_query(window: &(f64, f64, usize, f64, f64, usize)) -> Query {
    let &(lambda_min, lambda_max, lambda_steps, n_tr_min, n_tr_max, n_tr_steps) = window;
    Query::SurfaceTile {
        lambda_min,
        lambda_max,
        lambda_steps,
        n_tr_min,
        n_tr_max,
        n_tr_steps,
    }
}

/// Buckets raw samples with the registry's exact quarter-octave
/// semantics, so percentiles here and in the server's exported
/// histograms interpolate identically.
fn detached_snapshot(name: &'static str, samples: &[u64]) -> HistogramSnapshot {
    let resolution = HistResolution::HighRes;
    let mut buckets = vec![0u64; resolution.bucket_count()];
    let mut total_ns = 0u64;
    for &ns in samples {
        buckets[resolution.index_for(ns)] += 1;
        total_ns = total_ns.saturating_add(ns);
    }
    HistogramSnapshot {
        name,
        resolution,
        count: samples.len() as u64,
        total_ns,
        buckets,
    }
}

/// Renders the report in the `BENCH_sweeps.json`-compatible layout
/// `xtask bench-check` parses: a parallelism header, `benches` records
/// with `median_ns` + percentile fields, a `throughput` record (keyed
/// `per_sec`, invisible to the median and counter gates by design),
/// and the exactly-gated `counters` whitelist.
#[must_use]
pub fn render_json(report: &LoadgenReport) -> String {
    let threads_env = std::env::var(maly_par::THREADS_ENV_VAR).ok();
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        maly_par::default_parallelism()
    ));
    out.push_str(&format!(
        "  \"maly_par_threads\": {},\n",
        threads_env.map_or_else(|| "null".to_string(), |t| format!("\"{t}\""))
    ));
    out.push_str(&format!(
        "  \"loadgen\": {{\"connections\": {}, \"requests_per_connection\": {}, \
         \"seed\": {}, \"pace_ns\": {}}},\n",
        report.connections, report.requests_per_connection, report.seed, report.pace_ns
    ));
    out.push_str("  \"benches\": [\n");
    for (i, family) in report.latency.iter().enumerate() {
        let comma = if i + 1 < report.latency.len() {
            ","
        } else {
            ""
        };
        let p = family.snapshot.latency_percentiles();
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns\": {:.1}, \
             \"p90_ns\": {:.1}, \"p99_ns\": {:.1}, \"p999_ns\": {:.1}, \"samples\": {}}}{comma}\n",
            family.group,
            family.kind,
            p.p50_ns,
            p.p90_ns,
            p.p99_ns,
            p.p999_ns,
            family.snapshot.count
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"throughput\": [\n");
    out.push_str(&format!(
        "    {{\"group\": \"serve/throughput\", \"name\": \"request_lines\", \
         \"per_sec\": {:.3}, \"elapsed_ns\": {}}}\n",
        report.lines_per_sec(),
        report.elapsed_ns
    ));
    out.push_str("  ],\n");
    out.push_str("  \"counters\": [\n");
    let mut counters: Vec<(String, f64)> = vec![
        ("loadgen.lines_sent".to_string(), report.lines_sent as f64),
        (
            "loadgen.queries_sent".to_string(),
            report.queries_sent as f64,
        ),
    ];
    counters.extend(report.work.iter().cloned());
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"group\": \"serve/work\", \"name\": \"{name}\", \"value\": {value}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A human summary for the terminal (the JSON file is the artifact).
#[must_use]
pub fn render_summary(report: &LoadgenReport) -> String {
    let mut out = format!(
        "loadgen: {} lines ({} queries) over {} connections in {:.1} ms — {:.0} lines/s\n",
        report.lines_sent,
        report.queries_sent,
        report.connections,
        report.elapsed_ns as f64 / 1.0e6,
        report.lines_per_sec()
    );
    for family in &report.latency {
        let p = family.snapshot.latency_percentiles();
        out.push_str(&format!(
            "  {:>10}  n={:<4} p50={:>9.0}ns p90={:>9.0}ns p99={:>9.0}ns p999={:>9.0}ns\n",
            family.kind, family.snapshot.count, p.p50_ns, p.p90_ns, p.p99_ns, p.p999_ns
        ));
    }
    for (name, value) in &report.work {
        out.push_str(&format!("  work {name} = {value}\n"));
    }
    out
}

fn elapsed_since(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_connection_distinct() {
        let a = workload(42, 0, 32);
        let b = workload(42, 0, 32);
        let c = workload(42, 1, 32);
        assert_eq!(a, b, "same seed and connection replay byte-identically");
        assert_ne!(a, c, "connections derive distinct streams");
        assert_eq!(a.len(), 32);
        let mut seen = [false; 5];
        for request in &a {
            assert!(request.kind < KINDS.len());
            assert!(request.queries >= 1);
            if request.kind >= 3 {
                assert!(request.line.starts_with('['), "batches are array lines");
                assert!(request.queries >= 3);
            }
            seen[request.kind] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "32 requests cover every workload family"
        );
    }

    #[test]
    fn workload_lines_parse_as_protocol_json() {
        for request in workload(7, 3, 16) {
            let v = maly_model::json::parse(&request.line).expect("valid JSON");
            match v {
                Json::Arr(elems) => assert_eq!(elems.len() as u64, request.queries),
                Json::Obj(_) => assert_eq!(request.queries, 1),
                other => panic!("unexpected request shape: {other:?}"),
            }
        }
    }

    #[test]
    fn detached_snapshot_matches_registry_bucketing() {
        let samples = [100, 100, 200, 400, 800, 100_000];
        let snap = detached_snapshot("test", &samples);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.total_ns, samples.iter().sum::<u64>());
        assert_eq!(snap.buckets.iter().sum::<u64>(), 6);
        let p50 = snap.percentile_ns(0.50);
        assert!(p50 >= 100.0 && p50 <= 400.0, "median near the mass: {p50}");
        assert!(snap.percentile_ns(1.0) >= 65_536.0, "max lands high");
    }

    #[test]
    fn render_json_has_every_gated_section() {
        let report = LoadgenReport {
            connections: 2,
            requests_per_connection: 8,
            seed: 42,
            pace_ns: 1_000,
            lines_sent: 16,
            queries_sent: 30,
            elapsed_ns: 2_000_000,
            latency: KINDS
                .iter()
                .map(|&(kind, group)| KindLatency {
                    kind,
                    group,
                    snapshot: detached_snapshot(kind, &[1_000, 2_000, 4_000]),
                })
                .collect(),
            work: vec![
                ("model.queries".to_string(), 31.0),
                ("serve.request_lines".to_string(), 17.0),
            ],
        };
        let json = render_json(&report);
        assert!(json.contains("\"available_parallelism\": "));
        assert!(json.contains("\"maly_par_threads\": "));
        assert!(json.contains("\"group\": \"serve/single\", \"name\": \"product\""));
        assert!(json.contains("\"group\": \"serve/single\", \"name\": \"chiplet_partition\""));
        assert!(json.contains("\"group\": \"serve/batch\", \"name\": \"mixed\""));
        assert!(json.contains("\"median_ns\": "));
        assert!(json.contains("\"p99_ns\": "));
        assert!(json.contains("\"per_sec\": "));
        assert!(json.contains("\"name\": \"model.queries\", \"value\": 31"));
        assert!(
            !json.contains("\"per_sec\": 0.000"),
            "throughput is non-zero"
        );
        assert_eq!(report.lines_per_sec(), 8_000.0);
    }

    #[test]
    fn self_hosted_run_reports_deterministic_work_counters() {
        let config = LoadgenConfig {
            connections: 2,
            requests: 6,
            pace_ns: 0,
            workers: 2,
            ..LoadgenConfig::default()
        };
        let before_lines = lines_counter();
        let report = run(&config).expect("self-hosted run");
        assert_eq!(report.lines_sent, 12);
        assert!(report.queries_sent >= 12);
        let sampled: u64 = report.latency.iter().map(|f| f.snapshot.count).sum();
        assert_eq!(sampled, 12, "every line yields exactly one sample");
        assert!(report.elapsed_ns > 0);
        // The self-hosted server shares this process's registry: the
        // run adds its 12 timed lines, the 7 fixed warmup lines, and
        // the final stats query.
        assert_eq!(
            lines_counter() - before_lines,
            20.0,
            "work ledger advances by warmup + timed lines + the stats line"
        );
        let names: Vec<&str> = report.work.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            WORK_WHITELIST.to_vec(),
            "every whitelisted counter reports"
        );
    }

    fn lines_counter() -> f64 {
        maly_serve::protocol::REQUEST_LINES.value() as f64
    }
}
