//! Multi-die partition economics — the chiplet cost question grown out
//! of the paper's Sec. VI MCM discussion ("packaging is the cost
//! multiplier the die model alone can't see").
//!
//! A system of `N_tr` transistors is split into `n` equal chiplets
//! fabricated at feature size `λ`, plus an optional `s` spare chiplets
//! for redundancy-enhanced yield recovery. The cost of one *good*
//! system composes four layers of the existing stack:
//!
//! * **die cost** — eq. (1)–(7) per chiplet via
//!   [`SurfaceParameters::cost_at`] (the lane-batched
//!   [`SurfaceParameters::costs_for_points`] kernel underneath the
//!   partition sweep);
//! * **known-good-die test cost** — the \[31\] KGD supply model from
//!   `maly-test-economics`: paying a per-die test cost buys a residual
//!   defect level, [`DieSupply::known_good`];
//! * **packaging / bonding** — a package base cost plus one bond per
//!   joint, with assembly yield `Y_asm^(m−1)` over `m = n + s` mounted
//!   dies (a monolithic die has no joints and no assembly risk);
//! * **NRE amortization** — per-design NRE, plus an interposer NRE for
//!   multi-die packages, divided by the production volume `V`.
//!
//! The partition sweep ([`ChipletParameters::sweep`]) then answers the
//! CATCH-style question: *given `N_tr` total, how many chiplets of what
//! size minimize \$/system at volume `V`?* Small dies yield better and
//! may be the only feasible option for large `N_tr`, but every extra
//! die pays test, bonding, assembly fallout, and interposer NRE — the
//! optimum moves with volume and defectivity.
//!
//! The model forms follow Chiplet Actuary (arXiv 2203.12268) and CATCH
//! (arXiv 2503.15753); calibration defaults stay in the paper's 1994
//! operating point (Fig 8 wafer economics). See DESIGN.md §15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use maly_cost_model::surface::SurfaceParameters;
// Re-exported so callers can name the error type every public entry
// point here returns without depending on maly-cost-model directly.
pub use maly_cost_model::CostError;
use maly_par::Executor;
use maly_test_economics::mcm::DieSupply;
use maly_units::{Dollars, Microns, Probability, TransistorCount, UnitError};

/// Chiplet partitions priced end-to-end (die + test + assembly + NRE).
/// Work counter: the sweep prices every grid candidate exactly once
/// regardless of thread count, so this is thread-count-invariant.
pub static PARTITIONS: maly_obs::Counter = maly_obs::Counter::work("chiplet.partitions");

/// Eq. (1) die-cost points dispatched through the lane-batched surface
/// kernel on behalf of a partition sweep (one per unique `(λ, n)` pair;
/// spares reuse the same die point). Thread-count-invariant Work
/// counter.
pub static DIE_POINTS: maly_obs::Counter = maly_obs::Counter::work("chiplet.die_points");

/// Calibration of the multi-die cost model.
///
/// Every monetary/probabilistic knob is a maly-units newtype; the
/// defaults ([`ChipletParameters::fig8_mcm`]) extend the Fig 8 wafer
/// calibration with the \[30, 31\] MCM operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipletParameters {
    /// Wafer/die economics — eq. (1)–(7) calibration.
    pub surface: SurfaceParameters,
    /// Defect level of probe-only dies (wafer-probe escapes).
    pub probe_defect_level: Probability,
    /// Per-die burn-in + full-test cost that upgrades a probe-only die
    /// to known-good.
    pub kgd_test_cost: Dollars,
    /// Residual defect level of a known-good die.
    pub kgd_residual_dl: Probability,
    /// Per-joint assembly yield `Y_asm` (bonding survives with this
    /// probability; a partition with `m` mounted dies has `m − 1`
    /// joints).
    pub bond_yield: Probability,
    /// Package/substrate base cost (paid once per system attempt).
    pub package_base: Dollars,
    /// Cost of one bond (per joint).
    pub bond_cost: Dollars,
    /// NRE per chiplet design (masks, validation). Equal-split
    /// partitions reuse one design for all chiplets.
    pub nre_design: Dollars,
    /// Extra NRE for a multi-die package (interposer design, bonding
    /// bring-up). Zero joints → not paid.
    pub nre_interposer: Dollars,
}

impl ChipletParameters {
    /// The default calibration: Fig 8 wafer economics (`C₀ = $500`,
    /// `X = 1.4`, six-inch wafer, `d_d = 152`) extended with the MCM
    /// study's test/assembly operating point — 5% probe escapes,
    /// \$2.50/die KGD testing buying 0.1% residual DL, 99% per-joint
    /// bond yield, \$15 package base, \$2 per bond, \$250k design NRE
    /// and \$100k interposer NRE.
    #[must_use]
    pub fn fig8_mcm() -> Self {
        Self {
            surface: SurfaceParameters::fig8(),
            probe_defect_level: Probability::const_new(0.05),
            kgd_test_cost: Dollars::const_new(2.5),
            kgd_residual_dl: Probability::const_new(0.001),
            bond_yield: Probability::const_new(0.99),
            package_base: Dollars::const_new(15.0),
            bond_cost: Dollars::const_new(2.0),
            nre_design: Dollars::const_new(250_000.0),
            nre_interposer: Dollars::const_new(100_000.0),
        }
    }

    /// Prices one partition end-to-end.
    ///
    /// # Errors
    ///
    /// Returns an error when the partition is degenerate (zero chiplets
    /// or volume) or the per-chiplet die is infeasible at `λ` (die too
    /// large, yield collapsed).
    pub fn price_partition(&self, partition: &Partition) -> Result<PartitionCost, CostError> {
        PARTITIONS.incr();
        DIE_POINTS.incr();
        let per_chiplet = partition.transistors_per_chiplet()?;
        let cost_per_transistor = self.surface.cost_at(partition.lambda, per_chiplet)?.value();
        self.finish_partition(partition, per_chiplet, cost_per_transistor)
            .ok_or_else(infeasible)
    }

    /// Completes the pricing of one partition from an already-evaluated
    /// eq. (1) cost-per-transistor value (the sweep batches those
    /// through the lane kernel). `None` when yield collapses to zero.
    fn finish_partition(
        &self,
        partition: &Partition,
        per_chiplet: TransistorCount,
        cost_per_transistor: f64,
    ) -> Option<PartitionCost> {
        if partition.volume == 0 {
            return None;
        }
        let bare_die_cost = Dollars::new(cost_per_transistor * per_chiplet.value()).ok()?;
        let supply = DieSupply::known_good(
            DieSupply::probe_only(bare_die_cost, self.probe_defect_level),
            self.kgd_test_cost,
            self.kgd_residual_dl,
        );

        let needed = partition.chiplets;
        let mounted = needed.checked_add(partition.spares)?;
        let joints = mounted - 1;
        let assembly_yield = powi_prob(self.bond_yield, joints);
        // A system is logic-good when at least `needed` of the `mounted`
        // dies escape the residual defect level.
        let die_good = supply.defect_level.complement();
        let logic_yield = at_least_k_good(mounted, needed, die_good.value());
        let system_yield = assembly_yield.value() * logic_yield;
        if system_yield <= 0.0 {
            return None;
        }

        let packaging_cost = self.package_base + self.bond_cost * f64::from(joints);
        let build_cost = supply.die_cost * f64::from(mounted) + packaging_cost;
        let nre = if joints > 0 {
            self.nre_design + self.nre_interposer
        } else {
            self.nre_design
        };
        // `volume` is at most 2^53-class in practice; the lossy cast is
        // exact for every volume a sweep accepts.
        #[allow(clippy::cast_precision_loss)]
        let nre_per_system = nre / (partition.volume as f64);
        let cost_per_system = build_cost / system_yield + nre_per_system;

        Some(PartitionCost {
            chiplets: needed,
            spares: partition.spares,
            lambda: partition.lambda,
            transistors_per_chiplet: per_chiplet,
            known_good_die_cost: supply.die_cost,
            assembly_yield,
            system_yield: Probability::new(system_yield).ok()?,
            packaging_cost,
            nre_per_system,
            cost_per_system,
        })
    }

    /// Runs the partition search: for every `(λ, n, s)` grid candidate,
    /// prices the partition and returns the deterministic arg-min (ties
    /// resolve to the lowest chiplet count, then smallest `λ`, then
    /// fewest spares — grid order).
    ///
    /// Die costs for the `λ × n` grid go through the lane-batched
    /// [`SurfaceParameters::costs_for_points`] in one dispatch; the
    /// per-candidate assembly/NRE composition then fans out over the
    /// executor. Work done is thread-count-invariant: every candidate
    /// is priced exactly once.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is degenerate (empty grid, zero
    /// volume, inverted λ window) or no grid candidate is feasible.
    pub fn sweep(&self, spec: &SweepSpec, exec: &Executor) -> Result<SweepOutcome, CostError> {
        spec.validate()?;
        let _span = maly_obs::span("chiplet.sweep");
        let lambdas = spec.lambdas();

        // One die-cost point per (λ, n): spares mount more of the same
        // die, so the eq. (1) batch is the λ × n grid, not λ × n × s.
        let mut points: Vec<(Microns, TransistorCount)> =
            Vec::with_capacity(lambdas.len() * spec.max_chiplets as usize);
        for n in 1..=spec.max_chiplets {
            let per_chiplet = TransistorCount::new(spec.system_transistors.value() / f64::from(n))?;
            for &lambda in &lambdas {
                points.push((lambda, per_chiplet));
            }
        }
        DIE_POINTS.add(points.len() as u64);
        let die_costs = self.surface.costs_for_points(&points);

        let spares_per = spec.max_spares as usize + 1;
        let evaluated = points.len() * spares_per;
        PARTITIONS.add(evaluated as u64);

        let candidates = exec.map_indexed(evaluated, |k| {
            let point = k / spares_per;
            let spares = (k % spares_per) as u32;
            let cost_per_transistor = die_costs[point]?;
            let (lambda, per_chiplet) = points[point];
            let chiplets = (point / lambdas.len()) as u32 + 1;
            let partition = Partition {
                chiplets,
                spares,
                lambda,
                system_transistors: spec.system_transistors,
                volume: spec.volume,
            };
            self.finish_partition(&partition, per_chiplet, cost_per_transistor)
        });

        // Serial index-ordered reduction: strict less-than keeps the
        // arg-min deterministic for any thread count.
        let mut per_chiplet_count: Vec<PartitionCost> = Vec::new();
        let mut feasible = 0usize;
        for n in 1..=spec.max_chiplets as usize {
            let block = (n - 1) * lambdas.len() * spares_per..n * lambdas.len() * spares_per;
            let mut best_for_n: Option<PartitionCost> = None;
            for candidate in candidates[block].iter().flatten() {
                feasible += 1;
                let better = best_for_n
                    .as_ref()
                    .is_none_or(|b| candidate.cost_per_system < b.cost_per_system);
                if better {
                    best_for_n = Some(*candidate);
                }
            }
            if let Some(best) = best_for_n {
                per_chiplet_count.push(best);
            }
        }
        let best = per_chiplet_count
            .iter()
            .copied()
            .reduce(|a, b| {
                if b.cost_per_system < a.cost_per_system {
                    b
                } else {
                    a
                }
            })
            .ok_or_else(infeasible)?;

        Ok(SweepOutcome {
            evaluated,
            feasible,
            best,
            per_chiplet_count,
        })
    }
}

/// One candidate partition: `chiplets` equal dies (plus `spares`
/// redundant ones) carrying `system_transistors` in total, fabricated
/// at `lambda`, amortized over `volume` systems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Dies required for a working system (`n ≥ 1`).
    pub chiplets: u32,
    /// Redundant dies mounted beyond `chiplets`.
    pub spares: u32,
    /// Feature size.
    pub lambda: Microns,
    /// Total system transistor count (split equally over `chiplets`).
    pub system_transistors: TransistorCount,
    /// Production volume the NRE amortizes over.
    pub volume: u64,
}

impl Partition {
    /// Transistors per chiplet: the equal split `N_tr / n`.
    ///
    /// # Errors
    ///
    /// Returns an error when `chiplets` is zero.
    pub fn transistors_per_chiplet(&self) -> Result<TransistorCount, CostError> {
        if self.chiplets == 0 {
            return Err(CostError::InvalidInput(UnitError::NotPositive {
                quantity: "chiplets",
                value: 0.0,
            }));
        }
        Ok(TransistorCount::new(
            self.system_transistors.value() / f64::from(self.chiplets),
        )?)
    }
}

/// The priced breakdown of one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionCost {
    /// Dies required for a working system.
    pub chiplets: u32,
    /// Redundant dies mounted.
    pub spares: u32,
    /// Feature size.
    pub lambda: Microns,
    /// Transistors on each die.
    pub transistors_per_chiplet: TransistorCount,
    /// Per-die cost delivered known-good (bare die + KGD test).
    pub known_good_die_cost: Dollars,
    /// `Y_asm^(m−1)` over the `m − 1` joints.
    pub assembly_yield: Probability,
    /// Assembly yield × P(enough dies escape the residual DL).
    pub system_yield: Probability,
    /// Package base plus per-joint bonding.
    pub packaging_cost: Dollars,
    /// NRE (design, plus interposer when multi-die) over volume.
    pub nre_per_system: Dollars,
    /// Expected cost of one good system: build cost over system yield,
    /// plus amortized NRE.
    pub cost_per_system: Dollars,
}

/// The partition-search grid: `λ` window × chiplet count × spares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    /// Total system transistor count.
    pub system_transistors: TransistorCount,
    /// Production volume.
    pub volume: u64,
    /// Smallest feature size probed.
    pub lambda_min: Microns,
    /// Largest feature size probed.
    pub lambda_max: Microns,
    /// Grid points along λ (≥ 1; endpoints included).
    pub lambda_steps: usize,
    /// Largest chiplet count probed (`n` runs 1..=this).
    pub max_chiplets: u32,
    /// Largest spare count probed (`s` runs 0..=this).
    pub max_spares: u32,
}

impl SweepSpec {
    /// Total candidates the sweep prices.
    #[must_use]
    pub fn candidates(&self) -> usize {
        self.lambda_steps * self.max_chiplets as usize * (self.max_spares as usize + 1)
    }

    fn validate(&self) -> Result<(), CostError> {
        if self.lambda_steps == 0 {
            return Err(CostError::InvalidInput(UnitError::NotPositive {
                quantity: "lambda steps",
                value: 0.0,
            }));
        }
        if self.max_chiplets == 0 {
            return Err(CostError::InvalidInput(UnitError::NotPositive {
                quantity: "max chiplets",
                value: 0.0,
            }));
        }
        if self.volume == 0 {
            return Err(CostError::InvalidInput(UnitError::NotPositive {
                quantity: "volume",
                value: 0.0,
            }));
        }
        if self.lambda_max.value() < self.lambda_min.value() {
            return Err(CostError::InvalidInput(UnitError::OutOfRange {
                quantity: "lambda window",
                value: self.lambda_max.value(),
                min: self.lambda_min.value(),
                max: f64::INFINITY,
            }));
        }
        Ok(())
    }

    /// The λ grid: `lambda_steps` points from min to max inclusive.
    fn lambdas(&self) -> Vec<Microns> {
        if self.lambda_steps == 1 {
            return vec![self.lambda_min];
        }
        let lo = self.lambda_min.value();
        let hi = self.lambda_max.value();
        #[allow(clippy::cast_precision_loss)]
        let span = (hi - lo) / (self.lambda_steps - 1) as f64;
        (0..self.lambda_steps)
            .map(|i| {
                #[allow(clippy::cast_precision_loss)]
                let v = lo + span * i as f64;
                // The grid stays inside the validated window, so the
                // clamp only guards float round-off at the top end.
                Microns::new(v.min(hi)).unwrap_or(self.lambda_min)
            })
            .collect()
    }
}

/// The result of a partition search.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Grid candidates priced (feasible or not).
    pub evaluated: usize,
    /// Candidates with a feasible die and non-zero system yield.
    pub feasible: usize,
    /// The deterministic arg-min over the grid.
    pub best: PartitionCost,
    /// The best feasible partition at each chiplet count (ascending
    /// `n`; infeasible counts are omitted).
    pub per_chiplet_count: Vec<PartitionCost>,
}

/// `P(at least k of n independent trials succeed)` at per-trial
/// probability `p` — the redundancy recovery term. Exact binomial tail;
/// `n` is a mounted-die count, far below any overflow concern.
fn at_least_k_good(n: u32, k: u32, p: f64) -> f64 {
    let q = 1.0 - p;
    let mut tail = 0.0;
    // C(n, j) built incrementally: C(n, 0) = 1, C(n, j) = C(n, j−1)·(n−j+1)/j.
    let mut binom = 1.0;
    let mut term_p = 1.0; // p^j
    let mut sum_below = 0.0;
    // Accumulate P(fewer than k good) and return the complement — for
    // the usual case k close to n this keeps the loop short and the
    // arithmetic identical across platforms (pure f64 adds/muls).
    for j in 0..k {
        let q_pow = powi_f64(q, n - j);
        sum_below += binom * term_p * q_pow;
        binom *= f64::from(n - j) / f64::from(j + 1);
        term_p *= p;
    }
    tail += 1.0 - sum_below;
    tail.clamp(0.0, 1.0)
}

/// `p^k` by exponentiation-by-squaring on the raw value — deterministic
/// and `powf`-free on the sweep's per-candidate path.
fn powi_f64(base: f64, exp: u32) -> f64 {
    let mut result = 1.0;
    let mut base = base;
    let mut exp = exp;
    while exp > 0 {
        if exp & 1 == 1 {
            result *= base;
        }
        base *= base;
        exp >>= 1;
    }
    result
}

fn powi_prob(p: Probability, exp: u32) -> Probability {
    Probability::new(powi_f64(p.value(), exp).clamp(0.0, 1.0)).unwrap_or(Probability::ZERO)
}

fn infeasible() -> CostError {
    CostError::InvalidInput(UnitError::NotPositive {
        quantity: "feasible chiplet partitions",
        value: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_spec() -> SweepSpec {
        SweepSpec {
            system_transistors: TransistorCount::new(2.0e6).unwrap(),
            volume: 50_000,
            lambda_min: Microns::new(0.5).unwrap(),
            lambda_max: Microns::new(1.2).unwrap(),
            lambda_steps: 15,
            max_chiplets: 8,
            max_spares: 1,
        }
    }

    #[test]
    fn monolithic_partition_prices_without_assembly_terms() {
        let params = ChipletParameters::fig8_mcm();
        let mono = Partition {
            chiplets: 1,
            spares: 0,
            lambda: Microns::new(1.0).unwrap(),
            system_transistors: TransistorCount::new(1.0e6).unwrap(),
            volume: 10_000,
        };
        let cost = params.price_partition(&mono).unwrap();
        assert!((cost.assembly_yield.value() - 1.0).abs() < 1e-15);
        // No joints: packaging is the package base alone, NRE excludes
        // the interposer.
        assert!((cost.packaging_cost.value() - params.package_base.value()).abs() < 1e-12);
        let nre = params.nre_design.value() / 10_000.0;
        assert!((cost.nre_per_system.value() - nre).abs() < 1e-9);
    }

    #[test]
    fn spares_raise_system_yield_and_cost_terms_stay_consistent() {
        let params = ChipletParameters::fig8_mcm();
        let base = Partition {
            chiplets: 4,
            spares: 0,
            lambda: Microns::new(0.9).unwrap(),
            system_transistors: TransistorCount::new(8.0e6).unwrap(),
            volume: 50_000,
        };
        let spared = Partition { spares: 1, ..base };
        let without = params.price_partition(&base).unwrap();
        let with = params.price_partition(&spared).unwrap();
        // One more joint costs assembly yield but the redundancy gain on
        // the logic side must appear in the ratio of the two yields.
        let logic_gain = with.system_yield.value() / with.assembly_yield.value()
            - without.system_yield.value() / without.assembly_yield.value();
        assert!(logic_gain > 0.0);
        assert!(with.packaging_cost.value() > without.packaging_cost.value());
    }

    #[test]
    fn binomial_tail_matches_direct_expansion() {
        // 3-of-4 at p=0.9: C(4,3)·0.9³·0.1 + 0.9⁴.
        let direct = 4.0 * 0.9f64.powi(3) * 0.1 + 0.9f64.powi(4);
        assert!((at_least_k_good(4, 3, 0.9) - direct).abs() < 1e-12);
        // k = n degenerates to pⁿ; k = 0 is certain.
        assert!((at_least_k_good(6, 6, 0.7) - 0.7f64.powi(6)).abs() < 1e-12);
        assert!((at_least_k_good(5, 0, 0.2) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let params = ChipletParameters::fig8_mcm();
        let spec = reference_spec();
        let serial = params.sweep(&spec, &Executor::serial()).unwrap();
        for threads in [2, 8] {
            let parallel = params
                .sweep(&spec, &Executor::with_threads(threads))
                .unwrap();
            assert_eq!(serial, parallel, "sweep drifted at {threads} threads");
            assert_eq!(
                serial.best.cost_per_system.value().to_bits(),
                parallel.best.cost_per_system.value().to_bits()
            );
        }
    }

    #[test]
    fn sweep_golden_reference_partition() {
        // The acceptance golden: the optimal partition for the
        // reference (N_tr = 2·10⁷, V = 50 000) point under the
        // fig8_mcm calibration. Drift here means the model changed.
        let params = ChipletParameters::fig8_mcm();
        let outcome = params
            .sweep(&reference_spec(), &Executor::serial())
            .unwrap();
        assert_eq!(outcome.evaluated, 15 * 8 * 2);
        assert_eq!(outcome.feasible, 240);
        let best = outcome.best;
        assert_eq!(
            (best.chiplets, best.spares),
            (4, 0),
            "optimal partition moved: {best:?}"
        );
        assert!(
            (best.lambda.value() - 1.2).abs() < 1e-12,
            "λ* = {}",
            best.lambda.value()
        );
        assert!(
            (best.cost_per_system.value() - 64.950_204_570_179).abs() < 1e-6,
            "cost/system = {}",
            best.cost_per_system.value()
        );
    }

    #[test]
    fn monolithic_loses_to_chiplets_for_large_systems() {
        // 20M transistors on one 1994 die is either infeasible or
        // yield-crushed; the sweep must land on a multi-die partition.
        let params = ChipletParameters::fig8_mcm();
        let outcome = params
            .sweep(&reference_spec(), &Executor::serial())
            .unwrap();
        assert!(outcome.best.chiplets > 1);
        // Every per-n row with n ≥ 2 must beat n = 1 when n = 1 even
        // appears.
        if let Some(mono) = outcome.per_chiplet_count.iter().find(|c| c.chiplets == 1) {
            assert!(outcome.best.cost_per_system < mono.cost_per_system);
        }
    }

    #[test]
    fn low_volume_punishes_multi_die_nre() {
        // At tiny volume the interposer NRE dominates: the optimum must
        // use fewer dies (or price higher) than the high-volume run.
        let params = ChipletParameters::fig8_mcm();
        let high = reference_spec();
        let low = SweepSpec { volume: 50, ..high };
        let best_high = params.sweep(&high, &Executor::serial()).unwrap().best;
        let best_low = params.sweep(&low, &Executor::serial()).unwrap().best;
        assert!(best_low.cost_per_system > best_high.cost_per_system);
        assert!(best_low.nre_per_system.value() > best_high.nre_per_system.value());
        // The interposer NRE cannot amortize over 50 systems: the
        // optimum collapses back to the monolithic die.
        assert!(best_low.chiplets < best_high.chiplets);
    }

    #[test]
    fn sweep_counters_track_grid_size() {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        let params = ChipletParameters::fig8_mcm();
        let spec = SweepSpec {
            lambda_steps: 5,
            max_chiplets: 3,
            max_spares: 1,
            ..reference_spec()
        };
        let partitions0 = PARTITIONS.value();
        let die_points0 = DIE_POINTS.value();
        params.sweep(&spec, &Executor::serial()).unwrap();
        assert_eq!(PARTITIONS.value() - partitions0, 5 * 3 * 2);
        assert_eq!(DIE_POINTS.value() - die_points0, 5 * 3);
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let params = ChipletParameters::fig8_mcm();
        let exec = Executor::serial();
        let good = reference_spec();
        for bad in [
            SweepSpec {
                lambda_steps: 0,
                ..good
            },
            SweepSpec {
                max_chiplets: 0,
                ..good
            },
            SweepSpec { volume: 0, ..good },
            SweepSpec {
                lambda_max: Microns::new(0.4).unwrap(),
                ..good
            },
        ] {
            assert!(params.sweep(&bad, &exec).is_err(), "{bad:?} accepted");
        }
        assert!(params
            .price_partition(&Partition {
                chiplets: 0,
                spares: 0,
                lambda: Microns::new(1.0).unwrap(),
                system_transistors: TransistorCount::new(1.0e6).unwrap(),
                volume: 1,
            })
            .is_err());
    }
}
