//! Error type for invalid unit values.

use std::fmt;

/// Error returned when constructing a unit type from an invalid value.
///
/// # Examples
///
/// ```
/// use maly_units::{Microns, UnitError};
///
/// let err = Microns::new(-1.0).unwrap_err();
/// assert!(matches!(err, UnitError::NotPositive { .. }));
/// assert!(err.to_string().contains("microns"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// The value must be strictly positive but was not.
    NotPositive {
        /// Human-readable name of the quantity (e.g. `"microns"`).
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value must be non-negative but was negative.
    Negative {
        /// Human-readable name of the quantity.
        quantity: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value must be finite but was NaN or infinite.
    NotFinite {
        /// Human-readable name of the quantity.
        quantity: &'static str,
    },
    /// The value fell outside a closed interval (used for probabilities).
    OutOfRange {
        /// Human-readable name of the quantity.
        quantity: &'static str,
        /// The offending value.
        value: f64,
        /// Lower inclusive bound.
        min: f64,
        /// Upper inclusive bound.
        max: f64,
    },
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::NotPositive { quantity, value } => {
                write!(f, "{quantity} must be positive, got {value}")
            }
            UnitError::Negative { quantity, value } => {
                write!(f, "{quantity} must be non-negative, got {value}")
            }
            UnitError::NotFinite { quantity } => {
                write!(f, "{quantity} must be finite")
            }
            UnitError::OutOfRange {
                quantity,
                value,
                min,
                max,
            } => {
                write!(f, "{quantity} must be within [{min}, {max}], got {value}")
            }
        }
    }
}

impl std::error::Error for UnitError {}

/// Validates that `value` is finite, returning [`UnitError::NotFinite`] otherwise.
pub(crate) fn ensure_finite(quantity: &'static str, value: f64) -> Result<f64, UnitError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(UnitError::NotFinite { quantity })
    }
}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn ensure_positive(quantity: &'static str, value: f64) -> Result<f64, UnitError> {
    let value = ensure_finite(quantity, value)?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(UnitError::NotPositive { quantity, value })
    }
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn ensure_non_negative(quantity: &'static str, value: f64) -> Result<f64, UnitError> {
    let value = ensure_finite(quantity, value)?;
    if value >= 0.0 {
        Ok(value)
    } else {
        Err(UnitError::Negative { quantity, value })
    }
}

/// Const-context predicate matching [`ensure_positive`]: finite and
/// strictly positive (`NaN` and `+∞` fail the comparisons).
pub(crate) const fn valid_positive(value: f64) -> bool {
    value > 0.0 && value <= f64::MAX
}

/// Const-context predicate matching [`ensure_non_negative`].
pub(crate) const fn valid_non_negative(value: f64) -> bool {
    value >= 0.0 && value <= f64::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = UnitError::NotPositive {
            quantity: "microns",
            value: -2.0,
        };
        assert_eq!(e.to_string(), "microns must be positive, got -2");

        let e = UnitError::OutOfRange {
            quantity: "probability",
            value: 1.5,
            min: 0.0,
            max: 1.0,
        };
        assert_eq!(e.to_string(), "probability must be within [0, 1], got 1.5");
    }

    #[test]
    fn ensure_positive_rejects_zero_nan_and_negative() {
        assert!(ensure_positive("q", 0.0).is_err());
        assert!(ensure_positive("q", -1.0).is_err());
        assert!(ensure_positive("q", f64::NAN).is_err());
        assert!(ensure_positive("q", f64::INFINITY).is_err());
        assert_eq!(ensure_positive("q", 3.0).unwrap(), 3.0);
    }

    #[test]
    fn ensure_non_negative_accepts_zero() {
        assert_eq!(ensure_non_negative("q", 0.0).unwrap(), 0.0);
        assert!(ensure_non_negative("q", -0.1).is_err());
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(UnitError::NotFinite { quantity: "x" });
        assert_eq!(e.to_string(), "x must be finite");
    }
}
