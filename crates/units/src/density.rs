//! Design density and defect density quantities.

use crate::error::ensure_positive;
use crate::macros::scalar_quantity;
use crate::{Microns, SquareMicrons, UnitError};

scalar_quantity! {
    /// Design density `d_d` in λ² per transistor (eq. 5).
    ///
    /// The number of minimum-feature-size squares needed to draw a single
    /// "average" transistor for a given design. Denser layouts have
    /// *smaller* values: Table 2 ranges from `17.8` (16 Mb SRAM) to
    /// `2631` (PLD).
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::{DesignDensity, Microns};
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let d_d = DesignDensity::new(150.0)?;
    /// let lambda = Microns::new(0.8)?;
    /// // Area of one average transistor: d_d · λ² = 96 µm².
    /// let per_tr = d_d.transistor_footprint(lambda);
    /// assert!((per_tr.value() - 96.0).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    DesignDensity, "design density", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "λ²/tr"
}

impl DesignDensity {
    /// Area occupied by one average transistor at feature size `lambda`:
    /// `d_d · λ²` (the per-transistor factor of eq. 5).
    #[must_use]
    pub fn transistor_footprint(self, lambda: Microns) -> SquareMicrons {
        lambda.squared() * self.0
    }

    /// Derives the design density from a measured block: `d_d = A / (N · λ²)`.
    ///
    /// This is how Tables 1 and 2 of the paper were produced from published
    /// die photographs and transistor counts.
    ///
    /// # Errors
    ///
    /// Returns an error if `transistors` is not positive.
    pub fn from_layout(
        area: SquareMicrons,
        transistors: f64,
        lambda: Microns,
    ) -> Result<Self, UnitError> {
        let transistors = crate::error::ensure_positive("transistor count", transistors)?;
        DesignDensity::new(area.value() / (transistors * lambda.squared().value()))
    }
}

scalar_quantity! {
    /// Defect density in defects per cm².
    ///
    /// `D_0` of the Poisson yield model (eq. 6). The paper's Fig. 4 shows
    /// the *required* defect density dropping below 0.1 /cm² for
    /// sub-half-micron generations.
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::DefectDensity;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let d0 = DefectDensity::new(0.5)?; // 0.5 defects/cm²
    /// assert_eq!(d0.value(), 0.5);
    /// # Ok(())
    /// # }
    /// ```
    DefectDensity, "defect density", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "/cm²"
}

impl DefectDensity {
    /// Expected number of yield-relevant defects on a die of `area_cm2` cm².
    ///
    /// This is the `A_ch · D_0` exponent of eq. (6).
    #[must_use]
    pub fn expected_defects(self, area_cm2: crate::SquareCentimeters) -> f64 {
        self.0 * area_cm2.value()
    }
}

scalar_quantity! {
    /// Eq. (7)'s reference defect density `D`: killing defects per cm²
    /// *measured at λ = 1 µm*.
    ///
    /// The effective density at another feature size is `D/λ^p` (λ in
    /// µm), so the raw number's unit depends on the size-distribution
    /// exponent `p`. Quoting it at the λ = 1 µm reference point pins the
    /// unit down and keeps it distinct from a plain [`DefectDensity`] —
    /// passing one where the other is expected is exactly the confusion
    /// eq. (7) invites. Fig. 8's calibration is `D = 1.72`.
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::ReferenceDefectDensity;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let d = ReferenceDefectDensity::new(1.72)?;
    /// assert_eq!(d.value(), 1.72);
    /// # Ok(())
    /// # }
    /// ```
    ReferenceDefectDensity, "reference defect density", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "/cm² @ 1 µm"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SquareCentimeters;

    #[test]
    fn footprint_matches_eq5() {
        // Table 3 row 1: d_d = 150, λ = 0.8 → 96 µm²/transistor;
        // 3.1M transistors → 2.976 cm² die.
        let d_d = DesignDensity::new(150.0).unwrap();
        let lam = Microns::new(0.8).unwrap();
        let per_tr = d_d.transistor_footprint(lam);
        let die = per_tr * 3.1e6;
        assert!((die.to_square_centimeters().value() - 2.976).abs() < 1e-9);
    }

    #[test]
    fn from_layout_inverts_footprint() {
        // Table 1 I-cache row: 33.2 mm², 1.2M transistors at λ = 0.8 µm
        // gives d_d ≈ 43.2 λ²/tr.
        let area = crate::SquareMillimeters::new(33.2)
            .unwrap()
            .to_square_centimeters()
            .to_square_microns();
        let lam = Microns::new(0.8).unwrap();
        let d_d = DesignDensity::from_layout(area, 1.2e6, lam).unwrap();
        assert!((d_d.value() - 43.2).abs() < 0.1);
    }

    #[test]
    fn from_layout_rejects_zero_transistors() {
        let area = crate::SquareMicrons::new(100.0).unwrap();
        let lam = Microns::new(1.0).unwrap();
        assert!(DesignDensity::from_layout(area, 0.0, lam).is_err());
    }

    #[test]
    fn expected_defects_is_area_times_density() {
        let d0 = DefectDensity::new(1.72).unwrap();
        let a = SquareCentimeters::new(2.0).unwrap();
        assert!((d0.expected_defects(a) - 3.44).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_positive_densities() {
        assert!(DesignDensity::new(0.0).is_err());
        assert!(DefectDensity::new(-0.5).is_err());
    }
}
