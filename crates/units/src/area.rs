//! Area quantities: µm², mm², cm².

use crate::error::ensure_positive;
use crate::macros::scalar_quantity;
use crate::{
    Centimeters, Microns, Millimeters, MICRONS_PER_CENTIMETER, MILLIMETERS_PER_CENTIMETER,
};

const UM2_PER_CM2: f64 = MICRONS_PER_CENTIMETER * MICRONS_PER_CENTIMETER;
const MM2_PER_CM2: f64 = MILLIMETERS_PER_CENTIMETER * MILLIMETERS_PER_CENTIMETER;

scalar_quantity! {
    /// A strictly positive area in square microns (µm²).
    ///
    /// The transistor footprint `d_d · λ²` of eq. (5) lives in µm².
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::SquareMicrons;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let a = SquareMicrons::new(2.0e8)?;
    /// assert!((a.to_square_centimeters().value() - 2.0).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    SquareMicrons, "square microns", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "µm²"
}

scalar_quantity! {
    /// A strictly positive area in square millimeters (mm²).
    ///
    /// Table 1 of the paper quotes functional-block areas in mm².
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::SquareMillimeters;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let a = SquareMillimeters::new(33.2)?;
    /// assert!((a.to_square_centimeters().value() - 0.332).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    SquareMillimeters, "square millimeters", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "mm²"
}

scalar_quantity! {
    /// A strictly positive area in square centimeters (cm²).
    ///
    /// Die areas `A_ch` and the reference area `A_0 = 1 cm²` of eq. (9)
    /// live in cm².
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::SquareCentimeters;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let a_ch = SquareCentimeters::new(2.976)?;
    /// let edge = a_ch.square_side();
    /// assert!((edge.value() - 2.976_f64.sqrt()).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    SquareCentimeters, "square centimeters", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "cm²"
}

impl SquareMicrons {
    pub(crate) fn new_unchecked(value: f64) -> Self {
        Self(value)
    }

    /// Converts to cm².
    #[must_use]
    pub fn to_square_centimeters(self) -> SquareCentimeters {
        SquareCentimeters(self.0 / UM2_PER_CM2)
    }

    /// Side length of a square with this area.
    #[must_use]
    pub fn square_side(self) -> Microns {
        // Area is validated positive, so the sqrt is positive and finite.
        Microns::new(self.0.sqrt()).expect("positive area has positive side")
    }
}

impl SquareMillimeters {
    pub(crate) fn new_unchecked(value: f64) -> Self {
        Self(value)
    }

    /// Converts to cm².
    #[must_use]
    pub fn to_square_centimeters(self) -> SquareCentimeters {
        SquareCentimeters(self.0 / MM2_PER_CM2)
    }

    /// Side length of a square with this area.
    #[must_use]
    pub fn square_side(self) -> Millimeters {
        Millimeters::new(self.0.sqrt()).expect("positive area has positive side")
    }
}

impl SquareCentimeters {
    pub(crate) fn new_unchecked(value: f64) -> Self {
        Self(value)
    }

    /// Converts to µm².
    #[must_use]
    pub fn to_square_microns(self) -> SquareMicrons {
        SquareMicrons(self.0 * UM2_PER_CM2)
    }

    /// Converts to mm².
    #[must_use]
    pub fn to_square_millimeters(self) -> SquareMillimeters {
        SquareMillimeters(self.0 * MM2_PER_CM2)
    }

    /// Side length of a square with this area.
    #[must_use]
    pub fn square_side(self) -> Centimeters {
        Centimeters::new(self.0.sqrt()).expect("positive area has positive side")
    }
}

impl From<SquareMillimeters> for SquareCentimeters {
    fn from(v: SquareMillimeters) -> Self {
        v.to_square_centimeters()
    }
}

impl From<SquareMicrons> for SquareCentimeters {
    fn from(v: SquareMicrons) -> Self {
        v.to_square_centimeters()
    }
}

impl From<SquareCentimeters> for SquareMillimeters {
    fn from(v: SquareCentimeters) -> Self {
        v.to_square_millimeters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        let a = SquareCentimeters::new(2.976).unwrap();
        let um2 = a.to_square_microns();
        assert!((um2.value() - 2.976e8).abs() < 1.0);
        let back = um2.to_square_centimeters();
        assert!((back.value() - a.value()).abs() < 1e-12);
    }

    #[test]
    fn mm2_to_cm2() {
        let a = SquareMillimeters::new(45.9).unwrap();
        assert!((a.to_square_centimeters().value() - 0.459).abs() < 1e-12);
    }

    #[test]
    fn square_side_is_sqrt() {
        let a = SquareCentimeters::new(4.0).unwrap();
        assert!((a.square_side().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_areas() {
        assert!(SquareCentimeters::new(0.0).is_err());
        assert!(SquareMicrons::new(-1.0).is_err());
        assert!(SquareMillimeters::new(f64::INFINITY).is_err());
    }

    #[test]
    fn micron_square_consistency_with_length_multiplication() {
        let l = Microns::new(0.8).unwrap();
        let a = l.squared();
        assert!((a.value() - 0.64).abs() < 1e-12);
        // 0.64 µm² in cm²
        assert!((a.to_square_centimeters().value() - 0.64e-8).abs() < 1e-20);
    }

    #[test]
    fn display_uses_unit_suffix() {
        let a = SquareCentimeters::new(1.5).unwrap();
        assert_eq!(a.to_string(), "1.5 cm²");
    }
}
