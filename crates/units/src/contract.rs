//! Numeric-contract macros: cheap, debug-only checks at model entry points.
//!
//! The cost model is a pipeline of closed-form expressions — eqs. (1)–(9)
//! of the paper — whose intermediate values must stay finite, non-negative,
//! or inside `[0, 1]`. A NaN introduced early (a bad fit, a degenerate
//! sweep bound) otherwise propagates silently and surfaces far away as a
//! nonsense cost. These macros pin the contract at the point where a raw
//! `f64` enters a model, as `debug_assert!`s: active under `cargo test`,
//! free in release builds.
//!
//! # Examples
//!
//! ```
//! use maly_units::{ensure_finite, ensure_nonneg, ensure_prob};
//!
//! fn die_cost(wafer_cost: f64, dies: f64, yield_: f64) -> f64 {
//!     ensure_nonneg!(wafer_cost, "wafer cost");
//!     ensure_nonneg!(dies, "dies per wafer");
//!     ensure_prob!(yield_, "die yield");
//!     let cost = wafer_cost / (dies * yield_);
//!     ensure_finite!(cost, "die cost");
//!     cost
//! }
//! # let _ = die_cost(700.0, 100.0, 0.7);
//! ```

/// Debug-asserts that a float expression is finite (not NaN or ±∞).
#[macro_export]
macro_rules! ensure_finite {
    ($value:expr, $what:expr) => {{
        let v: f64 = $value;
        debug_assert!(
            v.is_finite(),
            "numeric contract violated: {} = {v} is not finite",
            $what
        );
    }};
}

/// Debug-asserts that a float expression is finite and non-negative.
#[macro_export]
macro_rules! ensure_nonneg {
    ($value:expr, $what:expr) => {{
        let v: f64 = $value;
        debug_assert!(
            v.is_finite() && v >= 0.0,
            "numeric contract violated: {} = {v} must be finite and >= 0",
            $what
        );
    }};
}

/// Debug-asserts that a float expression is a valid probability in `[0, 1]`.
#[macro_export]
macro_rules! ensure_prob {
    ($value:expr, $what:expr) => {{
        let v: f64 = $value;
        debug_assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "numeric contract violated: {} = {v} must lie in [0, 1]",
            $what
        );
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_contracts_are_silent() {
        ensure_finite!(1.5, "x");
        ensure_nonneg!(0.0, "x");
        ensure_prob!(1.0, "x");
    }

    #[test]
    #[should_panic(expected = "numeric contract violated")]
    #[cfg(debug_assertions)]
    fn nan_trips_finite() {
        ensure_finite!(f64::NAN, "x");
    }

    #[test]
    #[should_panic(expected = "numeric contract violated")]
    #[cfg(debug_assertions)]
    fn negative_trips_nonneg() {
        ensure_nonneg!(-1e-9, "x");
    }

    #[test]
    #[should_panic(expected = "numeric contract violated")]
    #[cfg(debug_assertions)]
    fn above_one_trips_prob() {
        ensure_prob!(1.5, "x");
    }
}
