//! Monetary quantities (1994 US dollars).

use crate::error::ensure_non_negative;
use crate::macros::scalar_quantity;

/// Micro-dollars per dollar.
const MICRO_PER_DOLLAR: f64 = 1.0e6;

scalar_quantity! {
    /// A non-negative amount of money in US dollars.
    ///
    /// All costs in this workspace are 1994 dollars, matching the paper.
    /// Wafer costs (`C_w`, `C_0`) and overheads (`C_over`) use this type.
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::Dollars;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let c0 = Dollars::new(500.0)?;
    /// let escalated = c0 * 1.4;
    /// assert_eq!(escalated.value(), 700.0);
    /// # Ok(())
    /// # }
    /// ```
    Dollars, "dollars", ensure_non_negative,
    crate::error::valid_non_negative, 0.0, "$"
}

scalar_quantity! {
    /// A non-negative amount of money in micro-dollars (10⁻⁶ $).
    ///
    /// Table 3 of the paper reports per-transistor costs in units of
    /// `$10⁻⁶`; this type mirrors that convention so reproduced numbers
    /// read the same as the printed ones (e.g. `9.40 µ$`).
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::{Dollars, MicroDollars};
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let c_tr = Dollars::new(9.4e-6)?.to_micro_dollars();
    /// assert!((c_tr.value() - 9.4).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    MicroDollars, "micro-dollars", ensure_non_negative,
    crate::error::valid_non_negative, 0.0, "µ$"
}

impl Dollars {
    /// Zero dollars.
    #[must_use]
    pub fn zero() -> Self {
        Self(0.0)
    }

    /// Converts to micro-dollars.
    #[must_use]
    pub fn to_micro_dollars(self) -> MicroDollars {
        MicroDollars(self.0 * MICRO_PER_DOLLAR)
    }
}

impl Default for Dollars {
    fn default() -> Self {
        Self::zero()
    }
}

impl MicroDollars {
    /// Converts to dollars.
    #[must_use]
    pub fn to_dollars(self) -> Dollars {
        Dollars(self.0 / MICRO_PER_DOLLAR)
    }
}

impl From<MicroDollars> for Dollars {
    fn from(v: MicroDollars) -> Self {
        v.to_dollars()
    }
}

impl From<Dollars> for MicroDollars {
    fn from(v: Dollars) -> Self {
        v.to_micro_dollars()
    }
}

impl std::iter::Sum for Dollars {
    fn sum<I: Iterator<Item = Dollars>>(iter: I) -> Dollars {
        iter.fold(Dollars::zero(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_dollar_conversion_roundtrips() {
        let d = Dollars::new(0.0000255).unwrap();
        let mu = d.to_micro_dollars();
        assert!((mu.value() - 25.5).abs() < 1e-9);
        assert!((mu.to_dollars().value() - d.value()).abs() < 1e-18);
    }

    #[test]
    fn dollars_allow_zero_but_not_negative() {
        assert!(Dollars::new(0.0).is_ok());
        assert!(Dollars::new(-0.01).is_err());
    }

    #[test]
    fn sum_of_costs() {
        let total: Dollars = [100.0, 250.5, 0.0]
            .into_iter()
            .map(|v| Dollars::new(v).unwrap())
            .sum();
        assert!((total.value() - 350.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Dollars::default(), Dollars::zero());
    }

    #[test]
    fn display_shows_currency() {
        assert_eq!(Dollars::new(700.0).unwrap().to_string(), "700 $");
        assert_eq!(format!("{:.2}", MicroDollars::new(9.4).unwrap()), "9.40 µ$");
    }
}
