//! Probabilities and yields, validated to lie in `[0, 1]`.

use crate::UnitError;

/// A probability (or yield) guaranteed to lie in the closed interval `[0, 1]`.
///
/// Manufacturing yield `Y` — "the probability that a fabricated and tested
/// die functions according to its desired specifications" — is the central
/// probability of the paper. Operations that stay inside `[0, 1]`
/// (products, powers with non-negative exponents, complements) are provided
/// directly so the invariant is preserved by construction.
///
/// # Examples
///
/// ```
/// use maly_units::Probability;
///
/// # fn main() -> Result<(), maly_units::UnitError> {
/// let y0 = Probability::new(0.7)?;
/// // Eq. (9) area scaling: Y = Y0^(A_ch/A0) for a 2.976 cm² die.
/// let y = y0.powf(2.976);
/// assert!((y.value() - 0.346).abs() < 5e-4);
/// // Combined functional and parametric yield.
/// let combined = y * Probability::new(0.95)?;
/// assert!(combined.value() < y.value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Probability(f64);

impl Probability {
    /// The impossible event (probability 0).
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event (probability 1). Assumption S1.3 of Scenario #1
    /// ("at the mature stage of each technology generation the yield is
    /// 100%") uses this value.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `value` is not in `[0, 1]`, or
    /// [`UnitError::NotFinite`] if it is NaN/infinite.
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if !value.is_finite() {
            return Err(UnitError::NotFinite {
                quantity: "probability",
            });
        }
        if !(0.0..=1.0).contains(&value) {
            return Err(UnitError::OutOfRange {
                quantity: "probability",
                value,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Self(value))
    }

    /// Creates a probability from a literal constant, validated at
    /// compile time when evaluated in a `const` context.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 1]` or NaN — at compile time
    /// when const-evaluated.
    #[must_use]
    pub const fn const_new(value: f64) -> Self {
        assert!(0.0 <= value && value <= 1.0, "invalid probability constant");
        Self(value)
    }

    /// Creates a probability by clamping `value` into `[0, 1]`.
    ///
    /// This is the infallible constructor for values that are already
    /// mathematically confined to the unit interval but may drift a few
    /// ulps outside it through floating-point round-off (ratios of counts,
    /// products of survival terms). NaN maps to 0. In debug builds a
    /// value outside `[-1e-9, 1 + 1e-9]` trips an assertion — clamping is
    /// for round-off, not for hiding real range errors.
    #[must_use]
    pub fn clamped(value: f64) -> Probability {
        debug_assert!(
            value.is_finite() && (-1e-9..=1.0 + 1e-9).contains(&value),
            "Probability::clamped expects near-unit-interval input, got {value}"
        );
        if value.is_nan() {
            return Probability::ZERO;
        }
        Probability(value.clamp(0.0, 1.0))
    }

    /// Returns the raw value in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Complement `1 − p`.
    #[must_use]
    pub fn complement(self) -> Probability {
        Probability((1.0 - self.0).clamp(0.0, 1.0))
    }

    /// Raises the probability to a non-negative real power.
    ///
    /// This is the area-scaling operation of eq. (9): `Y = Y_0^{A_ch/A_0}`.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is negative or NaN (a negative exponent could
    /// push the result above 1).
    #[must_use]
    pub fn powf(self, exponent: f64) -> Probability {
        assert!(
            exponent >= 0.0,
            "probability exponent must be non-negative, got {exponent}"
        );
        Probability(self.0.powf(exponent).clamp(0.0, 1.0))
    }

    /// Probability expressed as a percentage in `[0, 100]`.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Creates a probability from a percentage in `[0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `percent` is not in `[0, 100]` or not finite.
    pub fn from_percent(percent: f64) -> Result<Self, UnitError> {
        if !percent.is_finite() {
            return Err(UnitError::NotFinite {
                quantity: "probability",
            });
        }
        if !(0.0..=100.0).contains(&percent) {
            return Err(UnitError::OutOfRange {
                quantity: "probability (percent)",
                value: percent,
                min: 0.0,
                max: 100.0,
            });
        }
        Ok(Self(percent / 100.0))
    }
}

impl std::ops::Mul for Probability {
    type Output = Probability;
    /// Product of probabilities of independent events
    /// (e.g. `Y = Y_fnc · Y_par`).
    fn mul(self, rhs: Probability) -> Probability {
        Probability((self.0 * rhs.0).clamp(0.0, 1.0))
    }
}

impl TryFrom<f64> for Probability {
    type Error = UnitError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Probability::new(value)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

impl std::fmt::Display for Probability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}%", p, self.as_percent())
        } else {
            write!(f, "{}%", self.as_percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_bounds_and_rejects_outside() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-1e-9).is_err());
        assert!(Probability::new(1.0 + 1e-9).is_err());
        assert!(Probability::new(f64::NAN).is_err());
    }

    #[test]
    fn complement_and_product() {
        let p = Probability::new(0.7).unwrap();
        assert!((p.complement().value() - 0.3).abs() < 1e-12);
        let q = p * p;
        assert!((q.value() - 0.49).abs() < 1e-12);
    }

    #[test]
    fn powf_matches_area_scaling_example() {
        // Table 3 row 2: Y = 0.7^2.976 ≈ 0.346
        let y = Probability::new(0.7).unwrap().powf(2.976);
        assert!((y.value() - 0.34598).abs() < 1e-4);
    }

    #[test]
    fn powf_zero_exponent_is_one() {
        let y = Probability::new(0.3).unwrap().powf(0.0);
        assert_eq!(y, Probability::ONE);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn powf_panics_on_negative_exponent() {
        let _ = Probability::new(0.5).unwrap().powf(-1.0);
    }

    #[test]
    fn percent_conversions() {
        let p = Probability::from_percent(70.0).unwrap();
        assert!((p.value() - 0.7).abs() < 1e-12);
        assert!((p.as_percent() - 70.0).abs() < 1e-12);
        assert!(Probability::from_percent(101.0).is_err());
    }

    #[test]
    fn display_as_percent() {
        let p = Probability::new(0.7).unwrap();
        assert_eq!(format!("{p:.1}"), "70.0%");
    }
}
