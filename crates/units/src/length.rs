//! Length quantities: microns, millimeters, centimeters.

use crate::area::{SquareCentimeters, SquareMicrons, SquareMillimeters};
use crate::error::ensure_positive;
use crate::macros::scalar_quantity;
use crate::{MICRONS_PER_CENTIMETER, MICRONS_PER_MILLIMETER, MILLIMETERS_PER_CENTIMETER};

scalar_quantity! {
    /// A strictly positive length in microns (µm).
    ///
    /// The paper's λ — *minimum feature size in microns* — is represented
    /// with this type. Note that this is the drawn minimum feature (e.g.
    /// transistor channel length), not the λ = feature/2 layout-rule
    /// convention.
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::Microns;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let lambda = Microns::new(0.8)?;
    /// assert_eq!(lambda.value(), 0.8);
    /// assert_eq!(lambda.to_centimeters().value(), 0.8e-4);
    /// # Ok(())
    /// # }
    /// ```
    Microns, "microns", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "µm"
}

scalar_quantity! {
    /// A strictly positive length in millimeters (mm).
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::Millimeters;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let edge = Millimeters::new(12.0)?;
    /// assert_eq!(edge.to_centimeters().value(), 1.2);
    /// # Ok(())
    /// # }
    /// ```
    Millimeters, "millimeters", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "mm"
}

scalar_quantity! {
    /// A strictly positive length in centimeters (cm).
    ///
    /// Wafer radii and die edges in the paper are quoted in centimeters
    /// (e.g. `R_w = 7.5 cm` for a 6-inch wafer).
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::Centimeters;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let r_w = Centimeters::new(7.5)?;
    /// let area = r_w * r_w; // cm²
    /// assert!((area.value() - 56.25).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    Centimeters, "centimeters", ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "cm"
}

impl Microns {
    /// Converts to centimeters.
    #[must_use]
    pub fn to_centimeters(self) -> Centimeters {
        Centimeters(self.0 / MICRONS_PER_CENTIMETER)
    }

    /// Converts to millimeters.
    #[must_use]
    pub fn to_millimeters(self) -> Millimeters {
        Millimeters(self.0 / MICRONS_PER_MILLIMETER)
    }

    /// Squares this length, producing an area in µm².
    #[must_use]
    pub fn squared(self) -> SquareMicrons {
        self * self
    }
}

impl Millimeters {
    /// Converts to centimeters.
    #[must_use]
    pub fn to_centimeters(self) -> Centimeters {
        Centimeters(self.0 / MILLIMETERS_PER_CENTIMETER)
    }

    /// Converts to microns.
    #[must_use]
    pub fn to_microns(self) -> Microns {
        Microns(self.0 * MICRONS_PER_MILLIMETER)
    }

    /// Squares this length, producing an area in mm².
    #[must_use]
    pub fn squared(self) -> SquareMillimeters {
        self * self
    }
}

impl Centimeters {
    /// Converts to microns.
    #[must_use]
    pub fn to_microns(self) -> Microns {
        Microns(self.0 * MICRONS_PER_CENTIMETER)
    }

    /// Converts to millimeters.
    #[must_use]
    pub fn to_millimeters(self) -> Millimeters {
        Millimeters(self.0 * MILLIMETERS_PER_CENTIMETER)
    }

    /// Squares this length, producing an area in cm².
    #[must_use]
    pub fn squared(self) -> SquareCentimeters {
        self * self
    }
}

/// A signed, nonzero feature-size offset in microns (µm).
///
/// [`Microns`] only admits strictly positive magnitudes, so finite
/// differences — "shift λ by ±δ and re-evaluate" — need their own type.
/// The constructor accepts either sign but rejects zero (a zero step
/// makes every difference quotient 0/0) and non-finite values.
///
/// # Examples
///
/// ```
/// use maly_units::MicronsDelta;
///
/// # fn main() -> Result<(), maly_units::UnitError> {
/// let back_off = MicronsDelta::new(0.05)?;
/// let shrink = MicronsDelta::new(-0.05)?;
/// assert_eq!(back_off.value(), -shrink.value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MicronsDelta(f64);

impl MicronsDelta {
    /// Creates a signed offset.
    ///
    /// # Errors
    ///
    /// Returns an error unless the value is finite and nonzero.
    pub fn new(value: f64) -> Result<Self, crate::UnitError> {
        if !value.is_finite() {
            return Err(crate::UnitError::NotFinite {
                quantity: "lambda offset",
            });
        }
        if value.abs() < f64::MIN_POSITIVE {
            return Err(crate::UnitError::NotPositive {
                quantity: "lambda offset magnitude",
                value: 0.0,
            });
        }
        Ok(Self(value))
    }

    /// The raw signed magnitude in microns.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The feature size shifted by this offset, when the result is still
    /// a valid (positive) length.
    ///
    /// # Errors
    ///
    /// Returns an error when the shift crosses zero.
    pub fn applied_to(self, lambda: Microns) -> Result<Microns, crate::UnitError> {
        Microns::new(lambda.value() + self.0)
    }
}

impl std::fmt::Display for MicronsDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:+.*} µm", p, self.0)
        } else {
            write!(f, "{:+} µm", self.0)
        }
    }
}

impl std::ops::Neg for MicronsDelta {
    type Output = MicronsDelta;
    fn neg(self) -> MicronsDelta {
        MicronsDelta(-self.0)
    }
}

impl std::ops::Mul for Microns {
    type Output = SquareMicrons;
    fn mul(self, rhs: Microns) -> SquareMicrons {
        SquareMicrons::new_unchecked(self.0 * rhs.0)
    }
}

impl std::ops::Mul for Millimeters {
    type Output = SquareMillimeters;
    fn mul(self, rhs: Millimeters) -> SquareMillimeters {
        SquareMillimeters::new_unchecked(self.0 * rhs.0)
    }
}

impl std::ops::Mul for Centimeters {
    type Output = SquareCentimeters;
    fn mul(self, rhs: Centimeters) -> SquareCentimeters {
        SquareCentimeters::new_unchecked(self.0 * rhs.0)
    }
}

impl From<Millimeters> for Centimeters {
    fn from(v: Millimeters) -> Self {
        v.to_centimeters()
    }
}

impl From<Centimeters> for Millimeters {
    fn from(v: Centimeters) -> Self {
        v.to_millimeters()
    }
}

impl From<Microns> for Centimeters {
    fn from(v: Microns) -> Self {
        v.to_centimeters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micron_roundtrips_through_centimeters() {
        let l = Microns::new(0.35).unwrap();
        let back = l.to_centimeters().to_microns();
        assert!((l.value() - back.value()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_positive_lengths() {
        assert!(Microns::new(0.0).is_err());
        assert!(Millimeters::new(-3.0).is_err());
        assert!(Centimeters::new(f64::NAN).is_err());
    }

    #[test]
    fn length_times_length_is_area() {
        let a = Centimeters::new(2.0).unwrap() * Centimeters::new(3.0).unwrap();
        assert_eq!(a.value(), 6.0);
    }

    #[test]
    fn ratio_of_same_unit_is_dimensionless() {
        let r = Centimeters::new(15.0).unwrap() / Centimeters::new(7.5).unwrap();
        assert_eq!(r, 2.0);
    }

    #[test]
    fn display_includes_unit_suffix() {
        let l = Microns::new(0.8).unwrap();
        assert_eq!(l.to_string(), "0.8 µm");
        assert_eq!(format!("{l:.2}"), "0.80 µm");
    }

    #[test]
    fn scaling_by_f64_keeps_unit() {
        let l = Millimeters::new(2.0).unwrap() * 3.0;
        assert_eq!(l.value(), 6.0);
        let l = 0.5 * l;
        assert_eq!(l.value(), 3.0);
        assert_eq!((l / 3.0).value(), 1.0);
    }

    #[test]
    fn from_conversions_match_methods() {
        let mm = Millimeters::new(25.0).unwrap();
        assert_eq!(Centimeters::from(mm).value(), 2.5);
        let cm = Centimeters::new(2.5).unwrap();
        assert_eq!(Millimeters::from(cm).value(), 25.0);
    }
}
