//! Count quantities: transistors per die, dies per wafer.

use crate::macros::scalar_quantity;
use crate::UnitError;

/// A number of transistors (`N_tr` of eq. 1).
///
/// Stored as `f64` because transistor counts in the paper range from
/// 7.2 k (PLD) to 264 M (256 Mb DRAM) and frequently participate in
/// real-valued arithmetic (densities, yields). The constructor validates
/// positivity and finiteness.
///
/// # Examples
///
/// ```
/// use maly_units::TransistorCount;
///
/// # fn main() -> Result<(), maly_units::UnitError> {
/// let n_tr = TransistorCount::new(3.1e6)?;
/// assert_eq!(n_tr.value(), 3.1e6);
/// assert_eq!(n_tr.to_string(), "3.10M tr");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct TransistorCount(f64);

impl TransistorCount {
    /// Creates a transistor count.
    ///
    /// # Errors
    ///
    /// Returns an error unless `value` is finite and strictly positive.
    pub fn new(value: f64) -> Result<Self, UnitError> {
        crate::error::ensure_positive("transistor count", value).map(Self)
    }

    /// Creates a count infallibly by clamping to the smallest positive
    /// magnitude.
    ///
    /// For counts that are positive by construction (grid interpolants
    /// of validated bounds). NaN clamps to the floor; debug builds
    /// assert the input is finite.
    #[must_use]
    pub fn clamped(value: f64) -> Self {
        debug_assert!(
            value.is_finite(),
            "transistor count must be finite, got {value}"
        );
        if value >= f64::MIN_POSITIVE {
            Self(value)
        } else {
            Self(f64::MIN_POSITIVE)
        }
    }

    /// Creates a count expressed in millions of transistors.
    ///
    /// # Errors
    ///
    /// Returns an error unless `millions` is finite and strictly positive.
    pub fn from_millions(millions: f64) -> Result<Self, UnitError> {
        Self::new(millions * 1.0e6)
    }

    /// Creates a count expressed in thousands of transistors.
    ///
    /// # Errors
    ///
    /// Returns an error unless `thousands` is finite and strictly positive.
    pub fn from_thousands(thousands: f64) -> Result<Self, UnitError> {
        Self::new(thousands * 1.0e3)
    }

    /// Raw count.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Count in millions.
    #[must_use]
    pub fn millions(self) -> f64 {
        self.0 / 1.0e6
    }
}

impl std::fmt::Display for TransistorCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1.0e6 {
            write!(f, "{:.2}M tr", self.0 / 1.0e6)
        } else if self.0 >= 1.0e3 {
            write!(f, "{:.1}k tr", self.0 / 1.0e3)
        } else {
            write!(f, "{} tr", self.0)
        }
    }
}

/// A whole number of dies (`N_ch` of eq. 1 — dies per wafer).
///
/// # Examples
///
/// ```
/// use maly_units::DieCount;
///
/// let n_ch = DieCount::new(46);
/// assert_eq!(n_ch.value(), 46);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DieCount(u32);

impl DieCount {
    /// Creates a die count. Zero is legal: a die larger than the wafer
    /// yields no sites.
    #[must_use]
    pub fn new(value: u32) -> Self {
        Self(value)
    }

    /// Raw count.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }

    /// Count as `f64` for use in cost arithmetic.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// True when the wafer holds no complete die.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for DieCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} dies", self.0)
    }
}

impl std::ops::Add for DieCount {
    type Output = DieCount;
    fn add(self, rhs: DieCount) -> DieCount {
        DieCount(self.0 + rhs.0)
    }
}

impl From<u32> for DieCount {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl std::iter::Sum for DieCount {
    fn sum<I: Iterator<Item = DieCount>>(iter: I) -> DieCount {
        iter.fold(DieCount::new(0), |acc, x| acc + x)
    }
}

scalar_quantity! {
    /// A production volume in dies — a *fractional* count.
    ///
    /// Unlike [`DieCount`] (the integral dies-per-wafer of eq. 4), a
    /// ramp or annual volume is an expectation over many wafers and is
    /// legitimately fractional ("10 000 dies over a 12-month ramp").
    ///
    /// # Examples
    ///
    /// ```
    /// use maly_units::ProductionVolume;
    ///
    /// # fn main() -> Result<(), maly_units::UnitError> {
    /// let ramp = ProductionVolume::new(10_000.0)?;
    /// assert_eq!(ramp.value(), 10_000.0);
    /// # Ok(())
    /// # }
    /// ```
    ProductionVolume, "production volume", crate::error::ensure_positive,
    crate::error::valid_positive, f64::MIN_POSITIVE, "dies"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_count_constructors_agree() {
        assert_eq!(
            TransistorCount::from_millions(3.1).unwrap(),
            TransistorCount::new(3.1e6).unwrap()
        );
        assert_eq!(
            TransistorCount::from_thousands(40.0).unwrap(),
            TransistorCount::new(4.0e4).unwrap()
        );
    }

    #[test]
    fn transistor_count_rejects_invalid() {
        assert!(TransistorCount::new(0.0).is_err());
        assert!(TransistorCount::new(f64::NAN).is_err());
        assert!(TransistorCount::from_millions(-1.0).is_err());
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(
            TransistorCount::new(264e6).unwrap().to_string(),
            "264.00M tr"
        );
        assert_eq!(TransistorCount::new(7200.0).unwrap().to_string(), "7.2k tr");
        assert_eq!(TransistorCount::new(12.0).unwrap().to_string(), "12 tr");
    }

    #[test]
    fn die_count_arithmetic() {
        let total: DieCount = [5u32, 7, 8].into_iter().map(DieCount::new).sum();
        assert_eq!(total.value(), 20);
        assert!(!total.is_zero());
        assert!(DieCount::new(0).is_zero());
    }

    #[test]
    fn die_count_display() {
        assert_eq!(DieCount::new(46).to_string(), "46 dies");
    }
}
