//! Internal macro generating the shared newtype boilerplate.

/// Implements the common surface of a positive, `f64`-backed scalar quantity:
/// constructor with validation, accessor, `Display`, ordering, arithmetic
/// with itself (`Add`/`Sub`) and with bare `f64` scale factors (`Mul`/`Div`),
/// and a dimensionless ratio via `Div<Self>`.
///
/// Besides the fallible `new`, two specialized constructors are generated:
/// `const_new` (compile-time validation for literal constants, via the
/// const predicate `$const_check`) and `clamped` (infallible, clamping to
/// the domain floor `$domain_floor`, for values valid by construction).
macro_rules! scalar_quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $quantity:literal, $validator:path, $const_check:path,
        $domain_floor:expr, $unit_suffix:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Creates a new value, validating the invariant documented on the type.
            ///
            /// # Errors
            ///
            /// Returns a [`crate::UnitError`] if the value violates the
            /// type's invariant (non-finite, or outside the permitted sign).
            pub fn new(value: f64) -> Result<Self, crate::UnitError> {
                $validator($quantity, value).map(Self)
            }

            /// Creates a value from a literal constant, validated at
            /// compile time when evaluated in a `const` context:
            ///
            /// an invalid literal then becomes a compile error instead of a
            /// runtime panic, so `const`-declared model calibrations can
            /// never panic at run time.
            ///
            /// # Panics
            ///
            /// Panics if the value violates the type's invariant — at
            /// compile time when const-evaluated.
            #[must_use]
            pub const fn const_new(value: f64) -> Self {
                assert!(
                    $const_check(value),
                    concat!("invalid ", $quantity, " constant")
                );
                Self(value)
            }

            /// Creates a value infallibly by clamping to the domain floor.
            ///
            /// For magnitudes that are valid by construction but may leave
            /// the domain by floating-point round-off (interpolants of
            /// validated bounds, differences of near-equal terms). NaN
            /// clamps to the floor. Debug builds assert the input is
            /// finite — clamping is for round-off, not for hiding real
            /// sign errors.
            #[must_use]
            pub fn clamped(value: f64) -> Self {
                debug_assert!(
                    value.is_finite(),
                    concat!($quantity, " must be finite, got {}"),
                    value
                );
                if value >= $domain_floor {
                    Self(value)
                } else {
                    Self($domain_floor)
                }
            }

            /// Returns the raw `f64` magnitude in this type's unit.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Respect an explicit precision; default to a compact form.
                if let Some(p) = f.precision() {
                    write!(f, "{:.*} {}", p, self.0, $unit_suffix)
                } else {
                    write!(f, "{} {}", self.0, $unit_suffix)
                }
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl std::ops::Div<$name> for $name {
            /// Dimensionless ratio of two quantities of the same unit.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

pub(crate) use scalar_quantity;
