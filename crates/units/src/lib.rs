//! Typed physical and economic quantities for silicon cost modeling.
//!
//! The cost model of Maly's DAC 1994 paper mixes quantities whose units are
//! easy to confuse: feature sizes in microns, die dimensions in centimeters,
//! die areas in both mm² and cm², wafer costs in dollars, and transistor
//! costs in micro-dollars. This crate provides zero-cost newtypes so the
//! compiler keeps them straight (Rust API guideline C-NEWTYPE), with
//! validated constructors (C-VALIDATE) for quantities that carry invariants
//! such as probabilities.
//!
//! # Examples
//!
//! ```
//! use maly_units::{Microns, Centimeters, Probability};
//!
//! # fn main() -> Result<(), maly_units::UnitError> {
//! let lambda = Microns::new(0.8)?;
//! let die_edge = Centimeters::new(1.2)?;
//! let area = die_edge * die_edge; // SquareCentimeters
//! assert!((area.value() - 1.44).abs() < 1e-12);
//!
//! let y0 = Probability::new(0.7)?;
//! // Area-scaled yield: Y = Y0^(A/A0)
//! let y = y0.powf(area.value());
//! assert!(y.value() < y0.value());
//! # let _ = lambda;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
pub mod contract;
mod count;
mod density;
mod error;
mod length;
mod macros;
mod money;
mod probability;

pub use area::{SquareCentimeters, SquareMicrons, SquareMillimeters};
pub use count::{DieCount, ProductionVolume, TransistorCount};
pub use density::{DefectDensity, DesignDensity, ReferenceDefectDensity};
pub use error::UnitError;
pub use length::{Centimeters, Microns, MicronsDelta, Millimeters};
pub use money::{Dollars, MicroDollars};
pub use probability::Probability;

/// Number of microns in one centimeter.
pub const MICRONS_PER_CENTIMETER: f64 = 10_000.0;
/// Number of microns in one millimeter.
pub const MICRONS_PER_MILLIMETER: f64 = 1_000.0;
/// Number of millimeters in one centimeter.
pub const MILLIMETERS_PER_CENTIMETER: f64 = 10.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_constants_are_consistent() {
        assert_eq!(
            MICRONS_PER_CENTIMETER,
            MICRONS_PER_MILLIMETER * MILLIMETERS_PER_CENTIMETER
        );
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Microns>();
        assert_send_sync::<Centimeters>();
        assert_send_sync::<Millimeters>();
        assert_send_sync::<SquareMicrons>();
        assert_send_sync::<SquareMillimeters>();
        assert_send_sync::<SquareCentimeters>();
        assert_send_sync::<Dollars>();
        assert_send_sync::<MicroDollars>();
        assert_send_sync::<Probability>();
        assert_send_sync::<DesignDensity>();
        assert_send_sync::<DefectDensity>();
        assert_send_sync::<ReferenceDefectDensity>();
        assert_send_sync::<MicronsDelta>();
        assert_send_sync::<TransistorCount>();
        assert_send_sync::<DieCount>();
        assert_send_sync::<ProductionVolume>();
        assert_send_sync::<UnitError>();
    }
}
