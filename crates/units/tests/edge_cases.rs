//! Edge-case tests for the unit newtypes: constructor rejection of
//! non-finite and out-of-domain inputs, `Probability::powf` closure,
//! conversion roundtrips, and the `clamped`/`const_new` contract layer.

use maly_units::{
    Centimeters, DefectDensity, DesignDensity, Dollars, MicroDollars, Microns, Millimeters,
    Probability, SquareCentimeters, TransistorCount,
};

// ---------------------------------------------------------------------
// Constructors reject NaN / ±inf / out-of-domain values.
// ---------------------------------------------------------------------

#[test]
fn positive_quantities_reject_nan_inf_zero_and_negatives() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
        assert!(Microns::new(bad).is_err(), "Microns::new({bad})");
        assert!(Millimeters::new(bad).is_err(), "Millimeters::new({bad})");
        assert!(Centimeters::new(bad).is_err(), "Centimeters::new({bad})");
        assert!(
            SquareCentimeters::new(bad).is_err(),
            "SquareCentimeters::new({bad})"
        );
        assert!(
            DefectDensity::new(bad).is_err(),
            "DefectDensity::new({bad})"
        );
        assert!(
            DesignDensity::new(bad).is_err(),
            "DesignDensity::new({bad})"
        );
        assert!(
            TransistorCount::new(bad).is_err(),
            "TransistorCount::new({bad})"
        );
    }
}

#[test]
fn money_rejects_non_finite_and_negative_but_accepts_zero() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.01] {
        assert!(Dollars::new(bad).is_err(), "Dollars::new({bad})");
        assert!(MicroDollars::new(bad).is_err(), "MicroDollars::new({bad})");
    }
    assert!(Dollars::new(0.0).is_ok());
    assert!(MicroDollars::new(0.0).is_ok());
}

#[test]
fn probability_rejects_non_finite_and_outside_unit_interval() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.001, 1.001] {
        assert!(Probability::new(bad).is_err(), "Probability::new({bad})");
    }
    assert!(Probability::new(0.0).is_ok());
    assert!(Probability::new(1.0).is_ok());
}

// ---------------------------------------------------------------------
// Probability::powf stays inside [0, 1].
// ---------------------------------------------------------------------

#[test]
fn probability_powf_stays_in_unit_interval() {
    let exponents = [0.0, 0.25, 1.0, 3.7, 50.0, 1.0e6];
    let bases = [0.0, 1.0e-12, 0.3, 0.9999, 1.0];
    for &b in &bases {
        let p = Probability::new(b).expect("valid base");
        for &e in &exponents {
            let v = p.powf(e).value();
            assert!((0.0..=1.0).contains(&v), "{b}^{e} escaped to {v}");
        }
    }
    // Y₀^{A_ch}: huge exponents underflow to exactly zero, never below.
    let tiny = Probability::new(0.5).expect("valid").powf(5000.0);
    assert!(tiny.value() >= 0.0);
}

// ---------------------------------------------------------------------
// Length conversion roundtrips.
// ---------------------------------------------------------------------

#[test]
fn length_roundtrips_hold_within_tolerance() {
    for v in [0.25, 0.8, 1.0, 7.5, 123.456] {
        let um = Microns::new(v).expect("positive");
        let back = um.to_centimeters().to_microns();
        assert!(
            (back.value() - v).abs() <= 1e-12 * v,
            "µm→cm→µm drifted: {v} → {}",
            back.value()
        );
        let back = um.to_millimeters().to_microns();
        assert!((back.value() - v).abs() <= 1e-12 * v);

        let cm = Centimeters::new(v).expect("positive");
        let back = cm.to_millimeters().to_centimeters();
        assert!((back.value() - v).abs() <= 1e-12 * v);
        let back = cm.to_microns().to_centimeters();
        assert!((back.value() - v).abs() <= 1e-12 * v);
    }
}

#[test]
fn known_conversion_anchors() {
    let lambda = Microns::new(0.8).expect("positive");
    assert!((lambda.to_centimeters().value() - 0.8e-4).abs() < 1e-19);
    let r_w = Centimeters::new(7.5).expect("positive");
    assert!((r_w.to_millimeters().value() - 75.0).abs() < 1e-12);
}

// ---------------------------------------------------------------------
// The contract layer: clamped and const_new.
// ---------------------------------------------------------------------

#[test]
fn clamped_floors_at_the_domain_boundary() {
    // Positive quantities floor at the smallest positive value...
    assert!(Microns::clamped(-3.0).value() > 0.0);
    assert!(TransistorCount::clamped(0.0).value() > 0.0);
    // ...non-negative money floors at zero...
    assert_eq!(Dollars::clamped(-5.0).value(), 0.0);
    // ...and in-domain values pass through untouched.
    assert_eq!(Microns::clamped(0.8).value(), 0.8);
    assert_eq!(Dollars::clamped(12.5).value(), 12.5);
}

#[test]
fn probability_clamped_saturates_round_off() {
    assert_eq!(Probability::clamped(1.0 + 1.0e-12).value(), 1.0);
    assert_eq!(Probability::clamped(-1.0e-12).value(), 0.0);
    assert_eq!(Probability::clamped(0.7).value(), 0.7);
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "near-unit-interval")]
fn probability_clamped_asserts_on_nan_in_debug_builds() {
    let _ = Probability::clamped(f64::NAN);
}

#[test]
#[cfg(not(debug_assertions))]
fn probability_clamped_maps_nan_to_zero_in_release_builds() {
    assert_eq!(Probability::clamped(f64::NAN).value(), 0.0);
}

#[test]
fn const_new_constants_evaluate_at_compile_time() {
    const LAMBDA: Microns = Microns::const_new(0.8);
    const C0: Dollars = Dollars::const_new(500.0);
    const Y0: Probability = Probability::const_new(0.7);
    assert_eq!(LAMBDA.value(), 0.8);
    assert_eq!(C0.value(), 500.0);
    assert_eq!(Y0.value(), 0.7);
}
