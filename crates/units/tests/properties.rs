//! Property-based tests for the unit newtypes.

use maly_units::{
    Centimeters, DesignDensity, Dollars, Microns, Probability, SquareCentimeters, TransistorCount,
};
use proptest::prelude::*;

/// Strategy producing "reasonable" positive magnitudes (avoids overflow in
/// products while still exercising several orders of magnitude).
fn positive() -> impl Strategy<Value = f64> {
    (1.0e-6_f64..1.0e6).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #[test]
    fn length_conversions_roundtrip(v in positive()) {
        let um = Microns::new(v).unwrap();
        let rt = um.to_centimeters().to_microns();
        prop_assert!((rt.value() - v).abs() <= v * 1e-12);
    }

    #[test]
    fn area_conversions_roundtrip(v in positive()) {
        let cm2 = SquareCentimeters::new(v).unwrap();
        let rt = cm2.to_square_microns().to_square_centimeters();
        prop_assert!((rt.value() - v).abs() <= v * 1e-12);
        let rt2 = cm2.to_square_millimeters().to_square_centimeters();
        prop_assert!((rt2.value() - v).abs() <= v * 1e-12);
    }

    #[test]
    fn square_side_squares_back(v in positive()) {
        let a = SquareCentimeters::new(v).unwrap();
        let side = a.square_side();
        let back = side * side;
        prop_assert!((back.value() - v).abs() <= v * 1e-12);
    }

    #[test]
    fn probability_product_never_exceeds_factors(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let pa = Probability::new(a).unwrap();
        let pb = Probability::new(b).unwrap();
        let prod = pa * pb;
        prop_assert!(prod.value() <= pa.value() + 1e-15);
        prop_assert!(prod.value() <= pb.value() + 1e-15);
        prop_assert!((0.0..=1.0).contains(&prod.value()));
    }

    #[test]
    fn probability_powf_stays_in_unit_interval(p in 0.0f64..=1.0, e in 0.0f64..50.0) {
        let y = Probability::new(p).unwrap().powf(e);
        prop_assert!((0.0..=1.0).contains(&y.value()));
    }

    #[test]
    fn probability_powf_monotone_in_area(p in 0.01f64..1.0, a in 0.1f64..10.0, extra in 0.1f64..10.0) {
        // Larger dies can never yield better (eq. 9 monotonicity).
        let y_small = Probability::new(p).unwrap().powf(a);
        let y_large = Probability::new(p).unwrap().powf(a + extra);
        prop_assert!(y_large.value() <= y_small.value() + 1e-15);
    }

    #[test]
    fn complement_is_involutive(p in 0.0f64..=1.0) {
        let pr = Probability::new(p).unwrap();
        let twice = pr.complement().complement();
        prop_assert!((twice.value() - p).abs() < 1e-12);
    }

    #[test]
    fn dollars_sum_is_commutative(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let da = Dollars::new(a).unwrap();
        let db = Dollars::new(b).unwrap();
        prop_assert_eq!((da + db).value(), (db + da).value());
    }

    #[test]
    fn micro_dollars_roundtrip(v in positive()) {
        let d = Dollars::new(v).unwrap();
        let rt = d.to_micro_dollars().to_dollars();
        prop_assert!((rt.value() - v).abs() <= v * 1e-12);
    }

    #[test]
    fn design_density_from_layout_inverts_footprint(
        d_d in 10.0f64..3000.0,
        lam in 0.1f64..2.0,
        n in 1.0e3f64..1.0e8,
    ) {
        let density = DesignDensity::new(d_d).unwrap();
        let lambda = Microns::new(lam).unwrap();
        let area = density.transistor_footprint(lambda) * n;
        let recovered = DesignDensity::from_layout(area, n, lambda).unwrap();
        prop_assert!((recovered.value() - d_d).abs() <= d_d * 1e-9);
    }

    #[test]
    fn transistor_count_millions_roundtrip(m in 0.001f64..1e4) {
        let c = TransistorCount::from_millions(m).unwrap();
        prop_assert!((c.millions() - m).abs() <= m * 1e-12);
    }

    #[test]
    fn serde_roundtrip_preserves_value(v in positive()) {
        let cm = Centimeters::new(v).unwrap();
        let json = serde_json::to_string(&cm).unwrap();
        let back: Centimeters = serde_json::from_str(&json).unwrap();
        // serde_json's default float parser is not bit-exact (the
        // `float_roundtrip` feature trades speed for exactness), so allow
        // a relative error of a few ULPs.
        prop_assert!((back.value() - cm.value()).abs() <= cm.value() * 1e-14);
    }
}
