//! Property-style tests for the unit newtypes.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from a tiny SplitMix64 generator.

use maly_units::{
    Centimeters, DesignDensity, Dollars, Microns, Probability, SquareCentimeters, TransistorCount,
};

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    /// Positive magnitudes across several orders of magnitude (log-uniform
    /// over [1e-6, 1e6], mirroring the old proptest strategy).
    fn positive(&mut self) -> f64 {
        10f64.powf(self.uniform(-6.0, 6.0))
    }
}

const CASES: usize = 256;

#[test]
fn length_conversions_roundtrip() {
    let mut s = Sampler::new(601);
    for _ in 0..CASES {
        let v = s.positive();
        let um = Microns::new(v).unwrap();
        let rt = um.to_centimeters().to_microns();
        assert!((rt.value() - v).abs() <= v * 1e-12);
    }
}

#[test]
fn area_conversions_roundtrip() {
    let mut s = Sampler::new(602);
    for _ in 0..CASES {
        let v = s.positive();
        let cm2 = SquareCentimeters::new(v).unwrap();
        let rt = cm2.to_square_microns().to_square_centimeters();
        assert!((rt.value() - v).abs() <= v * 1e-12);
        let rt2 = cm2.to_square_millimeters().to_square_centimeters();
        assert!((rt2.value() - v).abs() <= v * 1e-12);
    }
}

#[test]
fn square_side_squares_back() {
    let mut s = Sampler::new(603);
    for _ in 0..CASES {
        let v = s.positive();
        let a = SquareCentimeters::new(v).unwrap();
        let side = a.square_side();
        let back = side * side;
        assert!((back.value() - v).abs() <= v * 1e-12);
    }
}

#[test]
fn probability_product_never_exceeds_factors() {
    let mut s = Sampler::new(604);
    for _ in 0..CASES {
        let a = s.uniform(0.0, 1.0);
        let b = s.uniform(0.0, 1.0);
        let pa = Probability::new(a).unwrap();
        let pb = Probability::new(b).unwrap();
        let prod = pa * pb;
        assert!(prod.value() <= pa.value() + 1e-15);
        assert!(prod.value() <= pb.value() + 1e-15);
        assert!((0.0..=1.0).contains(&prod.value()));
    }
}

#[test]
fn probability_powf_stays_in_unit_interval() {
    let mut s = Sampler::new(605);
    for _ in 0..CASES {
        let p = s.uniform(0.0, 1.0);
        let e = s.uniform(0.0, 50.0);
        let y = Probability::new(p).unwrap().powf(e);
        assert!((0.0..=1.0).contains(&y.value()));
    }
}

#[test]
fn probability_powf_monotone_in_area() {
    let mut s = Sampler::new(606);
    for _ in 0..CASES {
        let p = s.uniform(0.01, 1.0);
        let a = s.uniform(0.1, 10.0);
        let extra = s.uniform(0.1, 10.0);
        // Larger dies can never yield better (eq. 9 monotonicity).
        let y_small = Probability::new(p).unwrap().powf(a);
        let y_large = Probability::new(p).unwrap().powf(a + extra);
        assert!(y_large.value() <= y_small.value() + 1e-15);
    }
}

#[test]
fn complement_is_involutive() {
    let mut s = Sampler::new(607);
    for _ in 0..CASES {
        let p = s.uniform(0.0, 1.0);
        let pr = Probability::new(p).unwrap();
        let twice = pr.complement().complement();
        assert!((twice.value() - p).abs() < 1e-12);
    }
}

#[test]
fn dollars_sum_is_commutative() {
    let mut s = Sampler::new(608);
    for _ in 0..CASES {
        let a = s.uniform(0.0, 1e9);
        let b = s.uniform(0.0, 1e9);
        let da = Dollars::new(a).unwrap();
        let db = Dollars::new(b).unwrap();
        assert!(((da + db).value() - (db + da).value()).abs() == 0.0);
    }
}

#[test]
fn micro_dollars_roundtrip() {
    let mut s = Sampler::new(609);
    for _ in 0..CASES {
        let v = s.positive();
        let d = Dollars::new(v).unwrap();
        let rt = d.to_micro_dollars().to_dollars();
        assert!((rt.value() - v).abs() <= v * 1e-12);
    }
}

#[test]
fn design_density_from_layout_inverts_footprint() {
    let mut s = Sampler::new(610);
    for _ in 0..CASES {
        let d_d = s.uniform(10.0, 3000.0);
        let lam = s.uniform(0.1, 2.0);
        let n = s.uniform(1.0e3, 1.0e8);
        let density = DesignDensity::new(d_d).unwrap();
        let lambda = Microns::new(lam).unwrap();
        let area = density.transistor_footprint(lambda) * n;
        let recovered = DesignDensity::from_layout(area, n, lambda).unwrap();
        assert!((recovered.value() - d_d).abs() <= d_d * 1e-9);
    }
}

#[test]
fn transistor_count_millions_roundtrip() {
    let mut s = Sampler::new(611);
    for _ in 0..CASES {
        let m = s.uniform(0.001, 1e4);
        let c = TransistorCount::from_millions(m).unwrap();
        assert!((c.millions() - m).abs() <= m * 1e-12);
    }
}
