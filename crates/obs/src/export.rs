//! ndjson trace export.
//!
//! One JSON object per line, in four sections: completed spans in
//! completion order (so every child line precedes its parent's line),
//! then counters, gauges, and histograms, each sorted by name. The
//! sorted metric sections are reproducible across runs and thread
//! counts for work counters; span lines, gauge levels, and histogram
//! contents carry wall-clock state and are inherently run-specific.
//! `xtask trace-check` validates the format (every line parses, span
//! parents exist and enclose their children, metric sections are
//! name-sorted).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::metrics::{counters_snapshot, gauges_snapshot, histograms_snapshot};
use crate::span::finished_spans;

/// Minimal JSON string escaping for span/metric names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full observability state — completed spans, counters,
/// histograms — as ndjson (one JSON object per line, trailing newline).
#[must_use]
pub fn export_ndjson() -> String {
    let mut out = String::new();
    for s in finished_spans() {
        let _ = write!(out, "{{\"type\":\"span\",\"id\":{},", s.id);
        match s.parent {
            Some(p) => {
                let _ = write!(out, "\"parent\":{p},");
            }
            None => out.push_str("\"parent\":null,"),
        }
        let _ = writeln!(
            out,
            "\"name\":\"{}\",\"thread\":{},\"start_ns\":{},\"end_ns\":{}}}",
            escape(s.name),
            s.thread,
            s.start_ns,
            s.end_ns
        );
    }
    for c in counters_snapshot() {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"kind\":\"{}\",\"name\":\"{}\",\"value\":{}}}",
            c.kind.as_str(),
            escape(c.name),
            c.value
        );
    }
    for g in gauges_snapshot() {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape(g.name),
            g.value
        );
    }
    for h in histograms_snapshot() {
        let _ = write!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"resolution\":\"{}\",\"count\":{},\"total_ns\":{},\"buckets\":[",
            escape(h.name),
            h.resolution.as_str(),
            h.count,
            h.total_ns
        );
        for (i, b) in h.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}\n");
    }
    out
}

/// Writes [`export_ndjson`] to `path`.
///
/// # Errors
/// Propagates the underlying filesystem error.
pub fn write_trace(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, export_ndjson())
}

/// Writes the trace to the path named by [`crate::OBS_OUT_ENV_VAR`],
/// if set. Binaries call this once on exit; it is a no-op (returning
/// `Ok(None)`) when the variable is unset or empty.
///
/// # Errors
/// Propagates the underlying filesystem error.
pub fn write_trace_if_requested() -> std::io::Result<Option<PathBuf>> {
    match std::env::var(crate::OBS_OUT_ENV_VAR) {
        Ok(raw) if !raw.trim().is_empty() => {
            let path = PathBuf::from(raw.trim());
            write_trace(&path)?;
            Ok(Some(path))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, Counter, Gauge, Histogram};

    static EXPORT_COUNTER: Counter = Counter::work("test.export.counter");
    static EXPORT_GAUGE: Gauge = Gauge::new("test.export.gauge");
    static EXPORT_HIRES: Histogram = Histogram::high_resolution("test.export.hires_ns");

    #[test]
    fn export_lines_are_well_formed() {
        let _guard = crate::test_lock::hold();
        crate::set_enabled(true);
        {
            let _outer = span("test.export.outer");
            let _inner = span("test.export.inner");
        }
        EXPORT_COUNTER.add(7);
        EXPORT_GAUGE.reset();
        EXPORT_GAUGE.add(2);
        EXPORT_GAUGE.decr();
        EXPORT_HIRES.record_ns(500);
        let text = export_ndjson();
        crate::set_enabled(false);
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line {line}");
            assert!(line.contains("\"type\":\""), "line {line}");
        }
        // The child completes (and therefore exports) before its parent.
        let inner_pos = text
            .lines()
            .position(|l| l.contains("test.export.inner"))
            .expect("inner span exported");
        let outer_pos = text
            .lines()
            .position(|l| l.contains("\"name\":\"test.export.outer\""))
            .expect("outer span exported");
        assert!(inner_pos < outer_pos);
        assert!(text.contains("\"name\":\"test.export.counter\""));
        assert!(text.contains("\"kind\":\"work\""));
        assert!(text.contains("{\"type\":\"gauge\",\"name\":\"test.export.gauge\",\"value\":1}"));
        assert!(text.contains("\"name\":\"test.export.hires_ns\",\"resolution\":\"hires\""));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain.name"), "plain.name");
    }
}
