//! Sharded atomic counters and fixed-bucket log-scale histograms.
//!
//! Instrumentation sites declare metrics as `static` items and bump
//! them directly; the first touch registers the metric into a
//! process-wide registry so [`counters_snapshot`] and
//! [`histograms_snapshot`] can enumerate everything that ever counted.
//! Registration is a one-time compare-exchange — the steady-state cost
//! of an increment is one relaxed load (the registered check) plus one
//! relaxed `fetch_add` on a cache-line-padded per-thread shard.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Shards per counter. Power of two; eight covers the thread counts the
/// executor actually uses without inflating the static footprint.
const COUNTER_SHARDS: usize = 8;

/// Buckets per histogram: bucket `i` counts durations `d` with
/// `2^(i-1) ≤ d < 2^i` nanoseconds (bucket 0 holds `d < 2` ns), so 40
/// buckets span sub-nanosecond to ~9 minutes.
pub const HIST_BUCKETS: usize = 40;

/// A cache-line-padded atomic cell, so shards owned by different
/// threads never false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

impl Shard {
    const fn new() -> Self {
        Self(AtomicU64::new(0))
    }
}

/// What a counter's total means across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Model work performed (cells evaluated, replications run). Totals
    /// are thread-count-invariant by the executor's determinism
    /// contract and safe to golden-compare.
    Work,
    /// Scheduling/caching diagnostics (chunks spawned, cache hits).
    /// Totals legitimately vary with thread count and timing.
    Diag,
}

impl CounterKind {
    /// The kind's ndjson tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CounterKind::Work => "work",
            CounterKind::Diag => "diag",
        }
    }
}

/// A sharded monotonic event counter. Declare as a `static`:
///
/// ```
/// static EVALS: maly_obs::Counter = maly_obs::Counter::work("demo.evals");
/// EVALS.add(3);
/// assert!(EVALS.value() >= 3);
/// ```
pub struct Counter {
    name: &'static str,
    kind: CounterKind,
    registered: AtomicBool,
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// A thread-count-invariant work counter (see [`CounterKind::Work`]).
    #[must_use]
    pub const fn work(name: &'static str) -> Self {
        Self::new(name, CounterKind::Work)
    }

    /// A scheduling/caching diagnostic counter (see [`CounterKind::Diag`]).
    #[must_use]
    pub const fn diag(name: &'static str) -> Self {
        Self::new(name, CounterKind::Diag)
    }

    const fn new(name: &'static str, kind: CounterKind) -> Self {
        Self {
            name,
            kind,
            registered: AtomicBool::new(false),
            shards: [const { Shard::new() }; COUNTER_SHARDS],
        }
    }

    /// The counter's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The counter's kind.
    #[must_use]
    pub fn kind(&self) -> CounterKind {
        self.kind
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            register_counter(self);
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the calling thread's shard.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The counter's total across all shards. Sharding never splits a
    /// logical increment, so the sum is exact (not a sampled estimate).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A fixed-bucket log₂-scale duration histogram. Declare as a `static`;
/// recording is gated by the span layer on [`crate::enabled`], so a
/// disabled run never touches the buckets.
pub struct Histogram {
    name: &'static str,
    registered: AtomicBool,
    count: AtomicU64,
    total_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// A histogram with the given registry name.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// The histogram's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records a duration in nanoseconds.
    pub fn record_ns(&'static self, ns: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            register_histogram(self);
        }
        let idx = (usize::try_from(64 - ns.leading_zeros()).unwrap_or(0)).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket and the count/total.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }

    fn snapshot(&'static self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            name: self.name,
            count: self.count(),
            total_ns: self.total_ns(),
            buckets,
        }
    }
}

/// One counter's name, kind, and total at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name (dotted, e.g. `adaptive.mesh_evals`).
    pub name: &'static str,
    /// Work or diagnostic (see [`CounterKind`]).
    pub kind: CounterKind,
    /// Total across all shards.
    pub value: u64,
}

/// One histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name (dotted, e.g. `par.chunk_ns`).
    pub name: &'static str,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub total_ns: u64,
    /// Per-bucket counts; bucket `i` holds durations `< 2^i` ns and
    /// `≥ 2^(i-1)` ns.
    pub buckets: [u64; HIST_BUCKETS],
}

struct Registry {
    counters: Vec<&'static Counter>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    histograms: Vec::new(),
});

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    f(&mut REGISTRY.lock().unwrap_or_else(PoisonError::into_inner))
}

fn register_counter(c: &'static Counter) {
    if c.registered
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        with_registry(|r| r.counters.push(c));
    }
}

fn register_histogram(h: &'static Histogram) {
    if h.registered
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        with_registry(|r| r.histograms.push(h));
    }
}

/// A stable per-thread shard index. Assigned round-robin on first use;
/// one thread always lands on the same shard, so increments from a
/// steady worker never bounce cache lines.
fn shard_index() -> usize {
    ordinal() as usize % COUNTER_SHARDS
}

/// A small dense per-thread ordinal (0, 1, 2, …) in first-touch order.
/// Also used by the span layer to tag records with the recording
/// thread without formatting `ThreadId`s.
pub(crate) fn ordinal() -> u64 {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed) as u64;
    }
    ORDINAL.with(|o| *o)
}

/// All registered counters, sorted by name. The sort (not registration
/// order, which is racy) makes the exported snapshot reproducible, the
/// metric analogue of the executor's index-ordered collection.
#[must_use]
pub fn counters_snapshot() -> Vec<CounterSnapshot> {
    let mut out: Vec<CounterSnapshot> = with_registry(|r| {
        r.counters
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name,
                kind: c.kind,
                value: c.value(),
            })
            .collect()
    });
    out.sort_by_key(|s| s.name);
    out
}

/// All registered histograms, sorted by name.
#[must_use]
pub fn histograms_snapshot() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> =
        with_registry(|r| r.histograms.iter().map(|h| h.snapshot()).collect());
    out.sort_by_key(|s| s.name);
    out
}

/// Zeroes every registered counter and histogram. Metrics stay
/// registered, so a later snapshot still lists them (at zero).
pub fn reset_metrics() {
    with_registry(|r| {
        for c in &r.counters {
            c.reset();
        }
        for h in &r.histograms {
            h.reset();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::work("test.metrics.counter");
    static TEST_DIAG: Counter = Counter::diag("test.metrics.diag");
    static TEST_HIST: Histogram = Histogram::new("test.metrics.hist");

    #[test]
    fn counter_totals_and_registration() {
        let _guard = crate::test_lock::hold();
        TEST_COUNTER.reset();
        TEST_COUNTER.add(5);
        TEST_COUNTER.incr();
        assert_eq!(TEST_COUNTER.value(), 6);
        let snap = counters_snapshot();
        let mine = snap
            .iter()
            .find(|s| s.name == "test.metrics.counter")
            .expect("registered on first add");
        assert_eq!(mine.value, 6);
        assert_eq!(mine.kind, CounterKind::Work);
        // Sorted by name.
        let names: Vec<_> = snap.iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn counter_sums_across_threads() {
        let _guard = crate::test_lock::hold();
        TEST_DIAG.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                // Exercising the sharded counter from distinct
                // OS threads requires real threads.
                scope.spawn(|| {
                    for _ in 0..1000 {
                        TEST_DIAG.incr();
                    }
                });
            }
        });
        assert_eq!(TEST_DIAG.value(), 4000);
        assert_eq!(TEST_DIAG.kind(), CounterKind::Diag);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _guard = crate::test_lock::hold();
        TEST_HIST.reset();
        TEST_HIST.record_ns(0); // bucket 0
        TEST_HIST.record_ns(1); // bucket 1 (bit length 1)
        TEST_HIST.record_ns(1024); // bucket 11
        TEST_HIST.record_ns(u64::MAX); // clamped to the last bucket
        assert_eq!(TEST_HIST.count(), 4);
        let snap = histograms_snapshot();
        let mine = snap
            .iter()
            .find(|s| s.name == "test.metrics.hist")
            .expect("registered on first record");
        assert_eq!(mine.buckets[0], 1);
        assert_eq!(mine.buckets[1], 1);
        assert_eq!(mine.buckets[11], 1);
        assert_eq!(mine.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(mine.count, 4);
    }

    #[test]
    fn reset_metrics_zeroes_but_keeps_registration() {
        let _guard = crate::test_lock::hold();
        TEST_COUNTER.add(1);
        reset_metrics();
        assert_eq!(TEST_COUNTER.value(), 0);
        assert!(counters_snapshot()
            .iter()
            .any(|s| s.name == "test.metrics.counter"));
    }
}
