//! Sharded atomic counters, gauges, and fixed-bucket log-scale
//! histograms.
//!
//! Instrumentation sites declare metrics as `static` items and bump
//! them directly; the first touch registers the metric into a
//! process-wide registry so [`counters_snapshot`], [`gauges_snapshot`]
//! and [`histograms_snapshot`] can enumerate everything that ever
//! counted. Registration is a one-time compare-exchange — the
//! steady-state cost of an increment is one relaxed load (the
//! registered check) plus one relaxed `fetch_add` on a
//! cache-line-padded per-thread shard.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Shards per counter. Power of two; eight covers the thread counts the
/// executor actually uses without inflating the static footprint.
const COUNTER_SHARDS: usize = 8;

/// Buckets per log₂ histogram: bucket `i` (for `i ≥ 1`) counts
/// durations `d` with `2^(i-1) ≤ d < 2^i` nanoseconds (bucket 0 holds
/// `d = 0`), so 40 buckets span sub-nanosecond to ~9 minutes.
pub const HIST_BUCKETS: usize = 40;

/// Buckets per high-resolution histogram: four linear sub-buckets per
/// power-of-two octave, so the top bucket starts at 2^40 ns (~18 min)
/// while the worst-case relative bucket width stays ≤ 25 % — fine
/// enough to interpolate sub-millisecond request percentiles.
pub const HIRES_HIST_BUCKETS: usize = 160;

/// log₂(sub-buckets per octave) for [`HistResolution::HighRes`].
const HIRES_SUB_BITS: u32 = 2;

/// Sub-bucket mask for [`HistResolution::HighRes`].
const HIRES_SUB_MASK: u64 = (1 << HIRES_SUB_BITS) - 1;

/// A cache-line-padded atomic cell, so shards owned by different
/// threads never false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

impl Shard {
    const fn new() -> Self {
        Self(AtomicU64::new(0))
    }
}

/// What a counter's total means across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Model work performed (cells evaluated, replications run). Totals
    /// are thread-count-invariant by the executor's determinism
    /// contract and safe to golden-compare.
    Work,
    /// Scheduling/caching diagnostics (chunks spawned, cache hits).
    /// Totals legitimately vary with thread count and timing.
    Diag,
}

impl CounterKind {
    /// The kind's ndjson tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CounterKind::Work => "work",
            CounterKind::Diag => "diag",
        }
    }
}

/// A sharded monotonic event counter. Declare as a `static`:
///
/// ```
/// static EVALS: maly_obs::Counter = maly_obs::Counter::work("demo.evals");
/// EVALS.add(3);
/// assert!(EVALS.value() >= 3);
/// ```
pub struct Counter {
    name: &'static str,
    kind: CounterKind,
    registered: AtomicBool,
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// A thread-count-invariant work counter (see [`CounterKind::Work`]).
    #[must_use]
    pub const fn work(name: &'static str) -> Self {
        Self::new(name, CounterKind::Work)
    }

    /// A scheduling/caching diagnostic counter (see [`CounterKind::Diag`]).
    #[must_use]
    pub const fn diag(name: &'static str) -> Self {
        Self::new(name, CounterKind::Diag)
    }

    const fn new(name: &'static str, kind: CounterKind) -> Self {
        Self {
            name,
            kind,
            registered: AtomicBool::new(false),
            shards: [const { Shard::new() }; COUNTER_SHARDS],
        }
    }

    /// The counter's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The counter's kind.
    #[must_use]
    pub fn kind(&self) -> CounterKind {
        self.kind
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            register_counter(self);
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the calling thread's shard.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The counter's total across all shards. Sharding never splits a
    /// logical increment, so the sum is exact (not a sampled estimate).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A sharded signed level gauge (queue depth, in-flight requests).
/// Deltas land on the calling thread's shard as two's-complement
/// wrapping adds, so `incr` on one thread and `decr` on another never
/// contend; the snapshot value is the wrapping sum across shards, which
/// is exact because every logical `add` hits exactly one shard. Like
/// all timing-coupled metrics, gauge values are diagnostics: they vary
/// with scheduling and are excluded from bit-identity comparisons.
///
/// ```
/// static DEPTH: maly_obs::Gauge = maly_obs::Gauge::new("demo.depth");
/// DEPTH.incr();
/// DEPTH.add(2);
/// DEPTH.decr();
/// assert_eq!(DEPTH.value(), 2);
/// ```
pub struct Gauge {
    name: &'static str,
    registered: AtomicBool,
    shards: [Shard; COUNTER_SHARDS],
}

impl Gauge {
    /// A gauge with the given registry name.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            registered: AtomicBool::new(false),
            shards: [const { Shard::new() }; COUNTER_SHARDS],
        }
    }

    /// The gauge's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds a signed delta to the calling thread's shard.
    #[inline]
    pub fn add(&'static self, n: i64) {
        if !self.registered.load(Ordering::Relaxed) {
            register_gauge(self);
        }
        // i64 → u64 keeps the two's-complement bit pattern, so the
        // wrapping shard sum in `value` recovers the signed total.
        self.shards[shard_index()]
            .0
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Raises the gauge by one.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Lowers the gauge by one.
    #[inline]
    pub fn decr(&'static self) {
        self.add(-1);
    }

    /// The gauge's current level: the wrapping sum of all shards,
    /// reinterpreted as signed.
    #[must_use]
    pub fn value(&self) -> i64 {
        let total = self
            .shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)));
        {
            total as i64
        }
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// How a [`Histogram`] maps a duration to a bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistResolution {
    /// One bucket per power-of-two octave ([`HIST_BUCKETS`] buckets).
    /// Cheap and compact; bucket widths double, so an interpolated
    /// percentile carries up to a 2× relative error. Right for coarse
    /// kernel/chunk timings.
    Log2,
    /// Four linear sub-buckets per octave ([`HIRES_HIST_BUCKETS`]
    /// buckets). Worst-case relative bucket width is 25 %, tight enough
    /// for sub-millisecond request-latency percentiles.
    HighRes,
}

impl HistResolution {
    /// Number of buckets a histogram at this resolution uses.
    #[must_use]
    pub const fn bucket_count(self) -> usize {
        match self {
            HistResolution::Log2 => HIST_BUCKETS,
            HistResolution::HighRes => HIRES_HIST_BUCKETS,
        }
    }

    /// The resolution's ndjson tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HistResolution::Log2 => "log2",
            HistResolution::HighRes => "hires",
        }
    }

    /// Bucket index for a duration; out-of-range durations clamp to the
    /// top bucket. Public so external tools (e.g. the load generator)
    /// can bucket self-measured durations into detached
    /// [`HistogramSnapshot`]s with the exact registry semantics.
    #[must_use]
    pub fn index_for(self, ns: u64) -> usize {
        let idx = match self {
            HistResolution::Log2 => usize::try_from(64 - ns.leading_zeros()).unwrap_or(0),
            HistResolution::HighRes => {
                if ns < (1 << HIRES_SUB_BITS) {
                    // The first four buckets hold exact values 0..=3.
                    usize::try_from(ns).unwrap_or(0)
                } else {
                    // HDR-style: the top bits select the octave, the
                    // next HIRES_SUB_BITS bits the linear sub-bucket.
                    let octave = 63 - ns.leading_zeros();
                    let sub = (ns >> (octave - HIRES_SUB_BITS)) & HIRES_SUB_MASK;
                    let base = (octave - 1) << HIRES_SUB_BITS;
                    usize::try_from(u64::from(base) + sub).unwrap_or(0)
                }
            }
        };
        idx.min(self.bucket_count() - 1)
    }

    /// Inclusive lower and exclusive upper bound (in ns) of a bucket.
    /// The top bucket is clamped at record time, so its nominal upper
    /// bound understates extreme outliers; percentile interpolation
    /// stays finite because of it.
    #[must_use]
    pub fn bucket_bounds(self, idx: usize) -> (u64, u64) {
        match self {
            HistResolution::Log2 => {
                if idx == 0 {
                    (0, 1)
                } else {
                    (1u64 << (idx - 1), 1u64 << idx)
                }
            }
            HistResolution::HighRes => {
                let sub_buckets = 1usize << HIRES_SUB_BITS;
                if idx < sub_buckets {
                    (idx as u64, idx as u64 + 1)
                } else {
                    let octave = (idx >> HIRES_SUB_BITS) as u32 + 1;
                    let sub = (idx & (sub_buckets - 1)) as u64;
                    let width = 1u64 << (octave - HIRES_SUB_BITS);
                    let lo = (1u64 << octave) + sub * width;
                    (lo, lo + width)
                }
            }
        }
    }
}

/// A fixed-bucket log-scale duration histogram. Declare as a `static`;
/// recording is gated by the span layer on [`crate::enabled`], so a
/// disabled run never touches the buckets. [`Histogram::new`] buckets
/// one octave per bucket; [`Histogram::high_resolution`] splits each
/// octave into four linear sub-buckets for request-latency percentiles.
pub struct Histogram {
    name: &'static str,
    resolution: HistResolution,
    registered: AtomicBool,
    count: AtomicU64,
    total_ns: AtomicU64,
    buckets: [AtomicU64; HIRES_HIST_BUCKETS],
}

impl Histogram {
    /// A log₂ histogram with the given registry name.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self::with_resolution(name, HistResolution::Log2)
    }

    /// A quarter-octave histogram for sub-millisecond request timing
    /// (see [`HistResolution::HighRes`]).
    #[must_use]
    pub const fn high_resolution(name: &'static str) -> Self {
        Self::with_resolution(name, HistResolution::HighRes)
    }

    const fn with_resolution(name: &'static str, resolution: HistResolution) -> Self {
        Self {
            name,
            resolution,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIRES_HIST_BUCKETS],
        }
    }

    /// The histogram's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The histogram's bucket resolution.
    #[must_use]
    pub fn resolution(&self) -> HistResolution {
        self.resolution
    }

    /// Records a duration in nanoseconds.
    pub fn record_ns(&'static self, ns: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            register_histogram(self);
        }
        let idx = self.resolution.index_for(ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket and the count/total.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }

    fn snapshot(&'static self) -> HistogramSnapshot {
        let buckets = self.buckets[..self.resolution.bucket_count()]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            name: self.name,
            resolution: self.resolution,
            count: self.count(),
            total_ns: self.total_ns(),
            buckets,
        }
    }
}

/// One counter's name, kind, and total at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name (dotted, e.g. `adaptive.mesh_evals`).
    pub name: &'static str,
    /// Work or diagnostic (see [`CounterKind`]).
    pub kind: CounterKind,
    /// Total across all shards.
    pub value: u64,
}

/// One gauge's name and level at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Registry name (dotted, e.g. `serve.queue_depth`).
    pub name: &'static str,
    /// Signed level summed across all shards.
    pub value: i64,
}

/// The standard latency percentile set, extracted from a
/// [`HistogramSnapshot`] by [`HistogramSnapshot::latency_percentiles`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Median latency in nanoseconds (interpolated).
    pub p50_ns: f64,
    /// 90th-percentile latency in nanoseconds (interpolated).
    pub p90_ns: f64,
    /// 99th-percentile latency in nanoseconds (interpolated).
    pub p99_ns: f64,
    /// 99.9th-percentile latency in nanoseconds (interpolated).
    pub p999_ns: f64,
}

/// One histogram's buckets at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name (dotted, e.g. `par.chunk_ns`).
    pub name: &'static str,
    /// Bucket resolution; determines `buckets.len()` and bounds.
    pub resolution: HistResolution,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub total_ns: u64,
    /// Per-bucket counts; bounds per bucket come from
    /// [`HistResolution::bucket_bounds`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Interpolated percentile in nanoseconds for quantile `q` in
    /// `[0, 1]`. Walks the cumulative bucket counts to the bucket
    /// containing the target rank, then interpolates linearly inside
    /// that bucket's `[lo, hi)` range — the log-bucket analogue of
    /// nearest-rank-with-interpolation. Returns `0.0` for an empty
    /// histogram. Values clamped into the top bucket at record time
    /// interpolate within that bucket's nominal bounds, so the result
    /// is always finite.
    #[must_use]
    pub fn percentile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum: u64 = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if next as f64 >= target {
                let (lo, hi) = self.resolution.bucket_bounds(idx);
                let frac = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                return lo as f64 + frac * (hi - lo) as f64;
            }
            cum = next;
        }
        // Unreachable when count equals the bucket sum; cover torn
        // snapshots (count raced ahead of a bucket) with the top
        // occupied bucket's upper bound.
        let top = self.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        {
            self.resolution.bucket_bounds(top).1 as f64
        }
    }

    /// The p50/p90/p99/p999 set (see [`Self::percentile_ns`]).
    #[must_use]
    pub fn latency_percentiles(&self) -> LatencyPercentiles {
        LatencyPercentiles {
            p50_ns: self.percentile_ns(0.50),
            p90_ns: self.percentile_ns(0.90),
            p99_ns: self.percentile_ns(0.99),
            p999_ns: self.percentile_ns(0.999),
        }
    }

    /// Mean recorded duration in nanoseconds (`0.0` when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        {
            self.total_ns as f64 / self.count as f64
        }
    }
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
});

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    f(&mut REGISTRY.lock().unwrap_or_else(PoisonError::into_inner))
}

fn register_counter(c: &'static Counter) {
    if c.registered
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        with_registry(|r| r.counters.push(c));
    }
}

fn register_gauge(g: &'static Gauge) {
    if g.registered
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        with_registry(|r| r.gauges.push(g));
    }
}

fn register_histogram(h: &'static Histogram) {
    if h.registered
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        with_registry(|r| r.histograms.push(h));
    }
}

/// A stable per-thread shard index. Assigned round-robin on first use;
/// one thread always lands on the same shard, so increments from a
/// steady worker never bounce cache lines.
fn shard_index() -> usize {
    ordinal() as usize % COUNTER_SHARDS
}

/// A small dense per-thread ordinal (0, 1, 2, …) in first-touch order.
/// Also used by the span layer to tag records with the recording
/// thread without formatting `ThreadId`s.
pub(crate) fn ordinal() -> u64 {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed) as u64;
    }
    ORDINAL.with(|o| *o)
}

/// All registered counters, sorted by name. The sort (not registration
/// order, which is racy) makes the exported snapshot reproducible, the
/// metric analogue of the executor's index-ordered collection.
#[must_use]
pub fn counters_snapshot() -> Vec<CounterSnapshot> {
    let mut out: Vec<CounterSnapshot> = with_registry(|r| {
        r.counters
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name,
                kind: c.kind,
                value: c.value(),
            })
            .collect()
    });
    out.sort_by_key(|s| s.name);
    out
}

/// All registered gauges, sorted by name.
#[must_use]
pub fn gauges_snapshot() -> Vec<GaugeSnapshot> {
    let mut out: Vec<GaugeSnapshot> = with_registry(|r| {
        r.gauges
            .iter()
            .map(|g| GaugeSnapshot {
                name: g.name,
                value: g.value(),
            })
            .collect()
    });
    out.sort_by_key(|s| s.name);
    out
}

/// All registered histograms, sorted by name.
#[must_use]
pub fn histograms_snapshot() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> =
        with_registry(|r| r.histograms.iter().map(|h| h.snapshot()).collect());
    out.sort_by_key(|s| s.name);
    out
}

/// Zeroes every registered counter, gauge, and histogram. Metrics stay
/// registered, so a later snapshot still lists them (at zero).
pub fn reset_metrics() {
    with_registry(|r| {
        for c in &r.counters {
            c.reset();
        }
        for g in &r.gauges {
            g.reset();
        }
        for h in &r.histograms {
            h.reset();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::work("test.metrics.counter");
    static TEST_DIAG: Counter = Counter::diag("test.metrics.diag");
    static TEST_HIST: Histogram = Histogram::new("test.metrics.hist");
    static TEST_GAUGE: Gauge = Gauge::new("test.metrics.gauge");
    static TEST_HIRES: Histogram = Histogram::high_resolution("test.metrics.hires");

    #[test]
    fn counter_totals_and_registration() {
        let _guard = crate::test_lock::hold();
        TEST_COUNTER.reset();
        TEST_COUNTER.add(5);
        TEST_COUNTER.incr();
        assert_eq!(TEST_COUNTER.value(), 6);
        let snap = counters_snapshot();
        let mine = snap
            .iter()
            .find(|s| s.name == "test.metrics.counter")
            .expect("registered on first add");
        assert_eq!(mine.value, 6);
        assert_eq!(mine.kind, CounterKind::Work);
        // Sorted by name.
        let names: Vec<_> = snap.iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn counter_sums_across_threads() {
        let _guard = crate::test_lock::hold();
        TEST_DIAG.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                // Exercising the sharded counter from distinct
                // OS threads requires real threads.
                scope.spawn(|| {
                    for _ in 0..1000 {
                        TEST_DIAG.incr();
                    }
                });
            }
        });
        assert_eq!(TEST_DIAG.value(), 4000);
        assert_eq!(TEST_DIAG.kind(), CounterKind::Diag);
    }

    #[test]
    fn gauge_tracks_signed_level_across_threads() {
        let _guard = crate::test_lock::hold();
        TEST_GAUGE.reset();
        TEST_GAUGE.add(3);
        std::thread::scope(|scope| {
            // Decrements from other threads land on other shards; the
            // wrapping sum must still recover the signed level.
            scope.spawn(|| {
                for _ in 0..5 {
                    TEST_GAUGE.decr();
                }
            });
        });
        assert_eq!(TEST_GAUGE.value(), -2);
        TEST_GAUGE.incr();
        assert_eq!(TEST_GAUGE.value(), -1);
        let snap = gauges_snapshot();
        let mine = snap
            .iter()
            .find(|s| s.name == "test.metrics.gauge")
            .expect("registered on first add");
        assert_eq!(mine.value, -1);
        let names: Vec<_> = snap.iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _guard = crate::test_lock::hold();
        TEST_HIST.reset();
        TEST_HIST.record_ns(0); // bucket 0
        TEST_HIST.record_ns(1); // bucket 1 (bit length 1)
        TEST_HIST.record_ns(1024); // bucket 11
        TEST_HIST.record_ns(u64::MAX); // clamped to the last bucket
        assert_eq!(TEST_HIST.count(), 4);
        let snap = histograms_snapshot();
        let mine = snap
            .iter()
            .find(|s| s.name == "test.metrics.hist")
            .expect("registered on first record");
        assert_eq!(mine.resolution, HistResolution::Log2);
        assert_eq!(mine.buckets.len(), HIST_BUCKETS);
        assert_eq!(mine.buckets[0], 1);
        assert_eq!(mine.buckets[1], 1);
        assert_eq!(mine.buckets[11], 1);
        assert_eq!(mine.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(mine.count, 4);
    }

    #[test]
    fn hires_buckets_split_octaves_linearly() {
        let _guard = crate::test_lock::hold();
        TEST_HIRES.reset();
        // Exact small values.
        TEST_HIRES.record_ns(0);
        TEST_HIRES.record_ns(3);
        // One octave, four sub-buckets: [8,10) [10,12) [12,14) [14,16).
        TEST_HIRES.record_ns(8);
        TEST_HIRES.record_ns(9);
        TEST_HIRES.record_ns(10);
        TEST_HIRES.record_ns(15);
        TEST_HIRES.record_ns(u64::MAX); // clamped to the last bucket
        let snap = histograms_snapshot();
        let mine = snap
            .iter()
            .find(|s| s.name == "test.metrics.hires")
            .expect("registered on first record");
        assert_eq!(mine.resolution, HistResolution::HighRes);
        assert_eq!(mine.buckets.len(), HIRES_HIST_BUCKETS);
        assert_eq!(mine.buckets[0], 1);
        assert_eq!(mine.buckets[3], 1);
        assert_eq!(mine.buckets[8], 2); // 8 and 9 share [8,10)
        assert_eq!(mine.buckets[9], 1); // 10 in [10,12)
        assert_eq!(mine.buckets[11], 1); // 15 in [14,16)
        assert_eq!(mine.buckets[HIRES_HIST_BUCKETS - 1], 1);
        assert_eq!(mine.count, 7);
        // Bounds tile the number line without gaps.
        for idx in 0..HIRES_HIST_BUCKETS - 1 {
            let (_, hi) = HistResolution::HighRes.bucket_bounds(idx);
            let (next_lo, _) = HistResolution::HighRes.bucket_bounds(idx + 1);
            assert_eq!(hi, next_lo, "gap after bucket {idx}");
        }
    }

    #[test]
    fn reset_metrics_zeroes_but_keeps_registration() {
        let _guard = crate::test_lock::hold();
        TEST_COUNTER.add(1);
        TEST_GAUGE.incr();
        reset_metrics();
        assert_eq!(TEST_COUNTER.value(), 0);
        assert_eq!(TEST_GAUGE.value(), 0);
        assert!(counters_snapshot()
            .iter()
            .any(|s| s.name == "test.metrics.counter"));
        assert!(gauges_snapshot()
            .iter()
            .any(|s| s.name == "test.metrics.gauge"));
    }

    /// Builds a detached snapshot for percentile tests without touching
    /// the global registry.
    fn snap_with(resolution: HistResolution, samples: &[u64]) -> HistogramSnapshot {
        let mut buckets = vec![0u64; resolution.bucket_count()];
        let mut total = 0u64;
        for &s in samples {
            buckets[resolution.index_for(s)] += 1;
            total = total.saturating_add(s);
        }
        HistogramSnapshot {
            name: "test.metrics.percentiles",
            resolution,
            count: samples.len() as u64,
            total_ns: total,
            buckets,
        }
    }

    #[test]
    fn percentiles_of_empty_histogram_are_zero() {
        let snap = snap_with(HistResolution::HighRes, &[]);
        let p = snap.latency_percentiles();
        assert_eq!(p.p50_ns, 0.0);
        assert_eq!(p.p999_ns, 0.0);
        assert_eq!(snap.mean_ns(), 0.0);
    }

    #[test]
    fn percentiles_of_single_bucket_mass_interpolate_within_it() {
        // 100 samples, all exactly 1000 ns → hires bucket [896, 1024)
        // (octave [512, 1024), quarter-width 128, fourth sub-bucket).
        let snap = snap_with(HistResolution::HighRes, &[1000; 100]);
        let (lo, hi) = snap
            .resolution
            .bucket_bounds(snap.resolution.index_for(1000));
        assert_eq!((lo, hi), (896, 1024));
        let p = snap.latency_percentiles();
        for v in [p.p50_ns, p.p90_ns, p.p99_ns, p.p999_ns] {
            assert!(v >= lo as f64 && v < hi as f64, "{v} outside [{lo},{hi})");
        }
        // Higher quantiles interpolate further into the bucket.
        assert!(p.p50_ns < p.p99_ns);
    }

    #[test]
    fn percentiles_of_saturated_top_bucket_stay_finite() {
        let snap = snap_with(HistResolution::Log2, &[u64::MAX; 10]);
        let (lo, hi) = HistResolution::Log2.bucket_bounds(HIST_BUCKETS - 1);
        let p = snap.latency_percentiles();
        for v in [p.p50_ns, p.p99_ns, p.p999_ns] {
            assert!(v.is_finite());
            assert!(v >= lo as f64 && v <= hi as f64);
        }
    }

    #[test]
    fn percentiles_of_exact_boundary_samples() {
        // 1024 sits exactly on a log2 bucket boundary → bucket 11,
        // range [1024, 2048).
        let snap = snap_with(HistResolution::Log2, &[1024; 4]);
        let p50 = snap.percentile_ns(0.5);
        assert!((1024.0..2048.0).contains(&p50), "{p50}");
        // q=0 lands on the bucket's lower bound exactly.
        assert_eq!(snap.percentile_ns(0.0), 1024.0);
        // q=1 lands on the bucket's upper bound exactly.
        assert_eq!(snap.percentile_ns(1.0), 2048.0);
    }

    #[test]
    fn percentiles_split_across_buckets() {
        // 90 fast samples at 100 ns, 10 slow at ~1 ms: p50 must sit in
        // the fast bucket, p99 in the slow one.
        let mut samples = vec![100u64; 90];
        samples.extend_from_slice(&[1_000_000; 10]);
        let snap = snap_with(HistResolution::HighRes, &samples);
        let p = snap.latency_percentiles();
        let (fast_lo, fast_hi) = snap
            .resolution
            .bucket_bounds(snap.resolution.index_for(100));
        let (slow_lo, slow_hi) = snap
            .resolution
            .bucket_bounds(snap.resolution.index_for(1_000_000));
        assert!(p.p50_ns >= fast_lo as f64 && p.p50_ns < fast_hi as f64);
        assert!(p.p99_ns >= slow_lo as f64 && p.p99_ns < slow_hi as f64);
        assert!(p.p50_ns < p.p90_ns || p.p90_ns < p.p99_ns);
    }
}
