//! Std-only structured observability for the workspace's hot paths.
//!
//! Every sweep and simulation in this workspace is deterministic and
//! CPU-bound; what varies between machines, thread counts, and PRs is
//! *how much work* ran and *where the time went*. This crate makes both
//! first-class, without adding a dependency:
//!
//! * [`span`] / [`span_child`] — hierarchical, monotonic-clock-timed
//!   spans. Spans are thread-aware: a worker chunk spawned by
//!   `maly-par` opens its span with the submitting thread's span as an
//!   explicit parent, so the trace tree nests `par.chunk` under the
//!   sweep that submitted it even though they ran on different threads.
//! * [`Counter`] — sharded relaxed-atomic event counters, declared as
//!   `static`s at the instrumentation site and lazily registered into a
//!   process-wide registry for snapshotting.
//! * [`Gauge`] — sharded signed level gauges (queue depths, in-flight
//!   requests); always diagnostic, never golden-compared.
//! * [`Histogram`] — fixed-bucket log-scale duration histograms, at
//!   log₂ ([`Histogram::new`]) or quarter-octave resolution
//!   ([`Histogram::high_resolution`], for sub-millisecond request
//!   timing); [`HistogramSnapshot::percentile_ns`] interpolates
//!   p50/p90/p99/p999 latencies from the buckets.
//! * [`export_ndjson`] / [`write_trace`] — an ndjson exporter (one JSON
//!   object per line: spans in completion order, then counters, gauges,
//!   and histograms, each sorted by name).
//!
//! # Disabled-cost contract
//!
//! Observability is off by default. When disabled, a span probe costs
//! one relaxed atomic load and returns a no-op guard — no clock read,
//! no allocation, no lock. Counters always count (they are the backing
//! store for public stats accessors like `wafer_geom::cache::stats`,
//! which must work without `MALY_OBS`); an increment is one relaxed
//! load plus one relaxed `fetch_add` on a per-thread shard, exactly the
//! cost of the bespoke atomics they replaced. The bench suite's
//! `obs_overhead` test pins the end-to-end cost on a sweep hot path to
//! ≤ 1 %.
//!
//! # Determinism contract
//!
//! Instrumentation never feeds back into results: golden tests pass
//! bit-identical with `MALY_OBS=1` at every thread count. Counters are
//! split into two kinds:
//!
//! * [`CounterKind::Work`] — counts model work (grid cells evaluated,
//!   MC replications, …). Totals are **thread-count-invariant** because
//!   the executor's work distribution is deterministic; the exported
//!   snapshot is sorted by name, so the whole work-counter section of a
//!   trace is reproducible.
//! * [`CounterKind::Diag`] — scheduling and caching diagnostics (chunk
//!   counts, cache hits). These legitimately vary with thread count and
//!   timing; they are exported for humans, not for golden comparisons.
//!
//! Gauges and histograms are always on the Diag side of this split:
//! levels and latencies are wall-clock state, so they are exported (and
//! served via `server_stats`) for humans and load generators, never
//! golden-compared.
//!
//! # Activation
//!
//! * `MALY_OBS=1` enables span collection;
//! * `MALY_OBS_OUT=<path>` enables collection *and* makes the workspace
//!   binaries write an ndjson trace there on exit
//!   ([`write_trace_if_requested`]);
//! * the CLI's `--trace-out <path>` flag does both for a single run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod span;

pub use export::{export_ndjson, write_trace, write_trace_if_requested};
pub use metrics::{
    counters_snapshot, gauges_snapshot, histograms_snapshot, reset_metrics, Counter, CounterKind,
    CounterSnapshot, Gauge, GaugeSnapshot, HistResolution, Histogram, HistogramSnapshot,
    LatencyPercentiles, HIRES_HIST_BUCKETS, HIST_BUCKETS,
};
pub use span::{
    current_span, finished_spans, reset_spans, span, span_child, SpanGuard, SpanRecord,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Environment variable enabling span collection (`1`/`true`).
pub const OBS_ENV_VAR: &str = "MALY_OBS";

/// Environment variable naming the ndjson trace output path. Setting it
/// implies [`OBS_ENV_VAR`].
pub const OBS_OUT_ENV_VAR: &str = "MALY_OBS_OUT";

/// Tri-state enabled flag: 0 = unresolved, 1 = off, 2 = on. Steady
/// state is a single relaxed load; the environment is consulted once.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether span collection is enabled. One relaxed atomic load in the
/// steady state — this is the probe every instrumentation site gates on.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => resolve_from_env(),
        s => s == 2,
    }
}

/// Cold path of [`enabled`]: resolve the flag from the environment.
fn resolve_from_env() -> bool {
    let truthy = |v: std::result::Result<String, std::env::VarError>| {
        v.map(|s| {
            let t = s.trim();
            !t.is_empty() && t != "0" && !t.eq_ignore_ascii_case("false")
        })
        .unwrap_or(false)
    };
    let on = truthy(std::env::var(OBS_ENV_VAR))
        || std::env::var(OBS_OUT_ENV_VAR).map(|s| !s.trim().is_empty()) == Ok(true);
    // A concurrent set_enabled wins: only fill in the unresolved slot.
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Force the enabled flag, overriding the environment. Used by the CLI
/// `--trace-out` flag and by tests that must own the process-global
/// state regardless of how the suite was invoked.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Nanoseconds since the process-wide monotonic epoch (the first call
/// into the clock). All span timestamps share this origin, so traces
/// from one process are directly comparable across threads.
#[must_use]
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Reset all observability state: counters, histograms, and recorded
/// spans. For tests and controlled bench sections; concurrent probes
/// during a reset are not lost, merely split across the boundary.
pub fn reset_all() {
    reset_metrics();
    reset_spans();
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Serializes tests that toggle the process-global enabled flag or
    /// reset the registry, so parallel test threads cannot interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_is_sticky_after_set() {
        let _guard = test_lock::hold();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
