//! Hierarchical, thread-aware spans.
//!
//! A span is opened with [`span`] (parent = the innermost span open on
//! the calling thread) or [`span_child`] (explicit parent, for work
//! submitted to another thread) and closed by dropping the returned
//! [`SpanGuard`]. Each thread keeps its own stack of open spans, so
//! nesting on one thread needs no synchronization; completed spans are
//! appended to a process-wide list in completion order, which for RAII
//! guards means every child precedes its parent in the export.
//!
//! When [`crate::enabled`] is false, [`span`] returns a no-op guard
//! after a single relaxed atomic load: no clock read, no id allocation,
//! no thread-local touch.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::metrics::Histogram;

/// A completed span as recorded for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (1-based; ids are allocation-ordered and
    /// therefore race-dependent across threads — trace *structure*, not
    /// ids, is the deterministic part).
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Static span name (e.g. `par.chunk`, `adaptive.surface`).
    pub name: &'static str,
    /// Dense ordinal of the recording thread (first-touch order).
    pub thread: u64,
    /// Start time, nanoseconds since the process clock epoch.
    pub start_ns: u64,
    /// End time, nanoseconds since the process clock epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static FINISHED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    /// The calling thread's stack of open span ids.
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    histogram: Option<&'static Histogram>,
}

/// RAII guard for an open span; dropping it records the span. When
/// observability is disabled this is a no-op shell (no fields set, no
/// work on drop beyond a null check).
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The open span's id, or `None` for a disabled no-op guard. Pass
    /// this across threads as the explicit parent for [`span_child`].
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }

    /// Additionally records the span's duration into `h` on drop.
    #[must_use]
    pub fn with_histogram(mut self, h: &'static Histogram) -> Self {
        if let Some(active) = self.0.as_mut() {
            active.histogram = Some(h);
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let end_ns = crate::now_ns();
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            // Guards drop in LIFO order under normal control flow; the
            // position search keeps the stack consistent even if a
            // guard was moved out of its lexical scope.
            if let Some(pos) = open.iter().rposition(|&id| id == active.id) {
                open.remove(pos);
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread: crate::metrics::ordinal(),
            start_ns: active.start_ns,
            end_ns,
        };
        if let Some(h) = active.histogram {
            h.record_ns(record.duration_ns());
        }
        FINISHED
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }
}

/// Opens a span whose parent is the innermost span already open on the
/// calling thread. Returns a no-op guard when observability is
/// disabled.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    open_span(name, OPEN.with(|open| open.borrow().last().copied()))
}

/// Opens a span with an explicit parent id — the cross-thread form.
/// The submitting thread captures [`current_span`] before handing work
/// to a pool; each worker opens its span with that id, so the trace
/// tree nests worker spans under the submitting span even though the
/// thread-local stacks are unrelated. Within the worker, the new span
/// still lands on the worker's own stack, so further nested [`span`]
/// calls parent onto it naturally.
#[must_use]
pub fn span_child(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    open_span(name, parent)
}

fn open_span(name: &'static str, parent: Option<u64>) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    OPEN.with(|open| open.borrow_mut().push(id));
    SpanGuard(Some(ActiveSpan {
        id,
        parent,
        name,
        start_ns: crate::now_ns(),
        histogram: None,
    }))
}

/// The innermost span open on the calling thread, if observability is
/// enabled and one is open. Capture this before submitting work to
/// another thread and pass it to [`span_child`].
#[must_use]
pub fn current_span() -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    OPEN.with(|open| open.borrow().last().copied())
}

/// A copy of every completed span, in completion order.
#[must_use]
pub fn finished_spans() -> Vec<SpanRecord> {
    FINISHED
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Discards all completed spans (open spans are unaffected and will
/// record on drop as usual).
pub fn reset_spans() {
    FINISHED
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn my_spans(names: &[&str]) -> Vec<SpanRecord> {
        finished_spans()
            .into_iter()
            .filter(|s| names.contains(&s.name))
            .collect()
    }

    #[test]
    fn disabled_spans_are_noops() {
        let _guard = crate::test_lock::hold();
        crate::set_enabled(false);
        let g = span("test.span.disabled");
        assert_eq!(g.id(), None);
        assert_eq!(current_span(), None);
        drop(g);
        assert!(my_spans(&["test.span.disabled"]).is_empty());
    }

    #[test]
    fn nesting_on_one_thread_sets_parents() {
        let _guard = crate::test_lock::hold();
        crate::set_enabled(true);
        {
            let outer = span("test.span.outer");
            let outer_id = outer.id().expect("enabled");
            assert_eq!(current_span(), Some(outer_id));
            {
                let inner = span("test.span.inner");
                assert_eq!(current_span(), inner.id());
            }
            // Popped back to the outer span after the inner guard drops.
            assert_eq!(current_span(), Some(outer_id));
        }
        let spans = my_spans(&["test.span.outer", "test.span.inner"]);
        let outer = spans
            .iter()
            .find(|s| s.name == "test.span.outer")
            .expect("recorded");
        let inner = spans
            .iter()
            .find(|s| s.name == "test.span.inner")
            .expect("recorded");
        assert_eq!(inner.parent, Some(outer.id));
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        crate::set_enabled(false);
    }

    #[test]
    fn cross_thread_children_parent_onto_the_submitting_span() {
        let _guard = crate::test_lock::hold();
        crate::set_enabled(true);
        let root = span("test.span.submit");
        let parent = root.id();
        std::thread::scope(|scope| {
            // Simulating a pool worker.
            scope.spawn(move || {
                let worker = span_child("test.span.worker", parent);
                // The worker's own stack now has the child on top, so a
                // plain span() nests under it.
                let nested = span("test.span.nested");
                assert_eq!(current_span(), nested.id());
                drop(nested);
                drop(worker);
            });
        });
        drop(root);
        let spans = my_spans(&["test.span.submit", "test.span.worker", "test.span.nested"]);
        let root = spans
            .iter()
            .find(|s| s.name == "test.span.submit")
            .expect("recorded");
        let worker = spans
            .iter()
            .find(|s| s.name == "test.span.worker")
            .expect("recorded");
        let nested = spans
            .iter()
            .find(|s| s.name == "test.span.nested")
            .expect("recorded");
        assert_eq!(worker.parent, Some(root.id));
        assert_eq!(nested.parent, Some(worker.id));
        assert_ne!(worker.thread, root.thread);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_attachment_records_duration() {
        let _guard = crate::test_lock::hold();
        crate::set_enabled(true);
        static SPAN_NS: Histogram = Histogram::new("test.span.hist_ns");
        SPAN_NS.reset();
        {
            let _g = span("test.span.timed").with_histogram(&SPAN_NS);
        }
        assert_eq!(SPAN_NS.count(), 1);
        crate::set_enabled(false);
    }
}
