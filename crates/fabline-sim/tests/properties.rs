//! Property-based tests for the fab-line economics.

use maly_fabline_sim::capacity::Fab;
use maly_fabline_sim::cost::FabEconomics;
use maly_fabline_sim::process::ProcessFlow;
use proptest::prelude::*;

fn node() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![1.5, 1.0, 0.8, 0.65, 0.5, 0.35])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A fab sized for a demand can always run it.
    #[test]
    fn sized_fab_is_feasible(lambda in node(), volume in 1_000.0f64..150_000.0) {
        let flow = ProcessFlow::for_generation("p", lambda);
        let demand = [(flow, volume)];
        let fab = Fab::sized_for(&demand);
        prop_assert!(fab.utilization(&demand).is_feasible());
    }

    /// Wafer cost decreases (weakly) with volume for a fixed flow: the
    /// fixed facility and tool-count granularity amortize.
    #[test]
    fn wafer_cost_weakly_decreasing_in_volume(lambda in node(),
                                              volume in 2_000.0f64..80_000.0,
                                              growth in 1.2f64..4.0) {
        let econ = FabEconomics::default();
        let flow = ProcessFlow::for_generation("p", lambda);
        let small = econ.wafer_cost(&[(flow.clone(), volume)]).unwrap().value();
        let large = econ.wafer_cost(&[(flow, volume * growth)]).unwrap().value();
        prop_assert!(large <= small * 1.02, "cost rose with volume: {small} → {large}");
    }

    /// Splitting one product's volume into two identical products never
    /// makes wafers cheaper (changeovers only add hours).
    #[test]
    fn fragmentation_never_helps(lambda in node(), volume in 4_000.0f64..60_000.0) {
        let econ = FabEconomics::default();
        let a = ProcessFlow::for_generation("a", lambda);
        let b = ProcessFlow::for_generation("b", lambda);
        let mono = econ.wafer_cost(&[(a.clone(), volume)]).unwrap().value();
        let duo = econ
            .wafer_cost(&[(a, volume / 2.0), (b, volume / 2.0)])
            .unwrap()
            .value();
        prop_assert!(duo >= mono * 0.999, "fragmenting got cheaper: {mono} → {duo}");
    }

    /// Utilization metrics are well-formed: productive ≤ total ≤ 1 for a
    /// sized fab.
    #[test]
    fn utilizations_are_ordered_fractions(lambda in node(), volume in 1_000.0f64..80_000.0) {
        let econ = FabEconomics::default();
        let flows: Vec<_> = (0..3)
            .map(|i| (ProcessFlow::for_generation(format!("p{i}"), lambda), volume / 3.0))
            .collect();
        let total = econ.utilization(&flows);
        let productive = econ.productive_utilization(&flows);
        prop_assert!(productive <= total + 1e-12);
        prop_assert!(total <= 1.0 + 1e-9, "sized fab overloaded: {total}");
        prop_assert!(productive > 0.0);
    }

    /// Step counts scale monotonically down the ladder.
    #[test]
    fn finer_nodes_take_more_steps(coarse in 0.6f64..2.0, shrink in 0.4f64..0.9) {
        let big = ProcessFlow::for_generation("big", coarse);
        let small = ProcessFlow::for_generation("small", coarse * shrink);
        prop_assert!(small.step_count() >= big.step_count());
    }
}
