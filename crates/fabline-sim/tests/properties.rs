//! Property-style tests for the fab-line economics.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from a tiny SplitMix64 generator.

use maly_fabline_sim::capacity::Fab;
use maly_fabline_sim::cost::FabEconomics;
use maly_fabline_sim::process::ProcessFlow;

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn node(&mut self) -> f64 {
        const NODES: [f64; 6] = [1.5, 1.0, 0.8, 0.65, 0.5, 0.35];
        NODES[(self.next_u64() % NODES.len() as u64) as usize]
    }
}

const CASES: usize = 32;

/// A fab sized for a demand can always run it.
#[test]
fn sized_fab_is_feasible() {
    let mut s = Sampler::new(301);
    for _ in 0..CASES {
        let lambda = s.node();
        let volume = s.uniform(1_000.0, 150_000.0);
        let flow = ProcessFlow::for_generation("p", lambda);
        let demand = [(flow, volume)];
        let fab = Fab::sized_for(&demand);
        assert!(fab.utilization(&demand).is_feasible());
    }
}

/// Wafer cost decreases (weakly) with volume for a fixed flow: the
/// fixed facility and tool-count granularity amortize.
#[test]
fn wafer_cost_weakly_decreasing_in_volume() {
    let mut s = Sampler::new(302);
    for _ in 0..CASES {
        let lambda = s.node();
        let volume = s.uniform(2_000.0, 80_000.0);
        let growth = s.uniform(1.2, 4.0);
        let econ = FabEconomics::default();
        let flow = ProcessFlow::for_generation("p", lambda);
        let small = econ.wafer_cost(&[(flow.clone(), volume)]).unwrap().value();
        let large = econ.wafer_cost(&[(flow, volume * growth)]).unwrap().value();
        assert!(
            large <= small * 1.02,
            "cost rose with volume: {small} → {large}"
        );
    }
}

/// Splitting one product's volume into two identical products never
/// makes wafers cheaper (changeovers only add hours).
#[test]
fn fragmentation_never_helps() {
    let mut s = Sampler::new(303);
    for _ in 0..CASES {
        let lambda = s.node();
        let volume = s.uniform(4_000.0, 60_000.0);
        let econ = FabEconomics::default();
        let a = ProcessFlow::for_generation("a", lambda);
        let b = ProcessFlow::for_generation("b", lambda);
        let mono = econ.wafer_cost(&[(a.clone(), volume)]).unwrap().value();
        let duo = econ
            .wafer_cost(&[(a, volume / 2.0), (b, volume / 2.0)])
            .unwrap()
            .value();
        assert!(
            duo >= mono * 0.999,
            "fragmenting got cheaper: {mono} → {duo}"
        );
    }
}

/// Utilization metrics are well-formed: productive ≤ total ≤ 1 for a
/// sized fab.
#[test]
fn utilizations_are_ordered_fractions() {
    let mut s = Sampler::new(304);
    for _ in 0..CASES {
        let lambda = s.node();
        let volume = s.uniform(1_000.0, 80_000.0);
        let econ = FabEconomics::default();
        let flows: Vec<_> = (0..3)
            .map(|i| {
                (
                    ProcessFlow::for_generation(format!("p{i}"), lambda),
                    volume / 3.0,
                )
            })
            .collect();
        let total = econ.utilization(&flows);
        let productive = econ.productive_utilization(&flows);
        assert!(productive <= total + 1e-12);
        assert!(total <= 1.0 + 1e-9, "sized fab overloaded: {total}");
        assert!(productive > 0.0);
    }
}

/// Step counts scale monotonically down the ladder.
#[test]
fn finer_nodes_take_more_steps() {
    let mut s = Sampler::new(305);
    for _ in 0..CASES {
        let coarse = s.uniform(0.6, 2.0);
        let shrink = s.uniform(0.4, 0.9);
        let big = ProcessFlow::for_generation("big", coarse);
        let small = ProcessFlow::for_generation("small", coarse * shrink);
        assert!(small.step_count() >= big.step_count());
    }
}
