//! Fab-line capacity, utilization and wafer-cost economics.
//!
//! Sec. III.A.d of the paper ("Product mix") argues that wafer cost is
//! dominated by how well a fab's equipment is utilized: "the cost of
//! 'ownership' for some equipment may be the same for 'active' and
//! 'inactive' equipment usage", and a detailed study \[12\] found "the
//! ratio of the cost of the wafer fabricated with low volume
//! multi-product fabline and high volume mono-product environment may
//! reach as high value as 7."
//!
//! This crate builds that argument from first principles:
//!
//! * [`equipment::EquipmentClass`] — tools with throughput and a fixed
//!   annual cost of ownership (paid whether the tool runs or idles);
//! * [`process::ProcessFlow`] — per-product step sequences whose length
//!   scales with the technology generation (the Fig 4 trend);
//! * [`capacity::Fab`] — a deterministic capacity model: per-class load,
//!   utilization, bottlenecks, and the minimal tool-set for a demand;
//! * [`cost::wafer_cost`] — cost of ownership ÷ throughput, and the
//!   mono- vs multi-product comparison reproducing the ×7 mechanism;
//! * [`des`] — a discrete-event lot-flow simulation that validates the
//!   capacity model's utilizations and exposes cycle-time effects the
//!   static model cannot see;
//! * [`mc`] — Monte Carlo replications over demand uncertainty, run in
//!   parallel on [`maly_par::Executor`] with per-replication seeds, so
//!   reports are bit-identical at every thread count.
//!
//! # Examples
//!
//! ```
//! use maly_fabline_sim::{capacity::Fab, cost, process::ProcessFlow};
//!
//! // A dedicated high-volume fab for one 0.8 µm CMOS flow...
//! let flow = ProcessFlow::for_generation("cmos-0.8", 0.8);
//! let fab = Fab::sized_for(&[(flow.clone(), 100_000.0)]);
//! let mono = cost::wafer_cost(&fab, &[(flow, 100_000.0)]).unwrap();
//! // ...makes wafers for hundreds, not thousands, of dollars.
//! assert!(mono.value() > 100.0 && mono.value() < 2000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod cost;
pub mod des;
pub mod equipment;
pub mod mc;
pub mod process;
pub mod rental;

#[cfg(test)]
mod tests {
    use super::*;
    use process::ProcessFlow;

    /// The paper's headline product-mix claim: a low-volume multi-product
    /// fab pays several times more per wafer than a high-volume
    /// mono-product fab, approaching the reported ×7 for sufficiently
    /// fragmented demand.
    #[test]
    fn product_mix_penalty_reaches_paper_band() {
        // Ten niche products at 300 wafers/year each vs one commodity
        // line at 100k — the regime \[12\] measured.
        let report = cost::product_mix_study(10, 300.0, 100_000.0);
        assert!(
            report.cost_ratio > 5.0,
            "penalty {} too small",
            report.cost_ratio
        );
        assert!(
            report.cost_ratio < 12.0,
            "penalty {} implausibly large",
            report.cost_ratio
        );
    }

    #[test]
    fn utilization_explains_the_penalty() {
        let report = cost::product_mix_study(10, 500.0, 100_000.0);
        assert!(
            report.mono_utilization > 0.7,
            "mono {}",
            report.mono_utilization
        );
        assert!(
            report.multi_utilization < 0.5,
            "multi {}",
            report.multi_utilization
        );
        assert!(report.cost_ratio > 3.0);
    }

    #[test]
    fn single_product_high_volume_has_no_penalty() {
        let flow = ProcessFlow::for_generation("x", 0.8);
        let fab = capacity::Fab::sized_for(&[(flow.clone(), 100_000.0)]);
        let cost_a = cost::wafer_cost(&fab, &[(flow.clone(), 100_000.0)]).unwrap();
        // The same fab run at the same volume with the "multi-product"
        // path but one product is identical.
        let cost_b = cost::wafer_cost(&fab, &[(flow, 100_000.0)]).unwrap();
        assert_eq!(cost_a, cost_b);
    }
}
