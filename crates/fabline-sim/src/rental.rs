//! Capacity rental: the §V Phase-2 market.
//!
//! "Winners of the race towards smaller feature size will be forced to
//! maintain very high volume production to recover huge past
//! investments. It will be done by ... eventually renting superfluous
//! fabline capacity." The counterparties are the niche designers whose
//! own-fab wafer cost carries the full product-mix penalty.
//!
//! This module computes the *bargaining range* for such a deal: the
//! owner will not rent below its incremental cost of hosting the
//! tenant's wafers; the tenant will not pay above its own standalone
//! cost. A deal exists when the range is non-empty — and because the
//! owner's tool-count ceilings leave real headroom while the tenant's
//! alternative is a poorly utilized mini-fab, the range is usually wide.

use maly_units::Dollars;

use crate::cost::FabEconomics;
use crate::process::ProcessFlow;

/// A rental quote: per-wafer price bounds for the tenant's volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BargainingRange {
    /// Owner's incremental cost per tenant wafer (the price floor).
    pub floor: Dollars,
    /// Tenant's standalone cost per wafer (the price ceiling).
    pub ceiling: Dollars,
}

impl BargainingRange {
    /// True when a mutually beneficial price exists.
    #[must_use]
    pub fn deal_exists(&self) -> bool {
        self.floor.value() < self.ceiling.value()
    }

    /// The surplus per wafer split between the parties at any price
    /// inside the range.
    #[must_use]
    pub fn surplus_per_wafer(&self) -> f64 {
        (self.ceiling.value() - self.floor.value()).max(0.0)
    }

    /// The even-split price.
    #[must_use]
    pub fn midpoint(&self) -> Dollars {
        Dollars::new((self.floor.value() + self.ceiling.value()) / 2.0)
            .expect("average of non-negative costs")
    }
}

/// Computes the bargaining range for a tenant bringing `tenant_demand`
/// into a fab currently sized for (and running) `owner_demand`.
///
/// * Floor: `(cost of fab sized for combined demand − cost of fab sized
///   for owner alone) / tenant wafers` — the extra tools, if any, that
///   hosting forces the owner to buy (base facility is sunk).
/// * Ceiling: the tenant's standalone wafer cost from
///   [`FabEconomics::wafer_cost`] (its own mini-fab, with the full
///   product-mix and granularity penalties).
///
/// # Panics
///
/// Panics when either demand is empty or has non-positive volume.
#[must_use]
pub fn bargaining_range(
    econ: &FabEconomics,
    owner_demand: &[(ProcessFlow, f64)],
    tenant_demand: &[(ProcessFlow, f64)],
) -> BargainingRange {
    let owner_wafers: f64 = owner_demand.iter().map(|(_, v)| v).sum();
    let tenant_wafers: f64 = tenant_demand.iter().map(|(_, v)| v).sum();
    assert!(
        owner_wafers > 0.0 && tenant_wafers > 0.0,
        "both parties need positive volume"
    );

    let owner_alone = econ.size_fab(owner_demand).annual_cost().value();
    let mut combined: Vec<(ProcessFlow, f64)> = owner_demand.to_vec();
    combined.extend(tenant_demand.iter().cloned());
    let together = econ.size_fab(&combined).annual_cost().value();
    let incremental = (together - owner_alone).max(0.0);
    let floor = Dollars::new(incremental / tenant_wafers).expect("non-negative");

    let ceiling = econ
        .wafer_cost(tenant_demand)
        .expect("tenant volume validated positive");

    BargainingRange { floor, ceiling }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn econ() -> FabEconomics {
        FabEconomics::default()
    }

    fn commodity(volume: f64) -> Vec<(ProcessFlow, f64)> {
        vec![(ProcessFlow::for_generation("commodity-0.8", 0.8), volume)]
    }

    fn niche(volume: f64) -> Vec<(ProcessFlow, f64)> {
        vec![(ProcessFlow::for_generation("niche-0.8", 0.8), volume)]
    }

    #[test]
    fn small_tenant_rides_headroom_almost_free() {
        // 100k-wafer owner, 1k-wafer tenant: the ceilings of the owner's
        // tool counts swallow the tenant — the floor is far below the
        // tenant's standalone cost.
        let range = bargaining_range(&econ(), &commodity(100_000.0), &niche(1_000.0));
        assert!(range.deal_exists());
        assert!(
            range.ceiling.value() > 5.0 * range.floor.value(),
            "floor {} vs ceiling {}",
            range.floor.value(),
            range.ceiling.value()
        );
    }

    #[test]
    fn tenant_ceiling_is_the_product_mix_penalty() {
        // The tenant's standalone cost at 1k wafers is several times the
        // owner's commodity cost — the §III.A.d penalty is exactly what
        // makes renting attractive.
        let range = bargaining_range(&econ(), &commodity(100_000.0), &niche(1_000.0));
        let owner_cost = econ().wafer_cost(&commodity(100_000.0)).unwrap().value();
        assert!(range.ceiling.value() > 3.0 * owner_cost);
    }

    #[test]
    fn big_tenant_forces_new_tools() {
        // A tenant as large as the owner cannot ride headroom: the floor
        // approaches real per-wafer tool cost.
        let small = bargaining_range(&econ(), &commodity(100_000.0), &niche(1_000.0));
        let large = bargaining_range(&econ(), &commodity(100_000.0), &niche(80_000.0));
        assert!(large.floor.value() > small.floor.value());
        // The deal usually still exists (the owner's scale is simply
        // more efficient), but the surplus narrows.
        assert!(large.surplus_per_wafer() < small.surplus_per_wafer());
    }

    #[test]
    fn midpoint_sits_inside_the_range() {
        let range = bargaining_range(&econ(), &commodity(100_000.0), &niche(2_000.0));
        let mid = range.midpoint().value();
        assert!(mid > range.floor.value() && mid < range.ceiling.value());
        assert!(
            (range.surplus_per_wafer() - (range.ceiling.value() - range.floor.value())).abs()
                < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "positive volume")]
    fn empty_tenant_panics() {
        let _ = bargaining_range(&econ(), &commodity(100_000.0), &[]);
    }
}
