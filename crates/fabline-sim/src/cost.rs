//! Wafer cost from cost of ownership, and the product-mix study.
//!
//! The wafer cost of a fab is its total annual cost of ownership divided
//! by its annual wafer output. Three mechanisms make a low-volume
//! multi-product fab expensive per wafer (Sec. III.A.d):
//!
//! 1. **Granularity** — the fab must own at least one tool of every
//!    family any product touches; at low volume most of that capacity
//!    idles but its ownership cost accrues anyway.
//! 2. **Changeovers** — with many products interleaved in small lots,
//!    tools burn hours on setups and re-qualification that a mono-product
//!    line never pays.
//! 3. **Base facility** — cleanroom, utilities and administration are
//!    volume-independent.
//!
//! [`product_mix_study`] combines all three and reproduces the paper's
//! "up to ×7" penalty for sufficiently fragmented demand.

use maly_units::Dollars;

use crate::capacity::Fab;
use crate::equipment::{standard_toolset, ToolFamily};
use crate::process::ProcessFlow;

/// Lot size (wafers per carrier) used for changeover accounting.
pub const DEFAULT_LOT_SIZE: f64 = 24.0;
/// Hours to set up / re-qualify a tool when the incoming lot belongs to a
/// different product than the previous one.
pub const DEFAULT_SETUP_HOURS: f64 = 0.5;
/// Annual volume-independent facility cost (cleanroom, utilities, staff
/// not tied to tools).
pub const DEFAULT_BASE_FACILITY_COST: f64 = 10.0e6;

/// Economic assumptions for wafer-cost accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabEconomics {
    /// Wafers per lot.
    pub lot_size: f64,
    /// Setup hours per product changeover at a tool.
    pub setup_hours: f64,
    /// Annual volume-independent facility cost.
    pub base_facility_cost: Dollars,
}

impl Default for FabEconomics {
    fn default() -> Self {
        Self {
            lot_size: DEFAULT_LOT_SIZE,
            setup_hours: DEFAULT_SETUP_HOURS,
            base_facility_cost: Dollars::new(DEFAULT_BASE_FACILITY_COST).expect("positive"),
        }
    }
}

impl FabEconomics {
    /// Probability that two consecutive lots at a tool belong to
    /// different products, for a randomly interleaved demand:
    /// `1 − Σ share_i²` (zero for a mono-product line).
    #[must_use]
    pub fn changeover_probability(demand: &[(ProcessFlow, f64)]) -> f64 {
        let total: f64 = demand.iter().map(|(_, v)| v).sum();
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - demand.iter().map(|(_, v)| (v / total).powi(2)).sum::<f64>()
    }

    /// Tool hours demanded per family and year, including changeover
    /// setups.
    #[must_use]
    pub fn demanded_hours(&self, demand: &[(ProcessFlow, f64)]) -> Vec<(ToolFamily, f64)> {
        let p_switch = Self::changeover_probability(demand);
        let toolset = standard_toolset();
        ToolFamily::ALL
            .iter()
            .filter_map(|&family| {
                let class = toolset.iter().find(|c| c.family() == family)?;
                let mut processing = 0.0;
                let mut lot_visits = 0.0;
                for (flow, starts) in demand {
                    let steps = flow.steps_on(family) as f64;
                    if steps > 0.0 {
                        processing += class.hours_for_steps(steps * starts);
                        lot_visits += steps * (starts / self.lot_size);
                    }
                }
                if processing <= 0.0 {
                    return None;
                }
                let setups = lot_visits * p_switch * self.setup_hours;
                Some((family, processing + setups))
            })
            .collect()
    }

    /// The minimal fab for a demand under these economics (tool counts
    /// cover processing *and* setup hours).
    #[must_use]
    pub fn size_fab(&self, demand: &[(ProcessFlow, f64)]) -> Fab {
        let toolset = standard_toolset();
        let tools = self
            .demanded_hours(demand)
            .into_iter()
            .map(|(family, hours)| {
                let class = *toolset
                    .iter()
                    .find(|c| c.family() == family)
                    .expect("demanded_hours only returns known families");
                let available = crate::equipment::HOURS_PER_YEAR * crate::equipment::AVAILABILITY;
                let units = (hours / available).ceil().max(1.0) as u32;
                (class, units)
            })
            .collect();
        Fab::new(tools)
    }

    /// Wafer cost of a demand in the minimal fab for it:
    /// `(tool ownership + base facility) / wafers`.
    ///
    /// # Errors
    ///
    /// Returns an error when total demand is zero wafers.
    pub fn wafer_cost(
        &self,
        demand: &[(ProcessFlow, f64)],
    ) -> Result<Dollars, maly_units::UnitError> {
        let wafers: f64 = demand.iter().map(|(_, v)| v).sum();
        if wafers <= 0.0 {
            return Err(maly_units::UnitError::NotPositive {
                quantity: "annual wafer volume",
                value: wafers,
            });
        }
        let fab = self.size_fab(demand);
        let annual = fab.annual_cost() + self.base_facility_cost;
        Ok(annual / wafers)
    }

    /// Processing-only tool hours per family (no setups) — the hours that
    /// actually move wafers.
    #[must_use]
    pub fn processing_hours(&self, demand: &[(ProcessFlow, f64)]) -> Vec<(ToolFamily, f64)> {
        let toolset = standard_toolset();
        ToolFamily::ALL
            .iter()
            .filter_map(|&family| {
                let class = toolset.iter().find(|c| c.family() == family)?;
                let mut processing = 0.0;
                for (flow, starts) in demand {
                    let steps = flow.steps_on(family) as f64;
                    if steps > 0.0 {
                        processing += class.hours_for_steps(steps * starts);
                    }
                }
                (processing > 0.0).then_some((family, processing))
            })
            .collect()
    }

    /// Hour-weighted utilization of the minimal fab for a demand
    /// (setup hours count as load — the tool is occupied either way).
    #[must_use]
    pub fn utilization(&self, demand: &[(ProcessFlow, f64)]) -> f64 {
        self.utilization_of(demand, self.demanded_hours(demand))
    }

    /// *Productive* utilization: the fraction of owned tool-hours that
    /// process wafers. Setups and idle both count against it — this is
    /// the number that collapses for fragmented product mixes and drives
    /// the paper's ×7 wafer-cost penalty.
    #[must_use]
    pub fn productive_utilization(&self, demand: &[(ProcessFlow, f64)]) -> f64 {
        self.utilization_of(demand, self.processing_hours(demand))
    }

    fn utilization_of(&self, demand: &[(ProcessFlow, f64)], hours: Vec<(ToolFamily, f64)>) -> f64 {
        let fab = self.size_fab(demand);
        let available = crate::equipment::HOURS_PER_YEAR * crate::equipment::AVAILABILITY;
        let total_available: f64 = fab
            .tools()
            .iter()
            .map(|(_, units)| available * f64::from(*units))
            .sum();
        let total_demanded: f64 = hours.iter().map(|(_, h)| h).sum();
        if total_available > 0.0 {
            total_demanded / total_available
        } else {
            0.0
        }
    }
}

/// Wafer cost of a *given* fab under a demand — the basic
/// ownership-over-output accounting (no base facility, no setups), used
/// when the fab is fixed rather than sized.
///
/// # Errors
///
/// Returns an error when total demand is zero wafers.
pub fn wafer_cost(
    fab: &Fab,
    demand: &[(ProcessFlow, f64)],
) -> Result<Dollars, maly_units::UnitError> {
    let wafers: f64 = demand.iter().map(|(_, v)| v).sum();
    if wafers <= 0.0 {
        return Err(maly_units::UnitError::NotPositive {
            quantity: "annual wafer volume",
            value: wafers,
        });
    }
    Ok(fab.annual_cost() / wafers)
}

/// Result of a mono- vs multi-product wafer-cost comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductMixReport {
    /// Wafer cost of the high-volume mono-product line.
    pub mono_cost: Dollars,
    /// Wafer cost of the low-volume multi-product line.
    pub multi_cost: Dollars,
    /// `multi_cost / mono_cost` — the paper quotes "as high as 7".
    pub cost_ratio: f64,
    /// Productive (wafer-moving) utilization of the mono-product fab.
    pub mono_utilization: f64,
    /// Productive utilization of the multi-product fab.
    pub multi_utilization: f64,
}

/// Compares a mono-product high-volume fab against a multi-product
/// low-volume fab with default economics.
///
/// The mono fab runs one 0.8 µm flow at `mono_volume` wafers/year. The
/// multi fab runs `n_products` deliberately dissimilar flows (different
/// nodes, different family biases) at `volume_each` wafers/year each.
///
/// # Panics
///
/// Panics if `n_products` is zero or a volume is not positive.
#[must_use]
pub fn product_mix_study(
    n_products: usize,
    volume_each: f64,
    mono_volume: f64,
) -> ProductMixReport {
    assert!(n_products > 0, "need at least one product");
    assert!(
        volume_each > 0.0 && mono_volume > 0.0,
        "volumes must be positive"
    );
    let econ = FabEconomics::default();

    let mono_flow = ProcessFlow::for_generation("commodity-0.8", 0.8);
    let mono_demand = vec![(mono_flow, mono_volume)];
    let mono_cost = econ.wafer_cost(&mono_demand).expect("positive volume");
    let mono_utilization = econ.productive_utilization(&mono_demand);

    let multi_demand: Vec<(ProcessFlow, f64)> = (0..n_products)
        .map(|i| {
            // Spread products across nodes and bias each toward a family
            // so their equipment fingerprints differ.
            let nodes = [1.0, 0.8, 0.65, 0.5];
            let lambda = nodes[i % nodes.len()];
            let bias = ToolFamily::ALL[i % ToolFamily::ALL.len()];
            let flow = ProcessFlow::for_generation(format!("niche-{i}"), lambda)
                .with_extra_steps(bias, 30);
            (flow, volume_each)
        })
        .collect();
    let multi_cost = econ.wafer_cost(&multi_demand).expect("positive volume");
    let multi_utilization = econ.productive_utilization(&multi_demand);

    ProductMixReport {
        mono_cost,
        multi_cost,
        cost_ratio: multi_cost.value() / mono_cost.value(),
        mono_utilization,
        multi_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changeover_probability_limits() {
        let flow = ProcessFlow::for_generation("a", 0.8);
        // Mono-product: never switches.
        assert_eq!(
            FabEconomics::changeover_probability(&[(flow.clone(), 1000.0)]),
            0.0
        );
        // Two equal products: switches half the time.
        let two = [(flow.clone(), 500.0), (flow.clone(), 500.0)];
        assert!((FabEconomics::changeover_probability(&two) - 0.5).abs() < 1e-12);
        // Many equal products: approaches 1.
        let many: Vec<_> = (0..20).map(|_| (flow.clone(), 50.0)).collect();
        assert!(FabEconomics::changeover_probability(&many) > 0.9);
        // Empty demand: zero.
        assert_eq!(FabEconomics::changeover_probability(&[]), 0.0);
    }

    #[test]
    fn wafer_cost_falls_with_volume() {
        let econ = FabEconomics::default();
        let flow = ProcessFlow::for_generation("a", 0.8);
        let mut last = f64::INFINITY;
        for volume in [2_000.0, 10_000.0, 50_000.0, 200_000.0] {
            let c = econ.wafer_cost(&[(flow.clone(), volume)]).unwrap().value();
            assert!(c < last, "cost must fall with volume: {c} at {volume}");
            last = c;
        }
    }

    #[test]
    fn high_volume_mono_cost_in_plausible_band() {
        // The paper quotes $500–800 for a 1 µm 6-inch wafer and $1300 for
        // a 0.8 µm 3-metal wafer; our synthetic fab should land in that
        // order of magnitude for a committed high-volume line.
        let econ = FabEconomics::default();
        let flow = ProcessFlow::for_generation("a", 0.8);
        let c = econ.wafer_cost(&[(flow, 100_000.0)]).unwrap().value();
        assert!((400.0..2_000.0).contains(&c), "cost {c}");
    }

    #[test]
    fn finer_nodes_make_dearer_wafers() {
        let econ = FabEconomics::default();
        let coarse = econ
            .wafer_cost(&[(ProcessFlow::for_generation("a", 1.0), 100_000.0)])
            .unwrap();
        let fine = econ
            .wafer_cost(&[(ProcessFlow::for_generation("b", 0.35), 100_000.0)])
            .unwrap();
        assert!(fine.value() > coarse.value());
    }

    #[test]
    fn setups_inflate_multi_product_hours() {
        let econ = FabEconomics::default();
        let flow_a = ProcessFlow::for_generation("a", 0.8);
        let flow_b = ProcessFlow::for_generation("b", 0.8);
        let mono: f64 = econ
            .demanded_hours(&[(flow_a.clone(), 10_000.0)])
            .iter()
            .map(|(_, h)| h)
            .sum();
        let duo: f64 = econ
            .demanded_hours(&[(flow_a, 5_000.0), (flow_b, 5_000.0)])
            .iter()
            .map(|(_, h)| h)
            .sum();
        assert!(duo > mono * 1.1, "duo {duo} vs mono {mono}");
    }

    #[test]
    fn zero_volume_is_an_error() {
        let econ = FabEconomics::default();
        assert!(econ.wafer_cost(&[]).is_err());
        let fab = Fab::new(vec![]);
        assert!(wafer_cost(&fab, &[]).is_err());
    }

    #[test]
    fn mix_penalty_grows_as_volume_fragments() {
        let r_coarse = product_mix_study(4, 5_000.0, 100_000.0);
        let r_fine = product_mix_study(10, 500.0, 100_000.0);
        assert!(r_fine.cost_ratio > r_coarse.cost_ratio);
        assert!(r_coarse.cost_ratio > 1.0);
    }

    #[test]
    fn extreme_fragmentation_approaches_the_paper_ratio() {
        // Ten niche products at a few hundred wafers each: the penalty
        // climbs into the upper half of the paper's reported range.
        let r = product_mix_study(10, 300.0, 100_000.0);
        assert!(r.cost_ratio > 5.0, "ratio {}", r.cost_ratio);
        assert!(r.cost_ratio < 20.0, "ratio {}", r.cost_ratio);
    }

    #[test]
    fn report_utilizations_are_ordered() {
        let r = product_mix_study(8, 1_000.0, 100_000.0);
        assert!(r.mono_utilization > r.multi_utilization);
        assert!(r.mono_utilization <= 1.0);
        assert!(r.multi_utilization > 0.0);
    }
}
