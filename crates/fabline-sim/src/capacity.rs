//! Deterministic fab capacity model: load, utilization, bottlenecks.

use std::collections::HashMap;

use crate::equipment::{standard_toolset, EquipmentClass, ToolFamily};
use crate::process::ProcessFlow;

/// A fab: a set of owned tool units per family.
///
/// # Examples
///
/// ```
/// use maly_fabline_sim::{capacity::Fab, process::ProcessFlow};
///
/// let flow = ProcessFlow::for_generation("cmos-0.8", 0.8);
/// let demand = [(flow, 50_000.0)];
/// let fab = Fab::sized_for(&demand);
/// let report = fab.utilization(&demand);
/// // Sized-for fabs are feasible and reasonably loaded at the bottleneck.
/// assert!(report.is_feasible());
/// assert!(report.bottleneck_utilization() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fab {
    tools: Vec<(EquipmentClass, u32)>,
}

/// Per-family utilization report.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    entries: Vec<UtilizationEntry>,
}

/// Utilization of one tool family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationEntry {
    /// Tool family.
    pub family: ToolFamily,
    /// Units owned.
    pub units: u32,
    /// Wafer-steps demanded per year.
    pub demanded_steps: f64,
    /// Wafer-steps available per year across owned units.
    pub available_steps: f64,
}

impl UtilizationEntry {
    /// Demanded / available (can exceed 1 for infeasible demands).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.available_steps > 0.0 {
            self.demanded_steps / self.available_steps
        } else if self.demanded_steps > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

impl UtilizationReport {
    /// Per-family entries (one per family owned or demanded).
    #[must_use]
    pub fn entries(&self) -> &[UtilizationEntry] {
        &self.entries
    }

    /// True when every family's demand fits its capacity.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.entries.iter().all(|e| e.utilization() <= 1.0)
    }

    /// The highest per-family utilization (the bottleneck).
    #[must_use]
    pub fn bottleneck_utilization(&self) -> f64 {
        self.entries
            .iter()
            .map(UtilizationEntry::utilization)
            .fold(0.0, f64::max)
    }

    /// The bottleneck family, if any tools are owned.
    #[must_use]
    pub fn bottleneck_family(&self) -> Option<ToolFamily> {
        self.entries
            .iter()
            .max_by(|a, b| a.utilization().total_cmp(&b.utilization()))
            .map(|e| e.family)
    }

    /// Capacity-weighted average utilization — the "how much of my
    /// capital is working" number that drives wafer cost.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        let available: f64 = self.entries.iter().map(|e| e.available_steps).sum();
        let demanded: f64 = self.entries.iter().map(|e| e.demanded_steps).sum();
        if available > 0.0 {
            demanded / available
        } else {
            0.0
        }
    }
}

impl Fab {
    /// Creates a fab owning the given tool units.
    #[must_use]
    pub fn new(tools: Vec<(EquipmentClass, u32)>) -> Self {
        Self { tools }
    }

    /// Builds the *minimal* fab (fewest units of the standard toolset,
    /// at least one of every family demanded) that can process the given
    /// annual demand: `demand` pairs a flow with wafer starts per year.
    #[must_use]
    pub fn sized_for(demand: &[(ProcessFlow, f64)]) -> Self {
        let toolset = standard_toolset();
        let steps = demanded_steps(demand);
        let tools = toolset
            .into_iter()
            .filter_map(|class| {
                let needed = steps.get(&class.family()).copied().unwrap_or(0.0);
                if needed <= 0.0 {
                    return None;
                }
                let units = (needed / class.annual_capacity_steps()).ceil().max(1.0) as u32;
                Some((class, units))
            })
            .collect();
        Self { tools }
    }

    /// Owned tools.
    #[must_use]
    pub fn tools(&self) -> &[(EquipmentClass, u32)] {
        &self.tools
    }

    /// Total annual cost of ownership — paid regardless of load.
    #[must_use]
    pub fn annual_cost(&self) -> maly_units::Dollars {
        self.tools
            .iter()
            .map(|(class, units)| class.annual_cost() * f64::from(*units))
            .sum()
    }

    /// Utilization report for an annual demand.
    #[must_use]
    pub fn utilization(&self, demand: &[(ProcessFlow, f64)]) -> UtilizationReport {
        let steps = demanded_steps(demand);
        let mut entries: Vec<UtilizationEntry> = self
            .tools
            .iter()
            .map(|(class, units)| UtilizationEntry {
                family: class.family(),
                units: *units,
                demanded_steps: steps.get(&class.family()).copied().unwrap_or(0.0),
                available_steps: class.annual_capacity_steps() * f64::from(*units),
            })
            .collect();
        // Families demanded but not owned appear as infeasible entries,
        // visited in ToolFamily::ALL order so the report is independent
        // of the demand map's hash order.
        for family in ToolFamily::ALL {
            let Some(demanded) = steps.get(&family) else {
                continue;
            };
            if !entries.iter().any(|e| e.family == family) {
                entries.push(UtilizationEntry {
                    family,
                    units: 0,
                    demanded_steps: *demanded,
                    available_steps: 0.0,
                });
            }
        }
        UtilizationReport { entries }
    }

    /// Maximum annual wafer starts of a single flow this fab supports
    /// (the volume at which the bottleneck saturates).
    #[must_use]
    pub fn max_wafer_starts(&self, flow: &ProcessFlow) -> f64 {
        let mut limit = f64::INFINITY;
        for (class, units) in &self.tools {
            let steps_per_wafer = flow.steps_on(class.family()) as f64;
            if steps_per_wafer > 0.0 {
                let cap = class.annual_capacity_steps() * f64::from(*units) / steps_per_wafer;
                limit = limit.min(cap);
            }
        }
        for family in ToolFamily::ALL {
            if flow.steps_on(family) > 0 && !self.tools.iter().any(|(c, _)| c.family() == family) {
                return 0.0;
            }
        }
        if limit.is_finite() {
            limit
        } else {
            0.0
        }
    }
}

/// Total demanded wafer-steps per family for an annual demand.
fn demanded_steps(demand: &[(ProcessFlow, f64)]) -> HashMap<ToolFamily, f64> {
    let mut steps: HashMap<ToolFamily, f64> = HashMap::new();
    for (flow, starts) in demand {
        for family in ToolFamily::ALL {
            let per_wafer = flow.steps_on(family) as f64;
            if per_wafer > 0.0 {
                *steps.entry(family).or_insert(0.0) += per_wafer * starts;
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> ProcessFlow {
        ProcessFlow::for_generation("cmos-0.8", 0.8)
    }

    #[test]
    fn sized_for_is_feasible_and_tight() {
        let demand = [(flow(), 80_000.0)];
        let fab = Fab::sized_for(&demand);
        let report = fab.utilization(&demand);
        assert!(report.is_feasible());
        // Removing one unit from the bottleneck family must break it.
        let bottleneck = report.bottleneck_family().unwrap();
        let mut reduced: Vec<(EquipmentClass, u32)> = fab.tools().to_vec();
        for (class, units) in &mut reduced {
            if class.family() == bottleneck {
                *units -= 1;
            }
        }
        let has_zero = reduced.iter().any(|(_, u)| *u == 0);
        if !has_zero {
            let smaller = Fab::new(reduced);
            assert!(!smaller.utilization(&demand).is_feasible());
        }
    }

    #[test]
    fn low_volume_fab_is_poorly_utilized() {
        // A tiny demand still needs one tool of every family — most of
        // that capacity idles.
        let demand = [(flow(), 1_000.0)];
        let fab = Fab::sized_for(&demand);
        let report = fab.utilization(&demand);
        assert!(report.is_feasible());
        assert!(
            report.average_utilization() < 0.3,
            "avg {}",
            report.average_utilization()
        );
    }

    #[test]
    fn high_volume_fab_is_well_utilized() {
        let demand = [(flow(), 200_000.0)];
        let fab = Fab::sized_for(&demand);
        let report = fab.utilization(&demand);
        assert!(report.is_feasible());
        assert!(
            report.average_utilization() > 0.7,
            "avg {}",
            report.average_utilization()
        );
    }

    #[test]
    fn missing_family_reported_infeasible() {
        let demand = [(flow(), 10_000.0)];
        // A fab with only lithography cannot run a full flow.
        let litho_only = Fab::new(
            standard_toolset()
                .into_iter()
                .filter(|c| c.family() == ToolFamily::Lithography)
                .map(|c| (c, 100))
                .collect(),
        );
        let report = litho_only.utilization(&demand);
        assert!(!report.is_feasible());
        assert_eq!(report.bottleneck_utilization(), f64::INFINITY);
    }

    #[test]
    fn max_wafer_starts_matches_feasibility() {
        let demand = [(flow(), 50_000.0)];
        let fab = Fab::sized_for(&demand);
        let max = fab.max_wafer_starts(&flow());
        assert!(max >= 50_000.0);
        // Demand just beyond the max is infeasible.
        let too_much = [(flow(), max * 1.01)];
        assert!(!fab.utilization(&too_much).is_feasible());
    }

    #[test]
    fn max_wafer_starts_zero_for_missing_family() {
        let litho_only = Fab::new(
            standard_toolset()
                .into_iter()
                .filter(|c| c.family() == ToolFamily::Lithography)
                .map(|c| (c, 1))
                .collect(),
        );
        assert_eq!(litho_only.max_wafer_starts(&flow()), 0.0);
    }

    #[test]
    fn annual_cost_sums_units() {
        let toolset = standard_toolset();
        let one_each = Fab::new(toolset.iter().map(|c| (*c, 1u32)).collect());
        let two_each = Fab::new(toolset.iter().map(|c| (*c, 2u32)).collect());
        assert!(
            (two_each.annual_cost().value() - 2.0 * one_each.annual_cost().value()).abs() < 1e-6
        );
    }

    #[test]
    fn empty_fab_has_zero_utilization_and_cost() {
        let fab = Fab::new(vec![]);
        assert_eq!(fab.annual_cost().value(), 0.0);
        let report = fab.utilization(&[]);
        assert!(report.is_feasible());
        assert_eq!(report.average_utilization(), 0.0);
        assert!(report.bottleneck_family().is_none());
    }
}
