//! Process flows: per-product step sequences.

use crate::equipment::ToolFamily;

/// One manufacturing step: which tool family it runs on.
///
/// Step *duration* comes from the tool's throughput, so the step itself
/// only carries routing information (plus a label for traceability).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessStep {
    /// Human-readable step label, e.g. `"metal2 litho"`.
    pub label: String,
    /// Tool family the step occupies.
    pub family: ToolFamily,
}

/// A product's full step sequence.
///
/// # Examples
///
/// ```
/// use maly_fabline_sim::process::ProcessFlow;
///
/// let coarse = ProcessFlow::for_generation("cmos-1.0", 1.0);
/// let fine = ProcessFlow::for_generation("cmos-0.35", 0.35);
/// // Fig 4: step counts grow as features shrink.
/// assert!(fine.step_count() > coarse.step_count());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessFlow {
    name: String,
    steps: Vec<ProcessStep>,
}

impl ProcessFlow {
    /// Creates a flow from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty — a product with no steps is not a
    /// product.
    #[must_use]
    pub fn new(name: impl Into<String>, steps: Vec<ProcessStep>) -> Self {
        assert!(!steps.is_empty(), "a process flow needs at least one step");
        Self {
            name: name.into(),
            steps,
        }
    }

    /// Synthesizes a CMOS-like flow for a technology generation.
    ///
    /// The total step count follows the Fig 4 trend
    /// (≈ `230·λ^{−0.55}`, matching the dataset in `maly-tech-trend`:
    /// ~230 steps at 1 µm rising to ~500 at 0.25 µm), distributed over
    /// tool families in typical proportions. Each mask level contributes
    /// a litho–etch–metrology triplet; implant/deposition/furnace fill
    /// the rest.
    #[must_use]
    pub fn for_generation(name: impl Into<String>, lambda_um: f64) -> Self {
        assert!(
            lambda_um.is_finite() && lambda_um > 0.0,
            "feature size must be positive, got {lambda_um}"
        );
        let total = (230.0 * lambda_um.powf(-0.55)).round() as usize;
        // Proportions (sum = 1): litho-heavy back end as processes grow.
        let proportions: [(ToolFamily, f64); 7] = [
            (ToolFamily::Lithography, 0.18),
            (ToolFamily::Etch, 0.16),
            (ToolFamily::Implant, 0.10),
            (ToolFamily::Deposition, 0.18),
            (ToolFamily::Furnace, 0.14),
            (ToolFamily::Planarization, 0.09),
            (ToolFamily::Metrology, 0.15),
        ];
        let mut steps = Vec::with_capacity(total);
        for (family, share) in proportions {
            let count = ((total as f64) * share).round().max(1.0) as usize;
            for i in 0..count {
                steps.push(ProcessStep {
                    label: format!("{family} {}", i + 1),
                    family,
                });
            }
        }
        Self::new(name, steps)
    }

    /// Flow name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered steps.
    #[must_use]
    pub fn steps(&self) -> &[ProcessStep] {
        &self.steps
    }

    /// Total step count.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of steps routed to a given family.
    #[must_use]
    pub fn steps_on(&self, family: ToolFamily) -> usize {
        self.steps.iter().filter(|s| s.family == family).count()
    }

    /// Returns a variant flow that biases `extra` additional steps onto
    /// one family — used to build *deliberately dissimilar* product mixes
    /// (e.g. a BiCMOS flow with extra implant, a DRAM flow with extra
    /// furnace time).
    #[must_use]
    pub fn with_extra_steps(mut self, family: ToolFamily, extra: usize) -> Self {
        for i in 0..extra {
            self.steps.push(ProcessStep {
                label: format!("{family} extra {}", i + 1),
                family,
            });
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_follow_fig4_trend() {
        let at_1um = ProcessFlow::for_generation("a", 1.0).step_count();
        let at_05 = ProcessFlow::for_generation("b", 0.5).step_count();
        let at_025 = ProcessFlow::for_generation("c", 0.25).step_count();
        assert!((200..=260).contains(&at_1um), "1 µm: {at_1um}");
        assert!(at_05 > at_1um);
        assert!(at_025 > at_05);
        assert!((450..=560).contains(&at_025), "0.25 µm: {at_025}");
    }

    #[test]
    fn every_family_is_used() {
        let flow = ProcessFlow::for_generation("x", 0.8);
        for family in ToolFamily::ALL {
            assert!(flow.steps_on(family) > 0, "family {family} unused");
        }
    }

    #[test]
    fn family_counts_sum_to_total() {
        let flow = ProcessFlow::for_generation("x", 0.8);
        let sum: usize = ToolFamily::ALL.iter().map(|&f| flow.steps_on(f)).sum();
        assert_eq!(sum, flow.step_count());
    }

    #[test]
    fn extra_steps_bias_one_family() {
        let base = ProcessFlow::for_generation("x", 0.8);
        let litho_before = base.steps_on(ToolFamily::Implant);
        let biased = base.with_extra_steps(ToolFamily::Implant, 40);
        assert_eq!(biased.steps_on(ToolFamily::Implant), litho_before + 40);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_flow_rejected() {
        let _ = ProcessFlow::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "feature size")]
    fn bad_generation_rejected() {
        let _ = ProcessFlow::for_generation("bad", -0.5);
    }
}
