//! Equipment classes and their cost of ownership.

use maly_units::Dollars;

/// The broad tool families of a CMOS fab.
///
/// Granular enough that different products load the fab differently (a
/// 3-metal logic flow leans on deposition/etch; a DRAM flow leans on
/// furnaces and implant), which is what creates the product-mix effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolFamily {
    /// Photolithography steppers and tracks.
    Lithography,
    /// Plasma/wet etchers.
    Etch,
    /// Ion implanters.
    Implant,
    /// CVD/PVD deposition systems.
    Deposition,
    /// Diffusion/oxidation furnaces and RTP.
    Furnace,
    /// CMP and cleaning.
    Planarization,
    /// Inline metrology and inspection.
    Metrology,
}

impl ToolFamily {
    /// All families, in a stable order.
    pub const ALL: [ToolFamily; 7] = [
        ToolFamily::Lithography,
        ToolFamily::Etch,
        ToolFamily::Implant,
        ToolFamily::Deposition,
        ToolFamily::Furnace,
        ToolFamily::Planarization,
        ToolFamily::Metrology,
    ];
}

impl std::fmt::Display for ToolFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ToolFamily::Lithography => "lithography",
            ToolFamily::Etch => "etch",
            ToolFamily::Implant => "implant",
            ToolFamily::Deposition => "deposition",
            ToolFamily::Furnace => "furnace",
            ToolFamily::Planarization => "planarization",
            ToolFamily::Metrology => "metrology",
        };
        f.write_str(name)
    }
}

/// One tool model: throughput and the *fixed* annual cost of owning a
/// unit — depreciation, floor space, maintenance contracts and staffing,
/// paid whether the tool processes wafers or idles. This fixity is the
/// entire product-mix story.
///
/// # Examples
///
/// ```
/// use maly_units::Dollars;
/// use maly_fabline_sim::equipment::{EquipmentClass, ToolFamily};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stepper = EquipmentClass::new(
///     ToolFamily::Lithography,
///     60.0, // wafer-steps per hour
///     Dollars::new(2.0e6)?, // annual cost of ownership
/// );
/// // Available wafer-steps per year at 85% uptime:
/// assert!(stepper.annual_capacity_steps() > 400_000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquipmentClass {
    family: ToolFamily,
    wafer_steps_per_hour: f64,
    annual_cost: Dollars,
}

/// Scheduled hours per year (24×7 operation).
pub const HOURS_PER_YEAR: f64 = 24.0 * 365.0;
/// Fraction of scheduled time a tool is actually available for production
/// (the remainder is maintenance and qualification).
pub const AVAILABILITY: f64 = 0.85;

impl EquipmentClass {
    /// Creates an equipment class.
    ///
    /// # Panics
    ///
    /// Panics if `wafer_steps_per_hour` is not positive and finite.
    #[must_use]
    pub fn new(family: ToolFamily, wafer_steps_per_hour: f64, annual_cost: Dollars) -> Self {
        assert!(
            wafer_steps_per_hour.is_finite() && wafer_steps_per_hour > 0.0,
            "throughput must be positive, got {wafer_steps_per_hour}"
        );
        Self {
            family,
            wafer_steps_per_hour,
            annual_cost,
        }
    }

    /// Tool family.
    #[must_use]
    pub fn family(&self) -> ToolFamily {
        self.family
    }

    /// Throughput in wafer-steps per hour.
    #[must_use]
    pub fn wafer_steps_per_hour(&self) -> f64 {
        self.wafer_steps_per_hour
    }

    /// Fixed annual cost of ownership per unit.
    #[must_use]
    pub fn annual_cost(&self) -> Dollars {
        self.annual_cost
    }

    /// Wafer-steps one unit can perform per year at standard availability.
    #[must_use]
    pub fn annual_capacity_steps(&self) -> f64 {
        self.wafer_steps_per_hour * HOURS_PER_YEAR * AVAILABILITY
    }

    /// Hours of tool time consumed by `steps` wafer-steps.
    #[must_use]
    pub fn hours_for_steps(&self, steps: f64) -> f64 {
        steps / self.wafer_steps_per_hour
    }
}

/// A representative early-1990s toolset: one entry per family with
/// throughputs and ownership costs in the right relative proportions
/// (litho is the most expensive and the usual bottleneck).
#[must_use]
pub fn standard_toolset() -> Vec<EquipmentClass> {
    let dollars = |v: f64| Dollars::new(v).expect("positive");
    vec![
        EquipmentClass::new(ToolFamily::Lithography, 60.0, dollars(2.4e6)),
        EquipmentClass::new(ToolFamily::Etch, 45.0, dollars(1.2e6)),
        EquipmentClass::new(ToolFamily::Implant, 80.0, dollars(1.5e6)),
        EquipmentClass::new(ToolFamily::Deposition, 50.0, dollars(1.1e6)),
        EquipmentClass::new(ToolFamily::Furnace, 120.0, dollars(0.6e6)),
        EquipmentClass::new(ToolFamily::Planarization, 55.0, dollars(0.9e6)),
        EquipmentClass::new(ToolFamily::Metrology, 100.0, dollars(0.7e6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_throughput_times_available_hours() {
        let c = EquipmentClass::new(ToolFamily::Etch, 10.0, Dollars::new(1.0e6).unwrap());
        let expected = 10.0 * HOURS_PER_YEAR * AVAILABILITY;
        assert!((c.annual_capacity_steps() - expected).abs() < 1e-9);
    }

    #[test]
    fn hours_for_steps_inverts_throughput() {
        let c = EquipmentClass::new(ToolFamily::Etch, 40.0, Dollars::new(1.0e6).unwrap());
        assert!((c.hours_for_steps(80.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn standard_toolset_covers_all_families() {
        let set = standard_toolset();
        for family in ToolFamily::ALL {
            assert!(set.iter().any(|c| c.family() == family), "missing {family}");
        }
    }

    #[test]
    fn lithography_is_the_most_expensive_tool() {
        let set = standard_toolset();
        let litho = set
            .iter()
            .find(|c| c.family() == ToolFamily::Lithography)
            .unwrap();
        for c in &set {
            assert!(litho.annual_cost().value() >= c.annual_cost().value());
        }
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn zero_throughput_rejected() {
        let _ = EquipmentClass::new(ToolFamily::Etch, 0.0, Dollars::new(1.0).unwrap());
    }

    #[test]
    fn families_display_lowercase() {
        assert_eq!(ToolFamily::Lithography.to_string(), "lithography");
        assert_eq!(ToolFamily::Metrology.to_string(), "metrology");
    }
}
