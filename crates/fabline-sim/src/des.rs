//! Discrete-event simulation of lot flow through a fab.
//!
//! The capacity model answers "does the demand fit"; this simulator
//! answers "what actually happens": lots queue at tool groups, setups
//! interleave, and cycle time grows nonlinearly as the bottleneck
//! saturates. It is also an independent check — measured tool
//! utilizations must converge to the capacity model's static numbers.
//!
//! Deterministic by construction: lots are released at fixed intervals,
//! products rotate round-robin, queues are FIFO, and time advances in
//! integer minutes.

use std::collections::{BinaryHeap, VecDeque};

use crate::capacity::Fab;
use crate::equipment::ToolFamily;
use crate::process::ProcessFlow;

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesConfig {
    /// Wafers per lot.
    pub lot_size: f64,
    /// Hours per product changeover at a tool unit.
    pub setup_hours: f64,
    /// Simulated horizon in days.
    pub horizon_days: f64,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            lot_size: crate::cost::DEFAULT_LOT_SIZE,
            setup_hours: crate::cost::DEFAULT_SETUP_HOURS,
            horizon_days: 90.0,
        }
    }
}

/// Simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// Lots that completed their full flow within the horizon.
    pub completed_lots: usize,
    /// Lots released.
    pub released_lots: usize,
    /// Mean cycle time of completed lots, in hours.
    pub mean_cycle_time_hours: f64,
    /// Busy fraction per tool family (busy time / available unit-time).
    pub utilization_by_family: Vec<(ToolFamily, f64)>,
    /// Largest number of lots simultaneously in the line.
    pub peak_wip: usize,
}

impl DesReport {
    /// Utilization of one family, if it exists in the fab.
    #[must_use]
    pub fn utilization_of(&self, family: ToolFamily) -> Option<f64> {
        self.utilization_by_family
            .iter()
            .find(|(f, _)| *f == family)
            .map(|(_, u)| *u)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A new lot enters the line.
    Release { lot: usize },
    /// A tool unit finishes a lot's current step.
    StepDone {
        family_idx: usize,
        unit: usize,
        lot: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    /// Minutes since simulation start.
    time: u64,
    /// Tiebreaker for determinism.
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct LotState {
    product: usize,
    step: usize,
    released_at: u64,
}

struct UnitState {
    busy_until: u64,
    last_product: Option<usize>,
    busy_minutes: u64,
}

/// Runs the simulation.
///
/// `demand` pairs each flow with its annual wafer starts; releases are
/// paced so the horizon carries the pro-rated share of that demand.
///
/// # Panics
///
/// Panics if the demand is empty, the fab lacks a family some flow
/// needs, or the configuration is degenerate.
#[must_use]
pub fn simulate(fab: &Fab, demand: &[(ProcessFlow, f64)], config: DesConfig) -> DesReport {
    assert!(!demand.is_empty(), "demand must contain at least one flow");
    assert!(
        config.horizon_days > 0.0 && config.lot_size > 0.0,
        "degenerate configuration"
    );
    for (flow, _) in demand {
        for family in ToolFamily::ALL {
            if flow.steps_on(family) > 0 {
                assert!(
                    fab.tools().iter().any(|(c, _)| c.family() == family),
                    "fab lacks {family} required by flow {}",
                    flow.name()
                );
            }
        }
    }

    // Flatten tool groups: index by position in fab.tools().
    let families: Vec<ToolFamily> = fab.tools().iter().map(|(c, _)| c.family()).collect();
    let family_index = |f: ToolFamily| families.iter().position(|&x| x == f).expect("checked");
    let minutes_per_wafer: Vec<f64> = fab
        .tools()
        .iter()
        .map(|(c, _)| 60.0 / c.wafer_steps_per_hour())
        .collect();

    let horizon_min = (config.horizon_days * 24.0 * 60.0) as u64;
    let setup_min = (config.setup_hours * 60.0).round() as u64;
    let process_min: Vec<u64> = minutes_per_wafer
        .iter()
        .map(|m| (m * config.lot_size).round().max(1.0) as u64)
        .collect();

    // Release schedule: total lots over the horizon, products round-robin
    // weighted by volume share.
    let total_wafers_per_year: f64 = demand.iter().map(|(_, v)| v).sum();
    let lots_in_horizon =
        (total_wafers_per_year / config.lot_size * config.horizon_days / 365.0).floor() as usize;
    assert!(lots_in_horizon > 0, "horizon too short for any lot release");
    let release_interval = horizon_min / lots_in_horizon as u64;

    // Assign products to lots proportionally to volume (largest remainder).
    let mut product_of_lot: Vec<usize> = Vec::with_capacity(lots_in_horizon);
    {
        let mut credit: Vec<f64> = vec![0.0; demand.len()];
        for _ in 0..lots_in_horizon {
            for (i, (_, v)) in demand.iter().enumerate() {
                credit[i] += v / total_wafers_per_year;
            }
            let best = credit
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty demand");
            credit[best] -= 1.0;
            product_of_lot.push(best);
        }
    }

    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq: u64 = 0;
    for (lot, _) in product_of_lot.iter().enumerate() {
        events.push(Event {
            time: lot as u64 * release_interval,
            seq,
            kind: EventKind::Release { lot },
        });
        seq += 1;
    }

    let mut lots: Vec<LotState> = product_of_lot
        .iter()
        .map(|&product| LotState {
            product,
            step: 0,
            released_at: 0,
        })
        .collect();
    let mut units: Vec<Vec<UnitState>> = fab
        .tools()
        .iter()
        .map(|(_, count)| {
            (0..*count)
                .map(|_| UnitState {
                    busy_until: 0,
                    last_product: None,
                    busy_minutes: 0,
                })
                .collect()
        })
        .collect();
    let mut queues: Vec<VecDeque<usize>> = families.iter().map(|_| VecDeque::new()).collect();

    let mut completed = 0usize;
    let mut cycle_sum_min = 0u64;
    let mut wip = 0usize;
    let mut peak_wip = 0usize;

    // Routes each lot's next step, or retires it.
    #[allow(clippy::too_many_arguments)]
    fn route(
        lot_id: usize,
        now: u64,
        lots: &mut [LotState],
        demand: &[(ProcessFlow, f64)],
        family_index: &dyn Fn(ToolFamily) -> usize,
        queues: &mut [VecDeque<usize>],
        completed: &mut usize,
        cycle_sum_min: &mut u64,
        wip: &mut usize,
    ) -> Option<usize> {
        let lot = &lots[lot_id];
        let flow = &demand[lot.product].0;
        if lot.step >= flow.step_count() {
            *completed += 1;
            *cycle_sum_min += now - lot.released_at;
            *wip -= 1;
            return None;
        }
        let family = flow.steps()[lot.step].family;
        let idx = family_index(family);
        queues[idx].push_back(lot_id);
        Some(idx)
    }

    // Tries to start work on a family's queue.
    let try_dispatch = |family_idx: usize,
                        now: u64,
                        queues: &mut [VecDeque<usize>],
                        units: &mut [Vec<UnitState>],
                        lots: &mut [LotState],
                        events: &mut BinaryHeap<Event>,
                        seq: &mut u64| {
        while !queues[family_idx].is_empty() {
            let free_unit = units[family_idx].iter().position(|u| u.busy_until <= now);
            let Some(unit) = free_unit else { break };
            let lot_id = queues[family_idx].pop_front().expect("non-empty");
            let product = lots[lot_id].product;
            let needs_setup = units[family_idx][unit].last_product != Some(product);
            let duration = process_min[family_idx] + if needs_setup { setup_min } else { 0 };
            let done = now + duration;
            units[family_idx][unit].busy_until = done;
            units[family_idx][unit].last_product = Some(product);
            units[family_idx][unit].busy_minutes += duration;
            events.push(Event {
                time: done,
                seq: *seq,
                kind: EventKind::StepDone {
                    family_idx,
                    unit,
                    lot: lot_id,
                },
            });
            *seq += 1;
        }
    };

    while let Some(event) = events.pop() {
        if event.time > horizon_min {
            break;
        }
        let now = event.time;
        match event.kind {
            EventKind::Release { lot } => {
                lots[lot].released_at = now;
                wip += 1;
                peak_wip = peak_wip.max(wip);
                if let Some(idx) = route(
                    lot,
                    now,
                    &mut lots,
                    demand,
                    &family_index,
                    &mut queues,
                    &mut completed,
                    &mut cycle_sum_min,
                    &mut wip,
                ) {
                    try_dispatch(
                        idx,
                        now,
                        &mut queues,
                        &mut units,
                        &mut lots,
                        &mut events,
                        &mut seq,
                    );
                }
            }
            EventKind::StepDone {
                family_idx, lot, ..
            } => {
                lots[lot].step += 1;
                if let Some(idx) = route(
                    lot,
                    now,
                    &mut lots,
                    demand,
                    &family_index,
                    &mut queues,
                    &mut completed,
                    &mut cycle_sum_min,
                    &mut wip,
                ) {
                    try_dispatch(
                        idx,
                        now,
                        &mut queues,
                        &mut units,
                        &mut lots,
                        &mut events,
                        &mut seq,
                    );
                }
                // The freed unit can take more work from its own queue.
                try_dispatch(
                    family_idx,
                    now,
                    &mut queues,
                    &mut units,
                    &mut lots,
                    &mut events,
                    &mut seq,
                );
            }
        }
    }

    let utilization_by_family = families
        .iter()
        .enumerate()
        .map(|(i, &family)| {
            let unit_count = units[i].len() as f64;
            let busy: u64 = units[i].iter().map(|u| u.busy_minutes).sum();
            (family, busy as f64 / (unit_count * horizon_min as f64))
        })
        .collect();

    DesReport {
        completed_lots: completed,
        released_lots: lots_in_horizon,
        mean_cycle_time_hours: if completed > 0 {
            cycle_sum_min as f64 / completed as f64 / 60.0
        } else {
            0.0
        },
        utilization_by_family,
        peak_wip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FabEconomics;

    fn flow() -> ProcessFlow {
        ProcessFlow::for_generation("cmos-0.8", 0.8)
    }

    fn config() -> DesConfig {
        DesConfig {
            horizon_days: 120.0,
            ..DesConfig::default()
        }
    }

    #[test]
    fn underloaded_fab_completes_everything() {
        let econ = FabEconomics::default();
        let demand = [(flow(), 20_000.0)];
        // Build the fab for twice the demand: plenty of headroom.
        let fab = econ.size_fab(&[(flow(), 40_000.0)]);
        let report = simulate(&fab, &demand, config());
        assert!(report.released_lots > 50);
        // Nearly all lots complete (the last few are still in flight).
        assert!(
            report.completed_lots as f64 >= 0.9 * report.released_lots as f64,
            "{} of {}",
            report.completed_lots,
            report.released_lots
        );
    }

    #[test]
    fn overload_shows_up_as_queueing() {
        // With deterministic releases and service, a below-capacity line
        // never queues (D/D/c); push the demand past the bottleneck and
        // cycle time and WIP must blow up.
        let econ = FabEconomics::default();
        let fab = econ.size_fab(&[(flow(), 50_000.0)]);
        let light = simulate(&fab, &[(flow(), 20_000.0)], config());
        let overloaded = simulate(&fab, &[(flow(), 70_000.0)], config());
        assert!(
            overloaded.mean_cycle_time_hours > 1.5 * light.mean_cycle_time_hours,
            "overloaded {} vs light {}",
            overloaded.mean_cycle_time_hours,
            light.mean_cycle_time_hours
        );
        assert!(overloaded.peak_wip > 2 * light.peak_wip);
    }

    #[test]
    fn measured_utilization_tracks_capacity_model() {
        let econ = FabEconomics::default();
        let demand = [(flow(), 40_000.0)];
        let fab = econ.size_fab(&demand);
        let des = simulate(&fab, &demand, config());
        let static_util = econ.utilization(&demand);
        let des_avg: f64 = des
            .utilization_by_family
            .iter()
            .map(|(_, u)| u)
            .sum::<f64>()
            / des.utilization_by_family.len() as f64;
        // The DES measures busy/total-scheduled; the static model uses
        // available (85%) hours — align and compare loosely.
        let aligned = des_avg / crate::equipment::AVAILABILITY;
        assert!(
            (aligned - static_util).abs() < 0.25,
            "des {aligned} vs static {static_util}"
        );
    }

    #[test]
    fn setups_visible_in_multi_product_cycle_time() {
        let econ = FabEconomics::default();
        let a = flow();
        let b = ProcessFlow::for_generation("other", 0.8);
        let demand_multi = [(a.clone(), 15_000.0), (b, 15_000.0)];
        let demand_mono = [(a, 30_000.0)];
        let fab = econ.size_fab(&demand_mono);
        let mono = simulate(&fab, &demand_mono, config());
        let multi = simulate(&fab, &demand_multi, config());
        assert!(
            multi.mean_cycle_time_hours > mono.mean_cycle_time_hours,
            "multi {} vs mono {}",
            multi.mean_cycle_time_hours,
            mono.mean_cycle_time_hours
        );
    }

    #[test]
    fn utilizations_are_fractions() {
        let econ = FabEconomics::default();
        let demand = [(flow(), 30_000.0)];
        let fab = econ.size_fab(&demand);
        let report = simulate(&fab, &demand, config());
        for (family, u) in &report.utilization_by_family {
            assert!((0.0..=1.05).contains(u), "{family}: {u}");
        }
    }

    #[test]
    #[should_panic(expected = "fab lacks")]
    fn missing_family_panics() {
        let fab = Fab::new(vec![]);
        let _ = simulate(&fab, &[(flow(), 10_000.0)], config());
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_demand_panics() {
        let econ = FabEconomics::default();
        let fab = econ.size_fab(&[(flow(), 10_000.0)]);
        let _ = simulate(&fab, &[], config());
    }
}
