//! Monte Carlo study of fab economics under demand uncertainty.
//!
//! The product-mix argument of Sec. III.A.d is deterministic: given a
//! demand vector, [`crate::cost::FabEconomics`] prices the wafer. But
//! the demand a fab is sized for is a *forecast*; actual annual volumes
//! jitter around it, and because tool counts are `ceil()`ed the wafer
//! cost responds asymmetrically — a small volume shortfall strands an
//! entire tool's cost of ownership. This module quantifies that band:
//! each replication perturbs every product's volume by a bounded
//! relative jitter, re-sizes the minimal fab, and reprices the wafer.
//!
//! Replications run on the [`maly_par::Executor`] and are seeded as a
//! pure function of `(base_seed, replication index)`, so the report is
//! bit-identical at every thread count.

use maly_par::Executor;
use maly_units::{Dollars, UnitError};
use maly_yield_model::prng::{SplitMix64, UniformSource, Xoshiro256PlusPlus};

use crate::cost::FabEconomics;
use crate::process::ProcessFlow;

/// Replications completed, across all studies in the process. Work
/// kind: the replication count is part of the configuration, so the
/// total is thread-count-invariant.
static MC_REPLICATIONS: maly_obs::Counter = maly_obs::Counter::work("mc.replications");
/// Per-replication wall-clock durations (recorded only when obs is
/// enabled).
static MC_REPLICATION_NS: maly_obs::Histogram = maly_obs::Histogram::new("mc.replication_ns");

/// Monte Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Number of replications.
    pub replications: usize,
    /// Maximum relative volume perturbation: each product's volume is
    /// scaled by a factor drawn uniformly from
    /// `[1 − volume_jitter, 1 + volume_jitter]`. Must lie in `[0, 1)`
    /// so volumes stay positive.
    pub volume_jitter: f64,
    /// Base seed; replication `r` derives its own stream from
    /// `(base_seed, r)` regardless of which thread runs it.
    pub base_seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            replications: 200,
            volume_jitter: 0.3,
            base_seed: 0x4d61_6c79_3139_3934, // "Maly1994"
        }
    }
}

/// One replication's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McSample {
    /// Wafer cost in the minimal fab for the perturbed demand.
    pub wafer_cost: Dollars,
    /// Tool utilization of that fab under the perturbed demand.
    pub utilization: f64,
    /// Total perturbed annual wafer volume.
    pub wafers: f64,
}

/// Aggregate over all replications (order-independent summaries plus
/// the full per-replication series in replication order).
#[derive(Debug, Clone, PartialEq)]
pub struct McReport {
    /// Per-replication outcomes, index = replication number.
    pub samples: Vec<McSample>,
    /// Mean wafer cost across replications.
    pub mean_wafer_cost: Dollars,
    /// Cheapest replication.
    pub min_wafer_cost: Dollars,
    /// Most expensive replication.
    pub max_wafer_cost: Dollars,
    /// Mean tool utilization.
    pub mean_utilization: f64,
}

impl McReport {
    /// Max-over-min wafer-cost spread: how much the `ceil()`ed tool
    /// counts amplify demand uncertainty into cost uncertainty.
    #[must_use]
    pub fn cost_spread(&self) -> f64 {
        if self.min_wafer_cost.value() > 0.0 {
            self.max_wafer_cost.value() / self.min_wafer_cost.value()
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the study on the ambient executor (`MALY_PAR_THREADS`).
///
/// # Errors
///
/// Returns an error when `replications` is zero, `volume_jitter` is
/// outside `[0, 1)`, or the demand is empty / non-positive.
pub fn run(
    economics: &FabEconomics,
    demand: &[(ProcessFlow, f64)],
    config: &McConfig,
) -> Result<McReport, UnitError> {
    run_with(&Executor::from_env(), economics, demand, config)
}

/// [`run`] on an explicit executor. Replications are embarrassingly
/// parallel; results are collected in replication order and every
/// stream is seeded from `(base_seed, index)`, so the report is
/// bit-identical whether it ran on one thread or eight.
///
/// # Errors
///
/// As for [`run`].
pub fn run_with(
    exec: &Executor,
    economics: &FabEconomics,
    demand: &[(ProcessFlow, f64)],
    config: &McConfig,
) -> Result<McReport, UnitError> {
    if config.replications == 0 {
        return Err(UnitError::NotPositive {
            quantity: "Monte Carlo replications",
            value: 0.0,
        });
    }
    if !(config.volume_jitter >= 0.0 && config.volume_jitter < 1.0) {
        return Err(UnitError::OutOfRange {
            quantity: "volume jitter",
            value: config.volume_jitter,
            min: 0.0,
            max: 1.0,
        });
    }
    if demand.is_empty() || demand.iter().any(|(_, v)| !(*v > 0.0)) {
        return Err(UnitError::NotPositive {
            quantity: "annual wafer volume",
            value: demand.iter().map(|(_, v)| *v).fold(0.0, f64::min),
        });
    }

    let run_span = maly_obs::span("mc.run");
    let run_id = run_span.id();
    let evaluated = exec.map_indexed(config.replications, |r| -> Result<McSample, UnitError> {
        // Replication spans open on worker threads, so they parent onto
        // the submitting run span explicitly (the executor's chunk span
        // sits in between when the map actually goes parallel).
        let _rep_span = maly_obs::span_child("mc.replication", maly_obs::current_span().or(run_id))
            .with_histogram(&MC_REPLICATION_NS);
        MC_REPLICATIONS.incr();
        let mut rng = replication_rng(config.base_seed, r as u64);
        let perturbed: Vec<(ProcessFlow, f64)> = demand
            .iter()
            .map(|(flow, volume)| {
                let swing = config.volume_jitter * (2.0 * rng.next_f64() - 1.0);
                (flow.clone(), volume * (1.0 + swing))
            })
            .collect();
        let wafer_cost = economics.wafer_cost(&perturbed)?;
        Ok(McSample {
            wafer_cost,
            utilization: economics.utilization(&perturbed),
            wafers: perturbed.iter().map(|(_, v)| v).sum(),
        })
    });

    let mut samples = Vec::with_capacity(config.replications);
    for sample in evaluated {
        samples.push(sample?);
    }

    let n = samples.len() as f64;
    let mean_cost = samples.iter().map(|s| s.wafer_cost.value()).sum::<f64>() / n;
    let min_cost = samples
        .iter()
        .map(|s| s.wafer_cost.value())
        .fold(f64::INFINITY, f64::min);
    let max_cost = samples
        .iter()
        .map(|s| s.wafer_cost.value())
        .fold(0.0, f64::max);
    let mean_utilization = samples.iter().map(|s| s.utilization).sum::<f64>() / n;

    Ok(McReport {
        samples,
        mean_wafer_cost: Dollars::new(mean_cost)?,
        min_wafer_cost: Dollars::new(min_cost)?,
        max_wafer_cost: Dollars::new(max_cost)?,
        mean_utilization,
    })
}

/// The RNG for replication `r`: a pure function of `(base_seed, r)`.
/// SplitMix64 whitens the combined seed so neighbouring replication
/// indices do not produce correlated Xoshiro streams.
fn replication_rng(base_seed: u64, r: u64) -> Xoshiro256PlusPlus {
    let mut mixer = SplitMix64::new(base_seed ^ r.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    Xoshiro256PlusPlus::seed_from_u64(mixer.next_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> Vec<(ProcessFlow, f64)> {
        vec![
            (ProcessFlow::for_generation("cmos-0.8", 0.8), 20_000.0),
            (ProcessFlow::for_generation("cmos-1.2", 1.2), 5_000.0),
            (ProcessFlow::for_generation("bicmos-0.8", 0.8), 1_000.0),
        ]
    }

    fn config(replications: usize) -> McConfig {
        McConfig {
            replications,
            ..McConfig::default()
        }
    }

    #[test]
    fn report_is_bit_identical_across_thread_counts() {
        let economics = FabEconomics::default();
        let d = demand();
        let cfg = config(64);
        let serial = run_with(&Executor::with_threads(1), &economics, &d, &cfg).unwrap();
        for threads in [1usize, 2, 8] {
            let parallel =
                run_with(&Executor::with_threads(threads), &economics, &d, &cfg).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn zero_jitter_reproduces_the_deterministic_cost() {
        let economics = FabEconomics::default();
        let d = demand();
        let cfg = McConfig {
            replications: 8,
            volume_jitter: 0.0,
            ..McConfig::default()
        };
        let report = run(&economics, &d, &cfg).unwrap();
        let exact = economics.wafer_cost(&d).unwrap();
        for s in &report.samples {
            assert_eq!(s.wafer_cost, exact);
        }
        assert_eq!(report.min_wafer_cost, report.max_wafer_cost);
    }

    #[test]
    fn jitter_opens_a_cost_band() {
        let economics = FabEconomics::default();
        let report = run(&economics, &demand(), &config(128)).unwrap();
        assert!(
            report.cost_spread() > 1.0,
            "spread {} should exceed 1",
            report.cost_spread()
        );
        let mean = report.mean_wafer_cost.value();
        assert!(report.min_wafer_cost.value() <= mean && mean <= report.max_wafer_cost.value());
    }

    #[test]
    fn same_seed_reproduces_and_new_seed_differs() {
        let economics = FabEconomics::default();
        let d = demand();
        let a = run(&economics, &d, &config(32)).unwrap();
        let b = run(&economics, &d, &config(32)).unwrap();
        assert_eq!(a, b);
        let c = run(
            &economics,
            &d,
            &McConfig {
                base_seed: 1,
                ..config(32)
            },
        )
        .unwrap();
        assert_ne!(a.samples, c.samples, "a fresh seed must draw fresh volumes");
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let economics = FabEconomics::default();
        let d = demand();
        assert!(run(&economics, &d, &config(0)).is_err());
        assert!(run(
            &economics,
            &d,
            &McConfig {
                volume_jitter: 1.0,
                ..config(4)
            }
        )
        .is_err());
        assert!(run(&economics, &[], &config(4)).is_err());
    }
}
