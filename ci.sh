#!/usr/bin/env sh
# Local CI gate: formatting, the maly-audit lint pass, and the full
# test suite. Everything runs offline — the workspace has no external
# dependencies.
set -eu

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== maly-audit lint"
cargo run -q -p xtask -- lint

echo "== cargo test (MALY_PAR_THREADS=1, serial)"
MALY_PAR_THREADS=1 cargo test --workspace -q

echo "== cargo test (default parallelism)"
cargo test --workspace -q

echo "ci.sh: all gates passed"
