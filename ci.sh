#!/usr/bin/env sh
# Local CI gate: formatting, the maly-audit lint pass, the full test
# suite, and the bench-regression check. Everything runs offline — the
# workspace has no external dependencies.
set -eu

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== maly-audit lint (report archived to target/lint_report.json)"
mkdir -p target
cargo run -q -p xtask -- lint --json target/lint_report.json
# The report must self-describe as clean: a violation in any family
# (the determinism / lock-order / stale-escape families included)
# already failed the command above, but the archived artifact is what
# downstream tooling consumes, so sanity-check it too.
grep -q '"schema": "maly-audit/v2"' target/lint_report.json
grep -q '"clean": true' target/lint_report.json

echo "== cargo test (MALY_PAR_THREADS=1, serial)"
MALY_PAR_THREADS=1 cargo test --workspace -q

echo "== cargo test (default parallelism)"
cargo test --workspace -q

echo "== cargo test (MALY_OBS=1, traced)"
MALY_OBS=1 cargo test --workspace -q

echo "== serve loopback suite (MALY_OBS=1, real sockets)"
MALY_OBS=1 cargo test -q -p maly-serve --test loopback

echo "== serve loopback suite (MALY_PLAN=0, planner disabled)"
# The served bytes must not depend on whether batched queries go
# through the evaluation planner, so the whole loopback suite runs a
# second time with cross-request fusion switched off.
MALY_OBS=1 MALY_PLAN=0 cargo test -q -p maly-serve --test loopback

echo "== trace-check (serve protocol trace via query --file)"
mkdir -p target
cat > target/ci_requests.jsonl <<'REQ'
{"id": 1, "query": {"type": "table3_row", "id": 1}}
[{"id": 2, "query": {"type": "scenario2_sweep", "x": 2.4, "steps": 11}}, {"id": 3, "query": {"type": "product_mix", "products": 8}}]
[{"id": 4, "query": {"type": "surface_tile", "lambda_min": 0.52, "lambda_max": 0.92, "lambda_steps": 7, "n_tr_min": 8.0e4, "n_tr_max": 6.0e5, "n_tr_steps": 6}}]
[{"id": 5, "query": {"type": "surface_tile", "lambda_min": 0.52, "lambda_max": 0.92, "lambda_steps": 7, "n_tr_min": 8.0e4, "n_tr_max": 6.0e5, "n_tr_steps": 6}}]
{"v": 1, "id": 6, "query": {"type": "chiplet_partition_sweep", "transistors": 2.0e6, "volume": 50000}}
REQ
cargo run -q -p maly-cli -- query --file target/ci_requests.jsonl \
    --trace-out target/trace_serve_ci.ndjson > /dev/null
grep -q '"name":"serve.request"' target/trace_serve_ci.ndjson
grep -q '"name":"model.queries"' target/trace_serve_ci.ndjson
# The cold surface-tile request (id 4) must surface the tile-cache miss
# counter in the exported trace, and its repeat (id 5) the hit counter.
grep -q '"name":"model.tile_misses"' target/trace_serve_ci.ndjson
grep -q '"name":"model.tile_hits"' target/trace_serve_ci.ndjson
# The served chiplet sweep (id 6, sent under an explicit v:1 envelope)
# must surface the partition-search counters in the same trace.
grep -q '"name":"chiplet.partitions"' target/trace_serve_ci.ndjson
grep -q '"name":"chiplet.die_points"' target/trace_serve_ci.ndjson
cargo run -q -p xtask -- trace-check target/trace_serve_ci.ndjson

echo "== chiplet partition goldens (1/2/8 threads, MALY_OBS=1)"
# The reference optimum (4 chiplets + 0 spares at λ = 1.2 µm,
# 64.95 $/system) must be bit-identical whatever the executor width,
# with tracing on.
for T in 1 2 8; do
    MALY_OBS=1 MALY_PAR_THREADS=$T cargo test -q -p maly-chiplet \
        sweep_golden_reference_partition
    MALY_OBS=1 MALY_PAR_THREADS=$T cargo test -q -p maly-model \
        chiplet_sweep_matches_direct_evaluation_and_pins_the_optimum
done
MALY_OBS=1 cargo test -q -p maly-model --test wire_golden

echo "== trace-check (sample CLI --trace-out ndjson)"
mkdir -p target
cargo run -q -p maly-cli -- sweep --transistors 3.1e6 --lambda 0.8 \
    --density 150 --yield 0.7 --c0 700 --x 1.8 \
    --trace-out target/trace_ci.ndjson > /dev/null
cargo run -q -p xtask -- trace-check target/trace_ci.ndjson

echo "== bench regression check (MALY_PAR_THREADS=1, serial)"
MALY_PAR_THREADS=1 cargo bench -p maly-bench --bench sweeps -- \
    --json target/bench_sweeps_ci_t1.json
cargo run -q -p xtask -- bench-check target/bench_sweeps_ci_t1.json

echo "== bench regression check (default parallelism, vs BENCH_sweeps.json)"
cargo bench -p maly-bench --bench sweeps -- --json target/bench_sweeps_ci.json
cargo run -q -p xtask -- bench-check target/bench_sweeps_ci.json

# Both recorded baselines must carry the per-eval counter group the
# bench-check median gate rides on, and declare how parallel the run
# really was (the multi-core speedup gate keys on that header).
grep -q '"group": "per_eval"' target/bench_sweeps_ci_t1.json
grep -q '"group": "per_eval"' target/bench_sweeps_ci.json
grep -q '"available_parallelism"' target/bench_sweeps_ci.json

echo "== serve latency smoke (loadgen vs BENCH_serve.json)"
# Default flags replay the committed baseline's exact seeded workload —
# the work-counter section is compared bit-for-bit, so the smoke must
# send the same request sequence the baseline recorded.
MALY_OBS=1 cargo run -q --release -p maly-loadgen -- \
    --json target/bench_serve_ci.json
cargo run -q -p xtask -- bench-check target/bench_serve_ci.json BENCH_serve.json
# The smoke artifact must declare its parallelism header, carry the
# percentile fields the tail gate rides on, and report the
# deterministic work counters fetched over the stats protocol.
grep -q '"available_parallelism"' target/bench_serve_ci.json
grep -q '"p99_ns"' target/bench_serve_ci.json
grep -q '"name": "serve.request_lines"' target/bench_serve_ci.json

echo "== cli stats record appended to a live-server trace"
# A live server's metrics snapshot, retagged by `silicon-cost stats`,
# must append to an existing trace as one more valid ndjson record.
cargo build -q -p maly-cli
MALY_OBS=1 ./target/debug/maly-cli serve --addr 127.0.0.1:7917 &
SERVE_PID=$!
./target/debug/maly-cli stats --addr 127.0.0.1:7917 \
    >> target/trace_serve_ci.ndjson
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
grep -q '"type":"stats"' target/trace_serve_ci.ndjson
cargo run -q -p xtask -- trace-check target/trace_serve_ci.ndjson

echo "ci.sh: all gates passed"
