/root/repo/target/release/deps/maly_paper_data-3ab253d1299382ab.d: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/release/deps/libmaly_paper_data-3ab253d1299382ab.rlib: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/release/deps/libmaly_paper_data-3ab253d1299382ab.rmeta: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

crates/paper-data/src/lib.rs:
crates/paper-data/src/figures.rs:
crates/paper-data/src/table1.rs:
crates/paper-data/src/table2.rs:
crates/paper-data/src/table3.rs:
