/root/repo/target/release/deps/maly_cost_optim-2a79121a99a3283d.d: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/release/deps/libmaly_cost_optim-2a79121a99a3283d.rlib: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/release/deps/libmaly_cost_optim-2a79121a99a3283d.rmeta: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

crates/cost-optim/src/lib.rs:
crates/cost-optim/src/contour.rs:
crates/cost-optim/src/pareto.rs:
crates/cost-optim/src/partition.rs:
crates/cost-optim/src/search.rs:
