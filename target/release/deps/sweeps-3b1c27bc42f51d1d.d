/root/repo/target/release/deps/sweeps-3b1c27bc42f51d1d.d: crates/bench/benches/sweeps.rs

/root/repo/target/release/deps/sweeps-3b1c27bc42f51d1d: crates/bench/benches/sweeps.rs

crates/bench/benches/sweeps.rs:
