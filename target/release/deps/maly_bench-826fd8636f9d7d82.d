/root/repo/target/release/deps/maly_bench-826fd8636f9d7d82.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmaly_bench-826fd8636f9d7d82.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmaly_bench-826fd8636f9d7d82.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
