/root/repo/target/release/deps/all-824d3e31ce8f4ade.d: crates/repro/src/bin/all.rs

/root/repo/target/release/deps/all-824d3e31ce8f4ade: crates/repro/src/bin/all.rs

crates/repro/src/bin/all.rs:
