/root/repo/target/release/deps/maly_tech_trend-12b3647c5dff7d21.d: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

/root/repo/target/release/deps/libmaly_tech_trend-12b3647c5dff7d21.rlib: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

/root/repo/target/release/deps/libmaly_tech_trend-12b3647c5dff7d21.rmeta: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

crates/tech-trend/src/lib.rs:
crates/tech-trend/src/datasets.rs:
crates/tech-trend/src/diesize.rs:
crates/tech-trend/src/fit.rs:
crates/tech-trend/src/generations.rs:
crates/tech-trend/src/sia.rs:
