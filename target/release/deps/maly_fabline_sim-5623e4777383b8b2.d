/root/repo/target/release/deps/maly_fabline_sim-5623e4777383b8b2.d: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/release/deps/libmaly_fabline_sim-5623e4777383b8b2.rlib: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/release/deps/libmaly_fabline_sim-5623e4777383b8b2.rmeta: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

crates/fabline-sim/src/lib.rs:
crates/fabline-sim/src/capacity.rs:
crates/fabline-sim/src/cost.rs:
crates/fabline-sim/src/des.rs:
crates/fabline-sim/src/equipment.rs:
crates/fabline-sim/src/mc.rs:
crates/fabline-sim/src/process.rs:
crates/fabline-sim/src/rental.rs:
