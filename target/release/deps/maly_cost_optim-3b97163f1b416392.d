/root/repo/target/release/deps/maly_cost_optim-3b97163f1b416392.d: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/release/deps/libmaly_cost_optim-3b97163f1b416392.rlib: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/release/deps/libmaly_cost_optim-3b97163f1b416392.rmeta: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

crates/cost-optim/src/lib.rs:
crates/cost-optim/src/contour.rs:
crates/cost-optim/src/pareto.rs:
crates/cost-optim/src/partition.rs:
crates/cost-optim/src/search.rs:
