/root/repo/target/release/deps/maly_viz-1215d6a8da63ebfc.d: crates/viz/src/lib.rs crates/viz/src/barchart.rs crates/viz/src/canvas.rs crates/viz/src/contourplot.rs crates/viz/src/csv.rs crates/viz/src/lineplot.rs crates/viz/src/scale.rs crates/viz/src/table.rs crates/viz/src/wafermap.rs

/root/repo/target/release/deps/libmaly_viz-1215d6a8da63ebfc.rlib: crates/viz/src/lib.rs crates/viz/src/barchart.rs crates/viz/src/canvas.rs crates/viz/src/contourplot.rs crates/viz/src/csv.rs crates/viz/src/lineplot.rs crates/viz/src/scale.rs crates/viz/src/table.rs crates/viz/src/wafermap.rs

/root/repo/target/release/deps/libmaly_viz-1215d6a8da63ebfc.rmeta: crates/viz/src/lib.rs crates/viz/src/barchart.rs crates/viz/src/canvas.rs crates/viz/src/contourplot.rs crates/viz/src/csv.rs crates/viz/src/lineplot.rs crates/viz/src/scale.rs crates/viz/src/table.rs crates/viz/src/wafermap.rs

crates/viz/src/lib.rs:
crates/viz/src/barchart.rs:
crates/viz/src/canvas.rs:
crates/viz/src/contourplot.rs:
crates/viz/src/csv.rs:
crates/viz/src/lineplot.rs:
crates/viz/src/scale.rs:
crates/viz/src/table.rs:
crates/viz/src/wafermap.rs:
