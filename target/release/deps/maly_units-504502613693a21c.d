/root/repo/target/release/deps/maly_units-504502613693a21c.d: crates/units/src/lib.rs crates/units/src/area.rs crates/units/src/contract.rs crates/units/src/count.rs crates/units/src/density.rs crates/units/src/error.rs crates/units/src/length.rs crates/units/src/macros.rs crates/units/src/money.rs crates/units/src/probability.rs

/root/repo/target/release/deps/libmaly_units-504502613693a21c.rlib: crates/units/src/lib.rs crates/units/src/area.rs crates/units/src/contract.rs crates/units/src/count.rs crates/units/src/density.rs crates/units/src/error.rs crates/units/src/length.rs crates/units/src/macros.rs crates/units/src/money.rs crates/units/src/probability.rs

/root/repo/target/release/deps/libmaly_units-504502613693a21c.rmeta: crates/units/src/lib.rs crates/units/src/area.rs crates/units/src/contract.rs crates/units/src/count.rs crates/units/src/density.rs crates/units/src/error.rs crates/units/src/length.rs crates/units/src/macros.rs crates/units/src/money.rs crates/units/src/probability.rs

crates/units/src/lib.rs:
crates/units/src/area.rs:
crates/units/src/contract.rs:
crates/units/src/count.rs:
crates/units/src/density.rs:
crates/units/src/error.rs:
crates/units/src/length.rs:
crates/units/src/macros.rs:
crates/units/src/money.rs:
crates/units/src/probability.rs:
