/root/repo/target/release/deps/maly_wafer_geom-63fcb43da75b8270.d: crates/wafer-geom/src/lib.rs crates/wafer-geom/src/approx.rs crates/wafer-geom/src/cache.rs crates/wafer-geom/src/die.rs crates/wafer-geom/src/maly.rs crates/wafer-geom/src/raster.rs crates/wafer-geom/src/reticle.rs crates/wafer-geom/src/wafer.rs crates/wafer-geom/src/wafer_map.rs

/root/repo/target/release/deps/libmaly_wafer_geom-63fcb43da75b8270.rlib: crates/wafer-geom/src/lib.rs crates/wafer-geom/src/approx.rs crates/wafer-geom/src/cache.rs crates/wafer-geom/src/die.rs crates/wafer-geom/src/maly.rs crates/wafer-geom/src/raster.rs crates/wafer-geom/src/reticle.rs crates/wafer-geom/src/wafer.rs crates/wafer-geom/src/wafer_map.rs

/root/repo/target/release/deps/libmaly_wafer_geom-63fcb43da75b8270.rmeta: crates/wafer-geom/src/lib.rs crates/wafer-geom/src/approx.rs crates/wafer-geom/src/cache.rs crates/wafer-geom/src/die.rs crates/wafer-geom/src/maly.rs crates/wafer-geom/src/raster.rs crates/wafer-geom/src/reticle.rs crates/wafer-geom/src/wafer.rs crates/wafer-geom/src/wafer_map.rs

crates/wafer-geom/src/lib.rs:
crates/wafer-geom/src/approx.rs:
crates/wafer-geom/src/cache.rs:
crates/wafer-geom/src/die.rs:
crates/wafer-geom/src/maly.rs:
crates/wafer-geom/src/raster.rs:
crates/wafer-geom/src/reticle.rs:
crates/wafer-geom/src/wafer.rs:
crates/wafer-geom/src/wafer_map.rs:
