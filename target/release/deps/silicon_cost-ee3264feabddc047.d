/root/repo/target/release/deps/silicon_cost-ee3264feabddc047.d: src/lib.rs

/root/repo/target/release/deps/libsilicon_cost-ee3264feabddc047.rlib: src/lib.rs

/root/repo/target/release/deps/libsilicon_cost-ee3264feabddc047.rmeta: src/lib.rs

src/lib.rs:
