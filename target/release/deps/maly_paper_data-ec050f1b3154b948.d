/root/repo/target/release/deps/maly_paper_data-ec050f1b3154b948.d: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/release/deps/libmaly_paper_data-ec050f1b3154b948.rlib: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/release/deps/libmaly_paper_data-ec050f1b3154b948.rmeta: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

crates/paper-data/src/lib.rs:
crates/paper-data/src/figures.rs:
crates/paper-data/src/table1.rs:
crates/paper-data/src/table2.rs:
crates/paper-data/src/table3.rs:
