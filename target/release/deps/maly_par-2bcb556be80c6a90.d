/root/repo/target/release/deps/maly_par-2bcb556be80c6a90.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libmaly_par-2bcb556be80c6a90.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libmaly_par-2bcb556be80c6a90.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
