/root/repo/target/release/deps/maly_test_economics-2ba94742e7297505.d: crates/test-economics/src/lib.rs crates/test-economics/src/coverage_opt.rs crates/test-economics/src/dft.rs crates/test-economics/src/escapes.rs crates/test-economics/src/mcm.rs crates/test-economics/src/test_time.rs

/root/repo/target/release/deps/libmaly_test_economics-2ba94742e7297505.rlib: crates/test-economics/src/lib.rs crates/test-economics/src/coverage_opt.rs crates/test-economics/src/dft.rs crates/test-economics/src/escapes.rs crates/test-economics/src/mcm.rs crates/test-economics/src/test_time.rs

/root/repo/target/release/deps/libmaly_test_economics-2ba94742e7297505.rmeta: crates/test-economics/src/lib.rs crates/test-economics/src/coverage_opt.rs crates/test-economics/src/dft.rs crates/test-economics/src/escapes.rs crates/test-economics/src/mcm.rs crates/test-economics/src/test_time.rs

crates/test-economics/src/lib.rs:
crates/test-economics/src/coverage_opt.rs:
crates/test-economics/src/dft.rs:
crates/test-economics/src/escapes.rs:
crates/test-economics/src/mcm.rs:
crates/test-economics/src/test_time.rs:
