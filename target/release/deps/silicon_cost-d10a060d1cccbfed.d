/root/repo/target/release/deps/silicon_cost-d10a060d1cccbfed.d: src/lib.rs

/root/repo/target/release/deps/libsilicon_cost-d10a060d1cccbfed.rlib: src/lib.rs

/root/repo/target/release/deps/libsilicon_cost-d10a060d1cccbfed.rmeta: src/lib.rs

src/lib.rs:
