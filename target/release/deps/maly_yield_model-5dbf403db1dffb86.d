/root/repo/target/release/deps/maly_yield_model-5dbf403db1dffb86.d: crates/yield-model/src/lib.rs crates/yield-model/src/critical_area.rs crates/yield-model/src/defects.rs crates/yield-model/src/functional.rs crates/yield-model/src/learning.rs crates/yield-model/src/monte_carlo.rs crates/yield-model/src/parametric.rs crates/yield-model/src/prng.rs crates/yield-model/src/redundancy.rs crates/yield-model/src/sampling.rs

/root/repo/target/release/deps/libmaly_yield_model-5dbf403db1dffb86.rlib: crates/yield-model/src/lib.rs crates/yield-model/src/critical_area.rs crates/yield-model/src/defects.rs crates/yield-model/src/functional.rs crates/yield-model/src/learning.rs crates/yield-model/src/monte_carlo.rs crates/yield-model/src/parametric.rs crates/yield-model/src/prng.rs crates/yield-model/src/redundancy.rs crates/yield-model/src/sampling.rs

/root/repo/target/release/deps/libmaly_yield_model-5dbf403db1dffb86.rmeta: crates/yield-model/src/lib.rs crates/yield-model/src/critical_area.rs crates/yield-model/src/defects.rs crates/yield-model/src/functional.rs crates/yield-model/src/learning.rs crates/yield-model/src/monte_carlo.rs crates/yield-model/src/parametric.rs crates/yield-model/src/prng.rs crates/yield-model/src/redundancy.rs crates/yield-model/src/sampling.rs

crates/yield-model/src/lib.rs:
crates/yield-model/src/critical_area.rs:
crates/yield-model/src/defects.rs:
crates/yield-model/src/functional.rs:
crates/yield-model/src/learning.rs:
crates/yield-model/src/monte_carlo.rs:
crates/yield-model/src/parametric.rs:
crates/yield-model/src/prng.rs:
crates/yield-model/src/redundancy.rs:
crates/yield-model/src/sampling.rs:
