/root/repo/target/release/deps/experiments-c68733cf3f304903.d: crates/bench/benches/experiments.rs

/root/repo/target/release/deps/experiments-c68733cf3f304903: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
