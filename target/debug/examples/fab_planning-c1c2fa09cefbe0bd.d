/root/repo/target/debug/examples/fab_planning-c1c2fa09cefbe0bd.d: examples/fab_planning.rs

/root/repo/target/debug/examples/fab_planning-c1c2fa09cefbe0bd: examples/fab_planning.rs

examples/fab_planning.rs:
