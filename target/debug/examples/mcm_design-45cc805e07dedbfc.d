/root/repo/target/debug/examples/mcm_design-45cc805e07dedbfc.d: examples/mcm_design.rs

/root/repo/target/debug/examples/mcm_design-45cc805e07dedbfc: examples/mcm_design.rs

examples/mcm_design.rs:
