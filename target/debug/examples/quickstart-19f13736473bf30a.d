/root/repo/target/debug/examples/quickstart-19f13736473bf30a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-19f13736473bf30a: examples/quickstart.rs

examples/quickstart.rs:
