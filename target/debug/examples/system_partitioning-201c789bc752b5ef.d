/root/repo/target/debug/examples/system_partitioning-201c789bc752b5ef.d: examples/system_partitioning.rs

/root/repo/target/debug/examples/system_partitioning-201c789bc752b5ef: examples/system_partitioning.rs

examples/system_partitioning.rs:
