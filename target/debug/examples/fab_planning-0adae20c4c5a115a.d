/root/repo/target/debug/examples/fab_planning-0adae20c4c5a115a.d: examples/fab_planning.rs

/root/repo/target/debug/examples/fab_planning-0adae20c4c5a115a: examples/fab_planning.rs

examples/fab_planning.rs:
