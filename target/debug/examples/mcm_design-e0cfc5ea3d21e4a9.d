/root/repo/target/debug/examples/mcm_design-e0cfc5ea3d21e4a9.d: examples/mcm_design.rs

/root/repo/target/debug/examples/mcm_design-e0cfc5ea3d21e4a9: examples/mcm_design.rs

examples/mcm_design.rs:
