/root/repo/target/debug/examples/system_partitioning-26c7fe6a31347e81.d: examples/system_partitioning.rs

/root/repo/target/debug/examples/system_partitioning-26c7fe6a31347e81: examples/system_partitioning.rs

examples/system_partitioning.rs:
