/root/repo/target/debug/examples/yield_ramp-39938dedbe5c5858.d: examples/yield_ramp.rs

/root/repo/target/debug/examples/yield_ramp-39938dedbe5c5858: examples/yield_ramp.rs

examples/yield_ramp.rs:
