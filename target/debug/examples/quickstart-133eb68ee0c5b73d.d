/root/repo/target/debug/examples/quickstart-133eb68ee0c5b73d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-133eb68ee0c5b73d: examples/quickstart.rs

examples/quickstart.rs:
