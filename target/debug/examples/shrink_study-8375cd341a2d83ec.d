/root/repo/target/debug/examples/shrink_study-8375cd341a2d83ec.d: examples/shrink_study.rs

/root/repo/target/debug/examples/shrink_study-8375cd341a2d83ec: examples/shrink_study.rs

examples/shrink_study.rs:
