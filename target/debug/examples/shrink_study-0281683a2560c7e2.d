/root/repo/target/debug/examples/shrink_study-0281683a2560c7e2.d: examples/shrink_study.rs

/root/repo/target/debug/examples/shrink_study-0281683a2560c7e2: examples/shrink_study.rs

examples/shrink_study.rs:
