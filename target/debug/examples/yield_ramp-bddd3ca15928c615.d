/root/repo/target/debug/examples/yield_ramp-bddd3ca15928c615.d: examples/yield_ramp.rs

/root/repo/target/debug/examples/yield_ramp-bddd3ca15928c615: examples/yield_ramp.rs

examples/yield_ramp.rs:
