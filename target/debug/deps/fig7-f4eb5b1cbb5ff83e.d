/root/repo/target/debug/deps/fig7-f4eb5b1cbb5ff83e.d: crates/repro/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-f4eb5b1cbb5ff83e: crates/repro/src/bin/fig7.rs

crates/repro/src/bin/fig7.rs:
