/root/repo/target/debug/deps/fig6-93ceebb39a6dc146.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-93ceebb39a6dc146: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
