/root/repo/target/debug/deps/ablation-1859447dca1f17f2.d: crates/repro/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-1859447dca1f17f2: crates/repro/src/bin/ablation.rs

crates/repro/src/bin/ablation.rs:
