/root/repo/target/debug/deps/maly_bench-8fd495d730abc820.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/maly_bench-8fd495d730abc820: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
