/root/repo/target/debug/deps/mcm_kgd-41bc390c660acf8a.d: crates/repro/src/bin/mcm_kgd.rs

/root/repo/target/debug/deps/mcm_kgd-41bc390c660acf8a: crates/repro/src/bin/mcm_kgd.rs

crates/repro/src/bin/mcm_kgd.rs:
