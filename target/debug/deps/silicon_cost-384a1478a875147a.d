/root/repo/target/debug/deps/silicon_cost-384a1478a875147a.d: src/lib.rs

/root/repo/target/debug/deps/libsilicon_cost-384a1478a875147a.rlib: src/lib.rs

/root/repo/target/debug/deps/libsilicon_cost-384a1478a875147a.rmeta: src/lib.rs

src/lib.rs:
