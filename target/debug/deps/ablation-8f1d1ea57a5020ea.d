/root/repo/target/debug/deps/ablation-8f1d1ea57a5020ea.d: crates/repro/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-8f1d1ea57a5020ea: crates/repro/src/bin/ablation.rs

crates/repro/src/bin/ablation.rs:
