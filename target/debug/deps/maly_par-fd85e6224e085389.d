/root/repo/target/debug/deps/maly_par-fd85e6224e085389.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/maly_par-fd85e6224e085389: crates/par/src/lib.rs

crates/par/src/lib.rs:
