/root/repo/target/debug/deps/fig7-26dfe3727f0bbe7c.d: crates/repro/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-26dfe3727f0bbe7c: crates/repro/src/bin/fig7.rs

crates/repro/src/bin/fig7.rs:
