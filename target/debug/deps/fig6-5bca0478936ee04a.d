/root/repo/target/debug/deps/fig6-5bca0478936ee04a.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-5bca0478936ee04a: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
