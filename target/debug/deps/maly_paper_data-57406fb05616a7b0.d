/root/repo/target/debug/deps/maly_paper_data-57406fb05616a7b0.d: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/debug/deps/maly_paper_data-57406fb05616a7b0: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

crates/paper-data/src/lib.rs:
crates/paper-data/src/figures.rs:
crates/paper-data/src/table1.rs:
crates/paper-data/src/table2.rs:
crates/paper-data/src/table3.rs:
