/root/repo/target/debug/deps/all-fd015b36c0f559d1.d: crates/repro/src/bin/all.rs

/root/repo/target/debug/deps/all-fd015b36c0f559d1: crates/repro/src/bin/all.rs

crates/repro/src/bin/all.rs:
