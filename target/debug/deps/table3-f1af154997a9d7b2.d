/root/repo/target/debug/deps/table3-f1af154997a9d7b2.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/table3-f1af154997a9d7b2: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
