/root/repo/target/debug/deps/system_opt-3541fbe2c0dbc42b.d: crates/repro/src/bin/system_opt.rs

/root/repo/target/debug/deps/system_opt-3541fbe2c0dbc42b: crates/repro/src/bin/system_opt.rs

crates/repro/src/bin/system_opt.rs:
