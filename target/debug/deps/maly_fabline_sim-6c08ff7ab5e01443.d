/root/repo/target/debug/deps/maly_fabline_sim-6c08ff7ab5e01443.d: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/debug/deps/maly_fabline_sim-6c08ff7ab5e01443: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

crates/fabline-sim/src/lib.rs:
crates/fabline-sim/src/capacity.rs:
crates/fabline-sim/src/cost.rs:
crates/fabline-sim/src/des.rs:
crates/fabline-sim/src/equipment.rs:
crates/fabline-sim/src/mc.rs:
crates/fabline-sim/src/process.rs:
crates/fabline-sim/src/rental.rs:
