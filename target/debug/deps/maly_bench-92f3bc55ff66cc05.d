/root/repo/target/debug/deps/maly_bench-92f3bc55ff66cc05.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaly_bench-92f3bc55ff66cc05.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaly_bench-92f3bc55ff66cc05.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
