/root/repo/target/debug/deps/fig7-d9ab6cf86cfe9a03.d: crates/repro/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d9ab6cf86cfe9a03: crates/repro/src/bin/fig7.rs

crates/repro/src/bin/fig7.rs:
