/root/repo/target/debug/deps/product_mix-ac850ba9b2ace1a1.d: crates/repro/src/bin/product_mix.rs

/root/repo/target/debug/deps/product_mix-ac850ba9b2ace1a1: crates/repro/src/bin/product_mix.rs

crates/repro/src/bin/product_mix.rs:
