/root/repo/target/debug/deps/properties-d143a0a8491faa1c.d: crates/wafer-geom/tests/properties.rs

/root/repo/target/debug/deps/properties-d143a0a8491faa1c: crates/wafer-geom/tests/properties.rs

crates/wafer-geom/tests/properties.rs:
