/root/repo/target/debug/deps/mcm_kgd-42a4df58a0154548.d: crates/repro/src/bin/mcm_kgd.rs

/root/repo/target/debug/deps/mcm_kgd-42a4df58a0154548: crates/repro/src/bin/mcm_kgd.rs

crates/repro/src/bin/mcm_kgd.rs:
