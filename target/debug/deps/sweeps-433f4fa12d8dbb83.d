/root/repo/target/debug/deps/sweeps-433f4fa12d8dbb83.d: crates/bench/benches/sweeps.rs

/root/repo/target/debug/deps/sweeps-433f4fa12d8dbb83: crates/bench/benches/sweeps.rs

crates/bench/benches/sweeps.rs:
