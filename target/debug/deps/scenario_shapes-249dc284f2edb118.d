/root/repo/target/debug/deps/scenario_shapes-249dc284f2edb118.d: tests/scenario_shapes.rs

/root/repo/target/debug/deps/scenario_shapes-249dc284f2edb118: tests/scenario_shapes.rs

tests/scenario_shapes.rs:
