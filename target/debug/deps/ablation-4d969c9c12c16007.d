/root/repo/target/debug/deps/ablation-4d969c9c12c16007.d: crates/repro/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4d969c9c12c16007: crates/repro/src/bin/ablation.rs

crates/repro/src/bin/ablation.rs:
