/root/repo/target/debug/deps/roadmap-fe46c520460b7114.d: crates/repro/src/bin/roadmap.rs

/root/repo/target/debug/deps/roadmap-fe46c520460b7114: crates/repro/src/bin/roadmap.rs

crates/repro/src/bin/roadmap.rs:
