/root/repo/target/debug/deps/cross_validation-83a006c0c8de9a76.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-83a006c0c8de9a76: tests/cross_validation.rs

tests/cross_validation.rs:
