/root/repo/target/debug/deps/fig3-8f63165e2bdfa9fb.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-8f63165e2bdfa9fb: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
