/root/repo/target/debug/deps/maly_fabline_sim-3241bc4498bc124c.d: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/debug/deps/libmaly_fabline_sim-3241bc4498bc124c.rlib: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/debug/deps/libmaly_fabline_sim-3241bc4498bc124c.rmeta: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

crates/fabline-sim/src/lib.rs:
crates/fabline-sim/src/capacity.rs:
crates/fabline-sim/src/cost.rs:
crates/fabline-sim/src/des.rs:
crates/fabline-sim/src/equipment.rs:
crates/fabline-sim/src/process.rs:
crates/fabline-sim/src/rental.rs:
