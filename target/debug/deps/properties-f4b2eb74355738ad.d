/root/repo/target/debug/deps/properties-f4b2eb74355738ad.d: crates/viz/tests/properties.rs

/root/repo/target/debug/deps/properties-f4b2eb74355738ad: crates/viz/tests/properties.rs

crates/viz/tests/properties.rs:
