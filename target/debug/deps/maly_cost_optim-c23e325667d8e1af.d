/root/repo/target/debug/deps/maly_cost_optim-c23e325667d8e1af.d: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/debug/deps/libmaly_cost_optim-c23e325667d8e1af.rlib: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/debug/deps/libmaly_cost_optim-c23e325667d8e1af.rmeta: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

crates/cost-optim/src/lib.rs:
crates/cost-optim/src/contour.rs:
crates/cost-optim/src/pareto.rs:
crates/cost-optim/src/partition.rs:
crates/cost-optim/src/search.rs:
