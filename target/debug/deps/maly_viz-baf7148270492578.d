/root/repo/target/debug/deps/maly_viz-baf7148270492578.d: crates/viz/src/lib.rs crates/viz/src/barchart.rs crates/viz/src/canvas.rs crates/viz/src/contourplot.rs crates/viz/src/csv.rs crates/viz/src/lineplot.rs crates/viz/src/scale.rs crates/viz/src/table.rs crates/viz/src/wafermap.rs

/root/repo/target/debug/deps/maly_viz-baf7148270492578: crates/viz/src/lib.rs crates/viz/src/barchart.rs crates/viz/src/canvas.rs crates/viz/src/contourplot.rs crates/viz/src/csv.rs crates/viz/src/lineplot.rs crates/viz/src/scale.rs crates/viz/src/table.rs crates/viz/src/wafermap.rs

crates/viz/src/lib.rs:
crates/viz/src/barchart.rs:
crates/viz/src/canvas.rs:
crates/viz/src/contourplot.rs:
crates/viz/src/csv.rs:
crates/viz/src/lineplot.rs:
crates/viz/src/scale.rs:
crates/viz/src/table.rs:
crates/viz/src/wafermap.rs:
