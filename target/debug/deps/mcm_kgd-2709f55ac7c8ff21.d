/root/repo/target/debug/deps/mcm_kgd-2709f55ac7c8ff21.d: crates/repro/src/bin/mcm_kgd.rs

/root/repo/target/debug/deps/mcm_kgd-2709f55ac7c8ff21: crates/repro/src/bin/mcm_kgd.rs

crates/repro/src/bin/mcm_kgd.rs:
