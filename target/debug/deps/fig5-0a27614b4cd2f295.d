/root/repo/target/debug/deps/fig5-0a27614b4cd2f295.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-0a27614b4cd2f295: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
