/root/repo/target/debug/deps/properties-7f81df512e1f2876.d: crates/test-economics/tests/properties.rs

/root/repo/target/debug/deps/properties-7f81df512e1f2876: crates/test-economics/tests/properties.rs

crates/test-economics/tests/properties.rs:
