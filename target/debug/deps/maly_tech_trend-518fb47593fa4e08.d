/root/repo/target/debug/deps/maly_tech_trend-518fb47593fa4e08.d: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

/root/repo/target/debug/deps/maly_tech_trend-518fb47593fa4e08: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

crates/tech-trend/src/lib.rs:
crates/tech-trend/src/datasets.rs:
crates/tech-trend/src/diesize.rs:
crates/tech-trend/src/fit.rs:
crates/tech-trend/src/generations.rs:
crates/tech-trend/src/sia.rs:
