/root/repo/target/debug/deps/table3-e292a4445a2d9e95.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/table3-e292a4445a2d9e95: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
