/root/repo/target/debug/deps/maly_fabline_sim-4d5e100dad030342.d: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/debug/deps/maly_fabline_sim-4d5e100dad030342: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

crates/fabline-sim/src/lib.rs:
crates/fabline-sim/src/capacity.rs:
crates/fabline-sim/src/cost.rs:
crates/fabline-sim/src/des.rs:
crates/fabline-sim/src/equipment.rs:
crates/fabline-sim/src/process.rs:
crates/fabline-sim/src/rental.rs:
