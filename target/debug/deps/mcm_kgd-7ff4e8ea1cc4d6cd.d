/root/repo/target/debug/deps/mcm_kgd-7ff4e8ea1cc4d6cd.d: crates/repro/src/bin/mcm_kgd.rs

/root/repo/target/debug/deps/mcm_kgd-7ff4e8ea1cc4d6cd: crates/repro/src/bin/mcm_kgd.rs

crates/repro/src/bin/mcm_kgd.rs:
