/root/repo/target/debug/deps/ablation-10fa9989cdef1c2b.d: crates/repro/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-10fa9989cdef1c2b: crates/repro/src/bin/ablation.rs

crates/repro/src/bin/ablation.rs:
