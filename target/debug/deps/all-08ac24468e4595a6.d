/root/repo/target/debug/deps/all-08ac24468e4595a6.d: crates/repro/src/bin/all.rs

/root/repo/target/debug/deps/all-08ac24468e4595a6: crates/repro/src/bin/all.rs

crates/repro/src/bin/all.rs:
