/root/repo/target/debug/deps/lint_fixtures-3ca293b86ac6a765.d: crates/xtask/tests/lint_fixtures.rs

/root/repo/target/debug/deps/lint_fixtures-3ca293b86ac6a765: crates/xtask/tests/lint_fixtures.rs

crates/xtask/tests/lint_fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
