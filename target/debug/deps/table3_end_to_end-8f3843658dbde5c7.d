/root/repo/target/debug/deps/table3_end_to_end-8f3843658dbde5c7.d: tests/table3_end_to_end.rs

/root/repo/target/debug/deps/table3_end_to_end-8f3843658dbde5c7: tests/table3_end_to_end.rs

tests/table3_end_to_end.rs:
