/root/repo/target/debug/deps/properties-21059f7c99d90336.d: crates/cost-model/tests/properties.rs

/root/repo/target/debug/deps/properties-21059f7c99d90336: crates/cost-model/tests/properties.rs

crates/cost-model/tests/properties.rs:
