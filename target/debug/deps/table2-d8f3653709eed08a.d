/root/repo/target/debug/deps/table2-d8f3653709eed08a.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/table2-d8f3653709eed08a: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
