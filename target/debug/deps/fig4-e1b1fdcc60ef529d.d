/root/repo/target/debug/deps/fig4-e1b1fdcc60ef529d.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-e1b1fdcc60ef529d: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
