/root/repo/target/debug/deps/maly_cli-66536448b65d60d9.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/maly_cli-66536448b65d60d9: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
