/root/repo/target/debug/deps/maly_bench-85f55e3367e23896.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaly_bench-85f55e3367e23896.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmaly_bench-85f55e3367e23896.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
