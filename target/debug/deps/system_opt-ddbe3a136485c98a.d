/root/repo/target/debug/deps/system_opt-ddbe3a136485c98a.d: crates/repro/src/bin/system_opt.rs

/root/repo/target/debug/deps/system_opt-ddbe3a136485c98a: crates/repro/src/bin/system_opt.rs

crates/repro/src/bin/system_opt.rs:
