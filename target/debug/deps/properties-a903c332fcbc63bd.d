/root/repo/target/debug/deps/properties-a903c332fcbc63bd.d: crates/cost-optim/tests/properties.rs

/root/repo/target/debug/deps/properties-a903c332fcbc63bd: crates/cost-optim/tests/properties.rs

crates/cost-optim/tests/properties.rs:
