/root/repo/target/debug/deps/fig5-dddbb981e8858965.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-dddbb981e8858965: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
