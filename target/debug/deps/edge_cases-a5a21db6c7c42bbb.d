/root/repo/target/debug/deps/edge_cases-a5a21db6c7c42bbb.d: crates/units/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-a5a21db6c7c42bbb: crates/units/tests/edge_cases.rs

crates/units/tests/edge_cases.rs:
