/root/repo/target/debug/deps/fig8-beee3f51315b6225.d: crates/repro/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-beee3f51315b6225: crates/repro/src/bin/fig8.rs

crates/repro/src/bin/fig8.rs:
