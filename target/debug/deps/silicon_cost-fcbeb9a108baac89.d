/root/repo/target/debug/deps/silicon_cost-fcbeb9a108baac89.d: src/lib.rs

/root/repo/target/debug/deps/silicon_cost-fcbeb9a108baac89: src/lib.rs

src/lib.rs:
