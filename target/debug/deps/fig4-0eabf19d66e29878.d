/root/repo/target/debug/deps/fig4-0eabf19d66e29878.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-0eabf19d66e29878: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
