/root/repo/target/debug/deps/maly_cost_optim-28445eab76bb3344.d: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/debug/deps/maly_cost_optim-28445eab76bb3344: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

crates/cost-optim/src/lib.rs:
crates/cost-optim/src/contour.rs:
crates/cost-optim/src/pareto.rs:
crates/cost-optim/src/partition.rs:
crates/cost-optim/src/search.rs:
