/root/repo/target/debug/deps/experiments-b83c7b6688bec112.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/experiments-b83c7b6688bec112: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
