/root/repo/target/debug/deps/maly_bench-ec9829a076cd7772.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/maly_bench-ec9829a076cd7772: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
