/root/repo/target/debug/deps/snapshots-c9fde0ed958e2427.d: crates/repro/tests/snapshots.rs

/root/repo/target/debug/deps/snapshots-c9fde0ed958e2427: crates/repro/tests/snapshots.rs

crates/repro/tests/snapshots.rs:
