/root/repo/target/debug/deps/product_mix-4354f555b316a4ce.d: crates/repro/src/bin/product_mix.rs

/root/repo/target/debug/deps/product_mix-4354f555b316a4ce: crates/repro/src/bin/product_mix.rs

crates/repro/src/bin/product_mix.rs:
