/root/repo/target/debug/deps/extensions-060db71c7d6dceac.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-060db71c7d6dceac: tests/extensions.rs

tests/extensions.rs:
