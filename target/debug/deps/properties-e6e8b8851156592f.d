/root/repo/target/debug/deps/properties-e6e8b8851156592f.d: crates/fabline-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-e6e8b8851156592f: crates/fabline-sim/tests/properties.rs

crates/fabline-sim/tests/properties.rs:
