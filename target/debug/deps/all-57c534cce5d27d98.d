/root/repo/target/debug/deps/all-57c534cce5d27d98.d: crates/repro/src/bin/all.rs

/root/repo/target/debug/deps/all-57c534cce5d27d98: crates/repro/src/bin/all.rs

crates/repro/src/bin/all.rs:
