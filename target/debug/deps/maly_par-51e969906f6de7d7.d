/root/repo/target/debug/deps/maly_par-51e969906f6de7d7.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libmaly_par-51e969906f6de7d7.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libmaly_par-51e969906f6de7d7.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
