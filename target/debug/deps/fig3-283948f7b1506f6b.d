/root/repo/target/debug/deps/fig3-283948f7b1506f6b.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-283948f7b1506f6b: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
