/root/repo/target/debug/deps/fig8-21cf4057355e6a51.d: crates/repro/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-21cf4057355e6a51: crates/repro/src/bin/fig8.rs

crates/repro/src/bin/fig8.rs:
