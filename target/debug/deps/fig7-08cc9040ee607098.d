/root/repo/target/debug/deps/fig7-08cc9040ee607098.d: crates/repro/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-08cc9040ee607098: crates/repro/src/bin/fig7.rs

crates/repro/src/bin/fig7.rs:
