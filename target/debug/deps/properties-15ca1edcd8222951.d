/root/repo/target/debug/deps/properties-15ca1edcd8222951.d: crates/cost-optim/tests/properties.rs

/root/repo/target/debug/deps/properties-15ca1edcd8222951: crates/cost-optim/tests/properties.rs

crates/cost-optim/tests/properties.rs:
