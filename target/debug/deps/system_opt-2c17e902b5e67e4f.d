/root/repo/target/debug/deps/system_opt-2c17e902b5e67e4f.d: crates/repro/src/bin/system_opt.rs

/root/repo/target/debug/deps/system_opt-2c17e902b5e67e4f: crates/repro/src/bin/system_opt.rs

crates/repro/src/bin/system_opt.rs:
