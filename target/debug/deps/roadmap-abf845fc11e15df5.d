/root/repo/target/debug/deps/roadmap-abf845fc11e15df5.d: crates/repro/src/bin/roadmap.rs

/root/repo/target/debug/deps/roadmap-abf845fc11e15df5: crates/repro/src/bin/roadmap.rs

crates/repro/src/bin/roadmap.rs:
