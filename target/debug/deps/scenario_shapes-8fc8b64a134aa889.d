/root/repo/target/debug/deps/scenario_shapes-8fc8b64a134aa889.d: tests/scenario_shapes.rs

/root/repo/target/debug/deps/scenario_shapes-8fc8b64a134aa889: tests/scenario_shapes.rs

tests/scenario_shapes.rs:
