/root/repo/target/debug/deps/fig2-1a92d03a5e4e2286.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-1a92d03a5e4e2286: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
