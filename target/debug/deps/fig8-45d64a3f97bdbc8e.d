/root/repo/target/debug/deps/fig8-45d64a3f97bdbc8e.d: crates/repro/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-45d64a3f97bdbc8e: crates/repro/src/bin/fig8.rs

crates/repro/src/bin/fig8.rs:
