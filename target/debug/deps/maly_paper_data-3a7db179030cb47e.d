/root/repo/target/debug/deps/maly_paper_data-3a7db179030cb47e.d: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/debug/deps/libmaly_paper_data-3a7db179030cb47e.rlib: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/debug/deps/libmaly_paper_data-3a7db179030cb47e.rmeta: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

crates/paper-data/src/lib.rs:
crates/paper-data/src/figures.rs:
crates/paper-data/src/table1.rs:
crates/paper-data/src/table2.rs:
crates/paper-data/src/table3.rs:
