/root/repo/target/debug/deps/maly_units-59e82c0836c1d62e.d: crates/units/src/lib.rs crates/units/src/area.rs crates/units/src/contract.rs crates/units/src/count.rs crates/units/src/density.rs crates/units/src/error.rs crates/units/src/length.rs crates/units/src/macros.rs crates/units/src/money.rs crates/units/src/probability.rs

/root/repo/target/debug/deps/maly_units-59e82c0836c1d62e: crates/units/src/lib.rs crates/units/src/area.rs crates/units/src/contract.rs crates/units/src/count.rs crates/units/src/density.rs crates/units/src/error.rs crates/units/src/length.rs crates/units/src/macros.rs crates/units/src/money.rs crates/units/src/probability.rs

crates/units/src/lib.rs:
crates/units/src/area.rs:
crates/units/src/contract.rs:
crates/units/src/count.rs:
crates/units/src/density.rs:
crates/units/src/error.rs:
crates/units/src/length.rs:
crates/units/src/macros.rs:
crates/units/src/money.rs:
crates/units/src/probability.rs:
