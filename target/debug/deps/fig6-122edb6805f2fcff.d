/root/repo/target/debug/deps/fig6-122edb6805f2fcff.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-122edb6805f2fcff: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
