/root/repo/target/debug/deps/roadmap-a6c16054eee573c8.d: crates/repro/src/bin/roadmap.rs

/root/repo/target/debug/deps/roadmap-a6c16054eee573c8: crates/repro/src/bin/roadmap.rs

crates/repro/src/bin/roadmap.rs:
