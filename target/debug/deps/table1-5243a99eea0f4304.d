/root/repo/target/debug/deps/table1-5243a99eea0f4304.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5243a99eea0f4304: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
