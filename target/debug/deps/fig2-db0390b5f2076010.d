/root/repo/target/debug/deps/fig2-db0390b5f2076010.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-db0390b5f2076010: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
