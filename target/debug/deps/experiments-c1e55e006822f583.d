/root/repo/target/debug/deps/experiments-c1e55e006822f583.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/experiments-c1e55e006822f583: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
