/root/repo/target/debug/deps/fig4-8f9ba2493036cc8f.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-8f9ba2493036cc8f: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
