/root/repo/target/debug/deps/maly_cost_optim-fa3c6844d13e3c67.d: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/debug/deps/libmaly_cost_optim-fa3c6844d13e3c67.rlib: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/debug/deps/libmaly_cost_optim-fa3c6844d13e3c67.rmeta: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

crates/cost-optim/src/lib.rs:
crates/cost-optim/src/contour.rs:
crates/cost-optim/src/pareto.rs:
crates/cost-optim/src/partition.rs:
crates/cost-optim/src/search.rs:
