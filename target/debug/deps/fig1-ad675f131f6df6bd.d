/root/repo/target/debug/deps/fig1-ad675f131f6df6bd.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-ad675f131f6df6bd: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
