/root/repo/target/debug/deps/determinism-d21c35cca5b09425.d: crates/cost-optim/tests/determinism.rs

/root/repo/target/debug/deps/determinism-d21c35cca5b09425: crates/cost-optim/tests/determinism.rs

crates/cost-optim/tests/determinism.rs:
