/root/repo/target/debug/deps/maly_cost_model-bb32335126baf1a3.d: crates/cost-model/src/lib.rs crates/cost-model/src/density.rs crates/cost-model/src/error.rs crates/cost-model/src/mpw.rs crates/cost-model/src/product.rs crates/cost-model/src/roadmap.rs crates/cost-model/src/scenario.rs crates/cost-model/src/sensitivity.rs crates/cost-model/src/surface.rs crates/cost-model/src/system.rs crates/cost-model/src/transistor.rs crates/cost-model/src/wafer.rs

/root/repo/target/debug/deps/libmaly_cost_model-bb32335126baf1a3.rlib: crates/cost-model/src/lib.rs crates/cost-model/src/density.rs crates/cost-model/src/error.rs crates/cost-model/src/mpw.rs crates/cost-model/src/product.rs crates/cost-model/src/roadmap.rs crates/cost-model/src/scenario.rs crates/cost-model/src/sensitivity.rs crates/cost-model/src/surface.rs crates/cost-model/src/system.rs crates/cost-model/src/transistor.rs crates/cost-model/src/wafer.rs

/root/repo/target/debug/deps/libmaly_cost_model-bb32335126baf1a3.rmeta: crates/cost-model/src/lib.rs crates/cost-model/src/density.rs crates/cost-model/src/error.rs crates/cost-model/src/mpw.rs crates/cost-model/src/product.rs crates/cost-model/src/roadmap.rs crates/cost-model/src/scenario.rs crates/cost-model/src/sensitivity.rs crates/cost-model/src/surface.rs crates/cost-model/src/system.rs crates/cost-model/src/transistor.rs crates/cost-model/src/wafer.rs

crates/cost-model/src/lib.rs:
crates/cost-model/src/density.rs:
crates/cost-model/src/error.rs:
crates/cost-model/src/mpw.rs:
crates/cost-model/src/product.rs:
crates/cost-model/src/roadmap.rs:
crates/cost-model/src/scenario.rs:
crates/cost-model/src/sensitivity.rs:
crates/cost-model/src/surface.rs:
crates/cost-model/src/system.rs:
crates/cost-model/src/transistor.rs:
crates/cost-model/src/wafer.rs:
