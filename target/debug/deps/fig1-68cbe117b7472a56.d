/root/repo/target/debug/deps/fig1-68cbe117b7472a56.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-68cbe117b7472a56: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
