/root/repo/target/debug/deps/fig3-d9d0a2c93947d83c.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-d9d0a2c93947d83c: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
