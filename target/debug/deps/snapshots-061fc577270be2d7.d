/root/repo/target/debug/deps/snapshots-061fc577270be2d7.d: crates/repro/tests/snapshots.rs

/root/repo/target/debug/deps/snapshots-061fc577270be2d7: crates/repro/tests/snapshots.rs

crates/repro/tests/snapshots.rs:
