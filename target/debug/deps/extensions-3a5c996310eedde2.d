/root/repo/target/debug/deps/extensions-3a5c996310eedde2.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-3a5c996310eedde2: tests/extensions.rs

tests/extensions.rs:
