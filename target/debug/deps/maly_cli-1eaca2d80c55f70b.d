/root/repo/target/debug/deps/maly_cli-1eaca2d80c55f70b.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/maly_cli-1eaca2d80c55f70b: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
