/root/repo/target/debug/deps/maly_paper_data-9a0363aedf50139c.d: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/debug/deps/maly_paper_data-9a0363aedf50139c: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

crates/paper-data/src/lib.rs:
crates/paper-data/src/figures.rs:
crates/paper-data/src/table1.rs:
crates/paper-data/src/table2.rs:
crates/paper-data/src/table3.rs:
