/root/repo/target/debug/deps/maly_test_economics-98a2bd5b05504d11.d: crates/test-economics/src/lib.rs crates/test-economics/src/coverage_opt.rs crates/test-economics/src/dft.rs crates/test-economics/src/escapes.rs crates/test-economics/src/mcm.rs crates/test-economics/src/test_time.rs

/root/repo/target/debug/deps/libmaly_test_economics-98a2bd5b05504d11.rlib: crates/test-economics/src/lib.rs crates/test-economics/src/coverage_opt.rs crates/test-economics/src/dft.rs crates/test-economics/src/escapes.rs crates/test-economics/src/mcm.rs crates/test-economics/src/test_time.rs

/root/repo/target/debug/deps/libmaly_test_economics-98a2bd5b05504d11.rmeta: crates/test-economics/src/lib.rs crates/test-economics/src/coverage_opt.rs crates/test-economics/src/dft.rs crates/test-economics/src/escapes.rs crates/test-economics/src/mcm.rs crates/test-economics/src/test_time.rs

crates/test-economics/src/lib.rs:
crates/test-economics/src/coverage_opt.rs:
crates/test-economics/src/dft.rs:
crates/test-economics/src/escapes.rs:
crates/test-economics/src/mcm.rs:
crates/test-economics/src/test_time.rs:
