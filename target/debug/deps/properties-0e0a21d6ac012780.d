/root/repo/target/debug/deps/properties-0e0a21d6ac012780.d: crates/fabline-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-0e0a21d6ac012780: crates/fabline-sim/tests/properties.rs

crates/fabline-sim/tests/properties.rs:
