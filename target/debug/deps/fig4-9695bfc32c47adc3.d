/root/repo/target/debug/deps/fig4-9695bfc32c47adc3.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-9695bfc32c47adc3: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
