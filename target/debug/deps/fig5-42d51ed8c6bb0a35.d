/root/repo/target/debug/deps/fig5-42d51ed8c6bb0a35.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-42d51ed8c6bb0a35: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
