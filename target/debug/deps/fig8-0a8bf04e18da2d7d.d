/root/repo/target/debug/deps/fig8-0a8bf04e18da2d7d.d: crates/repro/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0a8bf04e18da2d7d: crates/repro/src/bin/fig8.rs

crates/repro/src/bin/fig8.rs:
