/root/repo/target/debug/deps/table1-20248a6c9950d6de.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/table1-20248a6c9950d6de: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
