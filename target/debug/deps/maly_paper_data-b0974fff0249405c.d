/root/repo/target/debug/deps/maly_paper_data-b0974fff0249405c.d: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/debug/deps/libmaly_paper_data-b0974fff0249405c.rlib: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

/root/repo/target/debug/deps/libmaly_paper_data-b0974fff0249405c.rmeta: crates/paper-data/src/lib.rs crates/paper-data/src/figures.rs crates/paper-data/src/table1.rs crates/paper-data/src/table2.rs crates/paper-data/src/table3.rs

crates/paper-data/src/lib.rs:
crates/paper-data/src/figures.rs:
crates/paper-data/src/table1.rs:
crates/paper-data/src/table2.rs:
crates/paper-data/src/table3.rs:
