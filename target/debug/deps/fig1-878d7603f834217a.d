/root/repo/target/debug/deps/fig1-878d7603f834217a.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-878d7603f834217a: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
