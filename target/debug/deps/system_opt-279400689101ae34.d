/root/repo/target/debug/deps/system_opt-279400689101ae34.d: crates/repro/src/bin/system_opt.rs

/root/repo/target/debug/deps/system_opt-279400689101ae34: crates/repro/src/bin/system_opt.rs

crates/repro/src/bin/system_opt.rs:
