/root/repo/target/debug/deps/maly_cost_optim-18c7b76576d2bd5d.d: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

/root/repo/target/debug/deps/maly_cost_optim-18c7b76576d2bd5d: crates/cost-optim/src/lib.rs crates/cost-optim/src/contour.rs crates/cost-optim/src/pareto.rs crates/cost-optim/src/partition.rs crates/cost-optim/src/search.rs

crates/cost-optim/src/lib.rs:
crates/cost-optim/src/contour.rs:
crates/cost-optim/src/pareto.rs:
crates/cost-optim/src/partition.rs:
crates/cost-optim/src/search.rs:
