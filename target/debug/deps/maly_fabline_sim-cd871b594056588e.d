/root/repo/target/debug/deps/maly_fabline_sim-cd871b594056588e.d: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/debug/deps/libmaly_fabline_sim-cd871b594056588e.rlib: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

/root/repo/target/debug/deps/libmaly_fabline_sim-cd871b594056588e.rmeta: crates/fabline-sim/src/lib.rs crates/fabline-sim/src/capacity.rs crates/fabline-sim/src/cost.rs crates/fabline-sim/src/des.rs crates/fabline-sim/src/equipment.rs crates/fabline-sim/src/mc.rs crates/fabline-sim/src/process.rs crates/fabline-sim/src/rental.rs

crates/fabline-sim/src/lib.rs:
crates/fabline-sim/src/capacity.rs:
crates/fabline-sim/src/cost.rs:
crates/fabline-sim/src/des.rs:
crates/fabline-sim/src/equipment.rs:
crates/fabline-sim/src/mc.rs:
crates/fabline-sim/src/process.rs:
crates/fabline-sim/src/rental.rs:
