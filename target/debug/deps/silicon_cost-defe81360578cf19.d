/root/repo/target/debug/deps/silicon_cost-defe81360578cf19.d: src/lib.rs

/root/repo/target/debug/deps/libsilicon_cost-defe81360578cf19.rlib: src/lib.rs

/root/repo/target/debug/deps/libsilicon_cost-defe81360578cf19.rmeta: src/lib.rs

src/lib.rs:
