/root/repo/target/debug/deps/table3-b1bc7042766f2882.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b1bc7042766f2882: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
