/root/repo/target/debug/deps/fig1-3b41a1a22fe05f00.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-3b41a1a22fe05f00: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
