/root/repo/target/debug/deps/table2-e51ca1b7d19ff68f.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/table2-e51ca1b7d19ff68f: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
