/root/repo/target/debug/deps/properties-acd78ddf53f434c7.d: crates/yield-model/tests/properties.rs

/root/repo/target/debug/deps/properties-acd78ddf53f434c7: crates/yield-model/tests/properties.rs

crates/yield-model/tests/properties.rs:
