/root/repo/target/debug/deps/properties-dede3cb8b317d90d.d: crates/cost-model/tests/properties.rs

/root/repo/target/debug/deps/properties-dede3cb8b317d90d: crates/cost-model/tests/properties.rs

crates/cost-model/tests/properties.rs:
