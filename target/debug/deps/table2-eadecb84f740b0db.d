/root/repo/target/debug/deps/table2-eadecb84f740b0db.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/table2-eadecb84f740b0db: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
