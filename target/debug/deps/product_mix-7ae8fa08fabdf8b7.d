/root/repo/target/debug/deps/product_mix-7ae8fa08fabdf8b7.d: crates/repro/src/bin/product_mix.rs

/root/repo/target/debug/deps/product_mix-7ae8fa08fabdf8b7: crates/repro/src/bin/product_mix.rs

crates/repro/src/bin/product_mix.rs:
