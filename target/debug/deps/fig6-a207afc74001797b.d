/root/repo/target/debug/deps/fig6-a207afc74001797b.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a207afc74001797b: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
