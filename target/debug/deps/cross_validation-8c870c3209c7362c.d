/root/repo/target/debug/deps/cross_validation-8c870c3209c7362c.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-8c870c3209c7362c: tests/cross_validation.rs

tests/cross_validation.rs:
