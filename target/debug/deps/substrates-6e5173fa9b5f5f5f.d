/root/repo/target/debug/deps/substrates-6e5173fa9b5f5f5f.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/substrates-6e5173fa9b5f5f5f: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
