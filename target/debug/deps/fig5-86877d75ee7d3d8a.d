/root/repo/target/debug/deps/fig5-86877d75ee7d3d8a.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-86877d75ee7d3d8a: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
