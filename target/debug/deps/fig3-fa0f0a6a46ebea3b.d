/root/repo/target/debug/deps/fig3-fa0f0a6a46ebea3b.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-fa0f0a6a46ebea3b: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
