/root/repo/target/debug/deps/roadmap-94ff98336f73b6c9.d: crates/repro/src/bin/roadmap.rs

/root/repo/target/debug/deps/roadmap-94ff98336f73b6c9: crates/repro/src/bin/roadmap.rs

crates/repro/src/bin/roadmap.rs:
