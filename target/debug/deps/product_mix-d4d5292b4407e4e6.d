/root/repo/target/debug/deps/product_mix-d4d5292b4407e4e6.d: crates/repro/src/bin/product_mix.rs

/root/repo/target/debug/deps/product_mix-d4d5292b4407e4e6: crates/repro/src/bin/product_mix.rs

crates/repro/src/bin/product_mix.rs:
