/root/repo/target/debug/deps/fig2-511268cdc840367d.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-511268cdc840367d: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
