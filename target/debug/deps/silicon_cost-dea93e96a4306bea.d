/root/repo/target/debug/deps/silicon_cost-dea93e96a4306bea.d: src/lib.rs

/root/repo/target/debug/deps/silicon_cost-dea93e96a4306bea: src/lib.rs

src/lib.rs:
