/root/repo/target/debug/deps/table3-a7bccfd40b046a24.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/table3-a7bccfd40b046a24: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
