/root/repo/target/debug/deps/maly_cli-144970bfda7a87ef.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/maly_cli-144970bfda7a87ef: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
