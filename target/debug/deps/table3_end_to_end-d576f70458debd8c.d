/root/repo/target/debug/deps/table3_end_to_end-d576f70458debd8c.d: tests/table3_end_to_end.rs

/root/repo/target/debug/deps/table3_end_to_end-d576f70458debd8c: tests/table3_end_to_end.rs

tests/table3_end_to_end.rs:
