/root/repo/target/debug/deps/all-904e8f187a68c662.d: crates/repro/src/bin/all.rs

/root/repo/target/debug/deps/all-904e8f187a68c662: crates/repro/src/bin/all.rs

crates/repro/src/bin/all.rs:
