/root/repo/target/debug/deps/table1-c35aae32caf7de5a.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c35aae32caf7de5a: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
