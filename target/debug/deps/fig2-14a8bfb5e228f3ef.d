/root/repo/target/debug/deps/fig2-14a8bfb5e228f3ef.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-14a8bfb5e228f3ef: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
