/root/repo/target/debug/deps/table1-e23aff8be21df668.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e23aff8be21df668: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
