/root/repo/target/debug/deps/maly_tech_trend-cb5c407883d24935.d: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

/root/repo/target/debug/deps/libmaly_tech_trend-cb5c407883d24935.rlib: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

/root/repo/target/debug/deps/libmaly_tech_trend-cb5c407883d24935.rmeta: crates/tech-trend/src/lib.rs crates/tech-trend/src/datasets.rs crates/tech-trend/src/diesize.rs crates/tech-trend/src/fit.rs crates/tech-trend/src/generations.rs crates/tech-trend/src/sia.rs

crates/tech-trend/src/lib.rs:
crates/tech-trend/src/datasets.rs:
crates/tech-trend/src/diesize.rs:
crates/tech-trend/src/fit.rs:
crates/tech-trend/src/generations.rs:
crates/tech-trend/src/sia.rs:
