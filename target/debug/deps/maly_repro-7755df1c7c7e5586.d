/root/repo/target/debug/deps/maly_repro-7755df1c7c7e5586.d: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ablation.rs crates/repro/src/experiments/fig1.rs crates/repro/src/experiments/fig2.rs crates/repro/src/experiments/fig3.rs crates/repro/src/experiments/fig4.rs crates/repro/src/experiments/fig5.rs crates/repro/src/experiments/fig6.rs crates/repro/src/experiments/fig7.rs crates/repro/src/experiments/fig8.rs crates/repro/src/experiments/mcm_kgd.rs crates/repro/src/experiments/product_mix.rs crates/repro/src/experiments/roadmap.rs crates/repro/src/experiments/system_opt.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/table2.rs crates/repro/src/experiments/table3.rs

/root/repo/target/debug/deps/maly_repro-7755df1c7c7e5586: crates/repro/src/lib.rs crates/repro/src/context.rs crates/repro/src/experiments/mod.rs crates/repro/src/experiments/ablation.rs crates/repro/src/experiments/fig1.rs crates/repro/src/experiments/fig2.rs crates/repro/src/experiments/fig3.rs crates/repro/src/experiments/fig4.rs crates/repro/src/experiments/fig5.rs crates/repro/src/experiments/fig6.rs crates/repro/src/experiments/fig7.rs crates/repro/src/experiments/fig8.rs crates/repro/src/experiments/mcm_kgd.rs crates/repro/src/experiments/product_mix.rs crates/repro/src/experiments/roadmap.rs crates/repro/src/experiments/system_opt.rs crates/repro/src/experiments/table1.rs crates/repro/src/experiments/table2.rs crates/repro/src/experiments/table3.rs

crates/repro/src/lib.rs:
crates/repro/src/context.rs:
crates/repro/src/experiments/mod.rs:
crates/repro/src/experiments/ablation.rs:
crates/repro/src/experiments/fig1.rs:
crates/repro/src/experiments/fig2.rs:
crates/repro/src/experiments/fig3.rs:
crates/repro/src/experiments/fig4.rs:
crates/repro/src/experiments/fig5.rs:
crates/repro/src/experiments/fig6.rs:
crates/repro/src/experiments/fig7.rs:
crates/repro/src/experiments/fig8.rs:
crates/repro/src/experiments/mcm_kgd.rs:
crates/repro/src/experiments/product_mix.rs:
crates/repro/src/experiments/roadmap.rs:
crates/repro/src/experiments/system_opt.rs:
crates/repro/src/experiments/table1.rs:
crates/repro/src/experiments/table2.rs:
crates/repro/src/experiments/table3.rs:
