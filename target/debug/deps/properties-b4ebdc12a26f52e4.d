/root/repo/target/debug/deps/properties-b4ebdc12a26f52e4.d: crates/units/tests/properties.rs

/root/repo/target/debug/deps/properties-b4ebdc12a26f52e4: crates/units/tests/properties.rs

crates/units/tests/properties.rs:
