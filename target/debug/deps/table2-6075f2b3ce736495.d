/root/repo/target/debug/deps/table2-6075f2b3ce736495.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/table2-6075f2b3ce736495: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
